//! The 22 TPC-H queries as SQL text.
//!
//! Each text binds to a plan whose **results** are byte-equal to the
//! registry's hand-built `qN_plan` (crates/tpch) under every batch layout
//! and NDP setting — the parity suite in `tests/sql_parity.rs` holds the
//! frontend to that. Most texts lower to the *identical* plan; a few
//! (Q2, Q12, Q14, Q22) produce a result-equal variant (the binder
//! aggregates over compound expressions directly where the registry
//! projects first), which is byte-equal because the hash aggregate
//! finalizes in encoded-group-key order and sorts are stable.
//!
//! Multi-phase registry queries (Q11, Q15, Q17, Q20, Q22) are expressed
//! as their registry **main-stage plan** — the part the paper pushes
//! toward storage — since the remaining phases run in driver code, not
//! in a plan.

/// The SQL text for a TPC-H query, by registry name (`"Q1"`..`"Q22"`).
pub fn sql_for(name: &str) -> Option<&'static str> {
    let text = match name {
        "Q1" => Q1,
        "Q2" => Q2,
        "Q3" => Q3,
        "Q4" => Q4,
        "Q5" => Q5,
        "Q6" => Q6,
        "Q7" => Q7,
        "Q8" => Q8,
        "Q9" => Q9,
        "Q10" => Q10,
        "Q11" => Q11,
        "Q12" => Q12,
        "Q13" => Q13,
        "Q14" => Q14,
        "Q15" => Q15,
        "Q16" => Q16,
        "Q17" => Q17,
        "Q18" => Q18,
        "Q19" => Q19,
        "Q20" => Q20,
        "Q21" => Q21,
        "Q22" => Q22,
        _ => return None,
    };
    Some(text)
}

/// All (name, text) pairs, in registry order.
pub fn all() -> Vec<(&'static str, &'static str)> {
    (1..=22)
        .map(|i| {
            let name: &'static str = match i {
                1 => "Q1",
                2 => "Q2",
                3 => "Q3",
                4 => "Q4",
                5 => "Q5",
                6 => "Q6",
                7 => "Q7",
                8 => "Q8",
                9 => "Q9",
                10 => "Q10",
                11 => "Q11",
                12 => "Q12",
                13 => "Q13",
                14 => "Q14",
                15 => "Q15",
                16 => "Q16",
                17 => "Q17",
                18 => "Q18",
                19 => "Q19",
                20 => "Q20",
                21 => "Q21",
                _ => "Q22",
            };
            (name, sql_for(name).unwrap())
        })
        .collect()
}

const Q1: &str = "\
select l_returnflag, l_linestatus, sum(l_quantity), sum(l_extendedprice),
       sum(l_extendedprice * (1 - l_discount)),
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
       avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
from lineitem
where l_shipdate <= date '1998-09-02'
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus";

const Q2: &str = "\
select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
from partsupp
  join supplier on ps_suppkey = s_suppkey
  join nation on s_nationkey = n_nationkey
  join region on n_regionkey = r_regionkey
  join part on ps_partkey = p_partkey
  join (select ps_partkey as min_pk, min(ps_supplycost) as min_cost
        from partsupp
          join supplier on ps_suppkey = s_suppkey
          join nation on s_nationkey = n_nationkey
          join region on n_regionkey = r_regionkey
        where r_name = 'EUROPE'
        group by ps_partkey) as mins
    on ps_partkey = min_pk and ps_supplycost = min_cost
where r_name = 'EUROPE' and p_size = 15 and p_type like '%BRASS'
order by s_acctbal desc, n_name, s_name, p_partkey
limit 100";

const Q3: &str = "\
select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue,
       o_orderdate, o_shippriority
from lineitem join (orders join customer on o_custkey = c_custkey)
  on l_orderkey = o_orderkey
where c_mktsegment = 'BUILDING'
  and o_orderdate < date '1995-03-15'
  and l_shipdate > date '1995-03-15'
group by l_orderkey, o_orderdate, o_shippriority
order by revenue desc, o_orderdate
limit 10";

const Q4: &str = "\
select o_orderpriority, count(*) as order_count
from orders
where o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-10-01'
  and exists (select * from lineitem
              where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)
group by o_orderpriority
order by o_orderpriority";

const Q5: &str = "\
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from orders
  join lineitem force index (primary) on o_orderkey = l_orderkey
  join customer on o_custkey = c_custkey
  join supplier on l_suppkey = s_suppkey and c_nationkey = s_nationkey
  join nation on s_nationkey = n_nationkey
  join region on n_regionkey = r_regionkey
where o_orderdate >= date '1994-01-01' and o_orderdate < date '1995-01-01'
  and r_name = 'ASIA'
group by n_name
order by revenue desc";

const Q6: &str = "\
select sum(l_extendedprice * l_discount) as revenue
from lineitem
where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01'
  and l_discount between 0.05 and 0.07
  and l_quantity < 24";

const Q7: &str = "\
select supp_nation, cust_nation, l_year, sum(volume) as revenue
from (select n1.n_name as supp_nation, n2.n_name as cust_nation,
             extract(year from l_shipdate) as l_year,
             l_extendedprice * (1 - l_discount) as volume
      from lineitem
        join supplier on l_suppkey = s_suppkey
        join orders on l_orderkey = o_orderkey
        join customer on o_custkey = c_custkey
        join nation as n1 on s_nationkey = n1.n_nationkey
        join nation as n2 on c_nationkey = n2.n_nationkey
      where l_shipdate >= date '1995-01-01' and l_shipdate <= date '1996-12-31'
        and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY')
          or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE'))) as shipping
group by supp_nation, cust_nation, l_year
order by supp_nation, cust_nation, l_year";

const Q8: &str = "\
select o_year, sum(brazil_volume) / sum(volume) as mkt_share
from (select extract(year from o_orderdate) as o_year,
             l_extendedprice * (1 - l_discount) as volume,
             case when n2.n_name = 'BRAZIL'
                  then l_extendedprice * (1 - l_discount)
                  else 0.00 end as brazil_volume
      from lineitem
        join part on l_partkey = p_partkey
        join orders on l_orderkey = o_orderkey
        join customer on o_custkey = c_custkey
        join nation as n1 on c_nationkey = n1.n_nationkey
        join region on n1.n_regionkey = r_regionkey
        join supplier on l_suppkey = s_suppkey
        join nation as n2 on s_nationkey = n2.n_nationkey
      where p_type = 'ECONOMY ANODIZED STEEL'
        and o_orderdate >= date '1995-01-01' and o_orderdate <= date '1996-12-31'
        and r_name = 'AMERICA') as all_nations
group by o_year
order by o_year";

const Q9: &str = "\
select nation, o_year, sum(amount) as sum_profit
from (select n_name as nation, extract(year from o_orderdate) as o_year,
             l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount
      from lineitem
        join part on l_partkey = p_partkey
        join supplier on l_suppkey = s_suppkey
        join partsupp on l_partkey = ps_partkey and l_suppkey = ps_suppkey
        join orders on l_orderkey = o_orderkey
        join nation on s_nationkey = n_nationkey
      where p_name like '%green%') as profit
group by nation, o_year
order by nation, o_year desc";

const Q10: &str = "\
select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
from lineitem
  join orders on l_orderkey = o_orderkey
  join customer on o_custkey = c_custkey
  join nation on c_nationkey = n_nationkey
where l_returnflag = 'R'
  and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01'
group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
order by revenue desc
limit 20";

const Q11: &str = "\
select ps_partkey, sum(ps_supplycost * ps_availqty) as value
from supplier
  join nation on s_nationkey = n_nationkey
  join partsupp force index (i_ps_suppkey) on s_suppkey = ps_suppkey
where n_name = 'GERMANY'
group by ps_partkey";

const Q12: &str = "\
select l_shipmode,
       sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end)
         as high_line_count,
       sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 0 else 1 end)
         as low_line_count
from lineitem join orders on l_orderkey = o_orderkey
where l_shipmode in ('MAIL', 'SHIP')
  and l_commitdate < l_receiptdate
  and l_shipdate < l_commitdate
  and l_receiptdate >= date '1994-01-01' and l_receiptdate < date '1995-01-01'
group by l_shipmode
order by l_shipmode";

const Q13: &str = "\
select c_count, count(*) as custdist
from (select c_custkey, count(o_orderkey) as c_count
      from customer
        left join orders on c_custkey = o_custkey
          and o_comment not like '%special%requests%'
      group by c_custkey) as c_orders
group by c_count
order by custdist desc, c_count desc";

const Q14: &str = "\
select 100.00 * sum(case when p_type like 'PROMO%'
                         then l_extendedprice * (1 - l_discount)
                         else 0.00 end)
       / sum(l_extendedprice * (1 - l_discount)) as promo_revenue
from lineitem join part force index (primary) on l_partkey = p_partkey
where l_shipdate >= date '1995-09-01' and l_shipdate < date '1995-10-01'";

const Q15: &str = "\
select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
from lineitem
where l_shipdate >= date '1996-01-01' and l_shipdate < date '1996-04-01'
group by l_suppkey";

const Q16: &str = "\
select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
from part join partsupp on p_partkey = ps_partkey
where p_brand <> 'Brand#45'
  and p_type not like 'MEDIUM POLISHED%'
  and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
  and ps_suppkey not in (select s_suppkey from supplier
                         where s_comment like '%Customer%Complaints%')
group by p_brand, p_type, p_size
order by supplier_cnt desc, p_brand, p_type, p_size";

const Q17: &str = "\
select p_partkey, p_brand, p_container, l_quantity, l_extendedprice
from part join lineitem force index (i_l_partkey) on p_partkey = l_partkey
where p_brand = 'Brand#23' and p_container = 'MED BOX'";

const Q18: &str = "\
select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, qty
from (select l_orderkey as big_ok, sum(l_quantity) as qty
      from lineitem
      group by l_orderkey
      having sum(l_quantity) > 300) as big
  join orders on big_ok = o_orderkey
  join customer on o_custkey = c_custkey
order by o_totalprice desc, o_orderdate
limit 100";

const Q19: &str = "\
select sum(l_extendedprice * (1 - l_discount)) as revenue
from part join lineitem force index (i_l_partkey) on p_partkey = l_partkey
where ((p_brand = 'Brand#12'
        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and p_size between 1 and 5)
    or (p_brand = 'Brand#23'
        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and p_size between 1 and 10)
    or (p_brand = 'Brand#34'
        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and p_size between 1 and 15))
  and l_shipinstruct = 'DELIVER IN PERSON'
  and l_shipmode in ('AIR', 'AIR REG')
  and ((p_brand = 'Brand#12'
        and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        and l_quantity between 1 and 11)
    or (p_brand = 'Brand#23'
        and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        and l_quantity between 10 and 20)
    or (p_brand = 'Brand#34'
        and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        and l_quantity between 20 and 30))";

const Q20: &str = "\
select s_suppkey, s_name, s_address, s_nationkey, n_nationkey, n_name
from supplier join nation on s_nationkey = n_nationkey
where n_name = 'CANADA'";

const Q21: &str = "\
select s_name, count(*) as numwait
from lineitem as l1
  join orders on l1.l_orderkey = o_orderkey
  join supplier on l1.l_suppkey = s_suppkey
  join nation on s_nationkey = n_nationkey
where l1.l_receiptdate > l1.l_commitdate
  and o_orderstatus = 'F'
  and n_name = 'SAUDI ARABIA'
  and exists (select * from lineitem as l2
              where l2.l_orderkey = l1.l_orderkey
                and l2.l_suppkey <> l1.l_suppkey)
  and not exists (select * from lineitem as l3
                  where l3.l_orderkey = l1.l_orderkey
                    and l3.l_suppkey <> l1.l_suppkey
                    and l3.l_receiptdate > l3.l_commitdate)
group by s_name
order by numwait desc, s_name
limit 100";

const Q22: &str = "\
select substring(c_phone from 1 for 2) as cntrycode,
       count(*) as numcust, sum(c_acctbal) as totacctbal
from customer
where substring(c_phone from 1 for 2) in ('13', '31', '23', '29', '30', '18', '17')
  and c_acctbal > (select avg(c_acctbal) from customer
                   where c_acctbal > 0.00
                     and substring(c_phone from 1 for 2)
                       in ('13', '31', '23', '29', '30', '18', '17'))
  and not exists (select * from orders where o_custkey = c_custkey)
group by cntrycode
order by cntrycode";
