//! The typed SQL AST and its pretty-printer.
//!
//! The printer emits a canonical, fully-parenthesized rendering that
//! re-parses to the same tree — `parse → print → parse → print` is a
//! fixed point (the proptest leg in `tests/` holds it to that). Every
//! node carries the source [`Pos`] of its first token so the binder can
//! report positioned diagnostics.

use std::fmt;

use taurus_common::Value;
use taurus_expr::ast::{ArithOp, CmpOp};

use crate::lexer::Pos;

/// An identifier (table, column, index, alias), lowercased.
#[derive(Clone, Debug, PartialEq)]
pub struct Ident {
    pub name: String,
    pub pos: Pos,
}

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    /// `EXPLAIN <select>`: render the bound physical plan as text.
    Explain(SelectStmt),
}

/// One SELECT query (also used for derived tables and subqueries).
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_: Option<SqlExpr>,
    pub group_by: Vec<SqlExpr>,
    pub having: Option<SqlExpr>,
    /// (expression, descending).
    pub order_by: Vec<(SqlExpr, bool)>,
    pub limit: Option<u64>,
}

/// One SELECT-list entry.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of the FROM row, in order.
    Wildcard(Pos),
    Expr {
        expr: SqlExpr,
        alias: Option<Ident>,
    },
}

/// Join flavours the grammar accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

/// A FROM-clause factor: base table, derived table, or join tree.
#[derive(Clone, Debug, PartialEq)]
pub enum TableRef {
    Table {
        name: Ident,
        alias: Option<Ident>,
        /// `FORCE INDEX (name)` — requests a lookup join into this table
        /// via the named index (`primary` selects the primary index).
        force_index: Option<Ident>,
    },
    Derived {
        select: Box<SelectStmt>,
        alias: Ident,
    },
    Join {
        left: Box<TableRef>,
        kind: JoinKind,
        right: Box<TableRef>,
        on: SqlExpr,
    },
}

/// Aggregate function names (`COUNT(*)` is `Count` with no argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggName {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggName {
    pub fn as_str(self) -> &'static str {
        match self {
            AggName::Count => "count",
            AggName::Sum => "sum",
            AggName::Min => "min",
            AggName::Max => "max",
            AggName::Avg => "avg",
        }
    }
}

/// A scalar expression with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct SqlExpr {
    pub kind: ExprKind,
    pub pos: Pos,
}

#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    Column {
        qualifier: Option<Ident>,
        name: Ident,
    },
    Lit(Value),
    Cmp(CmpOp, Box<SqlExpr>, Box<SqlExpr>),
    And(Box<SqlExpr>, Box<SqlExpr>),
    Or(Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
    Arith(ArithOp, Box<SqlExpr>, Box<SqlExpr>),
    Neg(Box<SqlExpr>),
    Like {
        expr: Box<SqlExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<SqlExpr>,
        list: Vec<SqlExpr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)` — lowered to a semi/anti hash join.
    InSelect {
        expr: Box<SqlExpr>,
        select: Box<SelectStmt>,
        negated: bool,
    },
    Between {
        expr: Box<SqlExpr>,
        lo: Box<SqlExpr>,
        hi: Box<SqlExpr>,
    },
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
    Case {
        branches: Vec<(SqlExpr, SqlExpr)>,
        else_: Box<SqlExpr>,
    },
    /// Aggregate call; `arg: None` only for `COUNT(*)`.
    Agg {
        func: AggName,
        distinct: bool,
        arg: Option<Box<SqlExpr>>,
    },
    /// `EXTRACT(YEAR FROM e)`.
    ExtractYear(Box<SqlExpr>),
    /// `SUBSTRING(e FROM a FOR n)` — 1-based.
    Substr {
        expr: Box<SqlExpr>,
        from: u64,
        len: u64,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        select: Box<SelectStmt>,
        negated: bool,
    },
    /// Scalar subquery: `(SELECT ...)` in expression position.
    Scalar(Box<SelectStmt>),
}

impl SqlExpr {
    pub fn new(kind: ExprKind, pos: Pos) -> SqlExpr {
        SqlExpr { kind, pos }
    }
}

fn lit_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("date '{d}'"),
        other => other.to_string(),
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{}.{}", q.name, name.name),
                None => write!(f, "{}", name.name),
            },
            ExprKind::Lit(v) => write!(f, "{}", lit_to_string(v)),
            ExprKind::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ExprKind::And(a, b) => write!(f, "({a} and {b})"),
            ExprKind::Or(a, b) => write!(f, "({a} or {b})"),
            ExprKind::Not(a) => write!(f, "(not {a})"),
            ExprKind::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            ExprKind::Neg(a) => write!(f, "(- {a})"),
            ExprKind::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}like '{}')",
                if *negated { "not " } else { "" },
                pattern.replace('\'', "''")
            ),
            ExprKind::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}in (", if *negated { "not " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            ExprKind::InSelect {
                expr,
                select,
                negated,
            } => write!(
                f,
                "({expr} {}in ({select}))",
                if *negated { "not " } else { "" }
            ),
            ExprKind::Between { expr, lo, hi } => {
                write!(f, "({expr} between {lo} and {hi})")
            }
            ExprKind::IsNull { expr, negated } => {
                write!(f, "({expr} is {}null)", if *negated { "not " } else { "" })
            }
            ExprKind::Case { branches, else_ } => {
                write!(f, "case")?;
                for (c, v) in branches {
                    write!(f, " when {c} then {v}")?;
                }
                write!(f, " else {else_} end")
            }
            ExprKind::Agg {
                func,
                distinct,
                arg,
            } => match arg {
                None => write!(f, "count(*)"),
                Some(a) => write!(
                    f,
                    "{}({}{a})",
                    func.as_str(),
                    if *distinct { "distinct " } else { "" }
                ),
            },
            ExprKind::ExtractYear(a) => write!(f, "extract(year from {a})"),
            ExprKind::Substr { expr, from, len } => {
                write!(f, "substring({expr} from {from} for {len})")
            }
            ExprKind::Exists { select, negated } => {
                write!(f, "{}exists ({select})", if *negated { "not " } else { "" })
            }
            ExprKind::Scalar(s) => write!(f, "({s})"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table {
                name,
                alias,
                force_index,
            } => {
                write!(f, "{}", name.name)?;
                if let Some(ix) = force_index {
                    write!(f, " force index ({})", ix.name)?;
                }
                if let Some(a) = alias {
                    write!(f, " as {}", a.name)?;
                }
                Ok(())
            }
            TableRef::Derived { select, alias } => {
                write!(f, "({select}) as {}", alias.name)
            }
            TableRef::Join {
                left,
                kind,
                right,
                on,
            } => {
                let kw = match kind {
                    JoinKind::Inner => "join",
                    JoinKind::Left => "left join",
                };
                write!(f, "{left} {kw} ")?;
                // A join tree on the right needs parens to re-parse with
                // the same associativity.
                match **right {
                    TableRef::Join { .. } => write!(f, "({right})")?,
                    _ => write!(f, "{right}")?,
                }
                write!(f, " on {on}")
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard(_) => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " as {}", a.name)?;
                    }
                }
            }
        }
        write!(f, " from ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(w) = &self.where_ {
            write!(f, " where {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " having {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " order by ")?;
            for (i, (e, desc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
                if *desc {
                    write!(f, " desc")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "explain {s}"),
        }
    }
}
