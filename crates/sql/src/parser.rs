//! Recursive-descent parser: positioned tokens → [`Statement`].
//!
//! The grammar is the TPC-H-complete SELECT subset (joins with ON,
//! FORCE INDEX, derived tables, WHERE/GROUP BY/HAVING/ORDER BY/LIMIT,
//! EXISTS / IN / scalar subqueries, CASE, EXTRACT, SUBSTRING, and the
//! aggregate functions). Precedence, loosest first:
//! `OR < AND < NOT < comparison/IS/IN/LIKE/BETWEEN < +- < */ < unary -`.
//!
//! Every failure is a positioned [`taurus_common::Error::Parse`]; a
//! recursion-depth guard keeps adversarial nesting from overflowing the
//! stack (the fuzz tests drive this with random token streams).

use taurus_common::{Date32, Dec, Error, Result, Value};
use taurus_expr::ast::{ArithOp, CmpOp};

use crate::ast::*;
use crate::lexer::{lex, parse_err, Pos, Tok, Token};

/// Nesting bound for expressions and subqueries, aligned with the wire
/// protocol's `MAX_EXPR_DEPTH`.
const MAX_DEPTH: usize = 64;

/// Parse one statement (`SELECT ...` or `EXPLAIN SELECT ...`, with an
/// optional trailing `;`).
pub fn parse(text: &str) -> Result<Statement> {
    let tokens = lex(text)?;
    let mut p = Parser {
        tokens,
        at: 0,
        depth: 0,
    };
    let explain = p.eat_kw("explain");
    let select = p.select_stmt()?;
    let _ = p.eat(&Tok::Semi);
    if let Some(t) = p.peek() {
        return Err(parse_err(
            t.pos,
            format!("unexpected {} after statement", t.tok.describe()),
        ));
    }
    Ok(if explain {
        Statement::Explain(select)
    } else {
        Statement::Select(select)
    })
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn pos(&self) -> Pos {
        self.peek()
            .map(|t| t.pos)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.pos).unwrap_or_else(Pos::start))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    /// Consume `tok` if it is next.
    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|t| &t.tok) == Some(tok) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    /// Is the next token the keyword `kw`?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw)
    }

    /// Consume the keyword `kw` if it is next.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Pos> {
        let pos = self.pos();
        if self.eat(tok) {
            Ok(pos)
        } else {
            Err(self.unexpected(what))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{kw}`")))
        }
    }

    fn unexpected(&self, wanted: &str) -> Error {
        match self.peek() {
            Some(t) => parse_err(
                t.pos,
                format!("expected {wanted}, found {}", t.tok.describe()),
            ),
            None => parse_err(self.pos(), format!("expected {wanted}, found end of input")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<Ident> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s),
                pos,
            }) if !is_reserved(s) => {
                let id = Ident {
                    name: s.clone(),
                    pos: *pos,
                };
                self.at += 1;
                Ok(id)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn descend<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        if self.depth >= MAX_DEPTH {
            return Err(parse_err(self.pos(), "expression nesting too deep"));
        }
        self.depth += 1;
        let r = f(self);
        self.depth -= 1;
        r
    }

    // ---- statements ----------------------------------------------------

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        self.descend(|p| p.select_stmt_inner())
    }

    fn select_stmt_inner(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if let Some(Token {
                tok: Tok::Star,
                pos,
            }) = self.peek()
            {
                let pos = *pos;
                self.at += 1;
                items.push(SelectItem::Wildcard(pos));
            } else {
                let expr = self.expr()?;
                let alias = self.opt_alias()?;
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            from.push(self.table_ref()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    let _ = self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Some(Token {
                    tok: Tok::Int(n), ..
                }) if n >= 0 => Some(n as u64),
                Some(t) => {
                    return Err(parse_err(
                        t.pos,
                        format!("expected row count after LIMIT, found {}", t.tok.describe()),
                    ))
                }
                None => return Err(self.unexpected("row count after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            where_,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    /// `[AS] ident` if present.
    fn opt_alias(&mut self) -> Result<Option<Ident>> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident("alias after AS")?));
        }
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) if !is_reserved(s) => Ok(Some(self.ident("alias")?)),
            _ => Ok(None),
        }
    }

    // ---- FROM ----------------------------------------------------------

    /// A factor followed by any number of `[left] join ... on ...`.
    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.eat_kw("left") {
                let _ = self.eat_kw("outer");
                JoinKind::Left
            } else if self.eat_kw("inner") || self.at_kw("join") {
                JoinKind::Inner
            } else {
                break;
            };
            self.expect_kw("join")?;
            let right = self.table_factor()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                kind,
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat(&Tok::LParen) {
            if self.at_kw("select") {
                let select = self.select_stmt()?;
                self.expect(&Tok::RParen, "`)` closing derived table")?;
                let _ = self.eat_kw("as");
                let alias = self.ident("alias for derived table")?;
                return Ok(TableRef::Derived {
                    select: Box::new(select),
                    alias,
                });
            }
            // Parenthesized join tree.
            let inner = self.descend(|p| p.table_ref())?;
            self.expect(&Tok::RParen, "`)` closing join group")?;
            return Ok(inner);
        }
        let name = self.ident("table name")?;
        let force_index = if self.eat_kw("force") {
            self.expect_kw("index")?;
            self.expect(&Tok::LParen, "`(` after FORCE INDEX")?;
            let ix = match self.peek() {
                // `primary` is otherwise an ordinary identifier; accept it
                // here explicitly so `FORCE INDEX (primary)` works.
                Some(Token {
                    tok: Tok::Ident(s),
                    pos,
                }) => {
                    let id = Ident {
                        name: s.clone(),
                        pos: *pos,
                    };
                    self.at += 1;
                    id
                }
                _ => return Err(self.unexpected("index name")),
            };
            self.expect(&Tok::RParen, "`)` after index name")?;
            Some(ix)
        } else {
            None
        };
        let alias = self.opt_alias()?;
        Ok(TableRef::Table {
            name,
            alias,
            force_index,
        })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<SqlExpr> {
        self.descend(|p| p.or_expr())
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.at_kw("or") {
            let pos = self.pos();
            self.at += 1;
            let right = self.and_expr()?;
            left = SqlExpr::new(ExprKind::Or(Box::new(left), Box::new(right)), pos);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.at_kw("and") {
            let pos = self.pos();
            self.at += 1;
            let right = self.not_expr()?;
            left = SqlExpr::new(ExprKind::And(Box::new(left), Box::new(right)), pos);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.at_kw("not") && !self.next_is_exists() {
            let pos = self.pos();
            self.at += 1;
            let inner = self.descend(|p| p.not_expr())?;
            return Ok(SqlExpr::new(ExprKind::Not(Box::new(inner)), pos));
        }
        self.cmp_expr()
    }

    /// `NOT EXISTS` is handled in primary position, not as a generic NOT.
    fn next_is_exists(&self) -> bool {
        matches!(
            self.tokens.get(self.at + 1),
            Some(Token { tok: Tok::Ident(s), .. }) if s == "exists"
        )
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr> {
        let left = self.add_expr()?;
        // Comparison and the SQL predicate suffixes are non-associative.
        let pos = self.pos();
        let op = match self.peek().map(|t| &t.tok) {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.at += 1;
            let right = self.add_expr()?;
            return Ok(SqlExpr::new(
                ExprKind::Cmp(op, Box::new(left), Box::new(right)),
                pos,
            ));
        }
        let negated = {
            let save = self.at;
            if self.eat_kw("not") {
                if self.at_kw("like") || self.at_kw("in") || self.at_kw("between") {
                    true
                } else {
                    self.at = save;
                    return Ok(left);
                }
            } else {
                false
            }
        };
        if self.eat_kw("like") {
            let pos = self.pos();
            match self.bump() {
                Some(Token {
                    tok: Tok::Str(pattern),
                    ..
                }) => {
                    return Ok(SqlExpr::new(
                        ExprKind::Like {
                            expr: Box::new(left),
                            pattern,
                            negated,
                        },
                        pos,
                    ))
                }
                _ => return Err(parse_err(pos, "expected string pattern after LIKE")),
            }
        }
        if self.eat_kw("in") {
            let pos = self.pos();
            self.expect(&Tok::LParen, "`(` after IN")?;
            if self.at_kw("select") {
                let select = self.select_stmt()?;
                self.expect(&Tok::RParen, "`)` closing IN subquery")?;
                return Ok(SqlExpr::new(
                    ExprKind::InSelect {
                        expr: Box::new(left),
                        select: Box::new(select),
                        negated,
                    },
                    pos,
                ));
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen, "`)` closing IN list")?;
            return Ok(SqlExpr::new(
                ExprKind::InList {
                    expr: Box::new(left),
                    list,
                    negated,
                },
                pos,
            ));
        }
        if self.eat_kw("between") {
            let pos = self.pos();
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            let between = SqlExpr::new(
                ExprKind::Between {
                    expr: Box::new(left),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                },
                pos,
            );
            return Ok(if negated {
                SqlExpr::new(ExprKind::Not(Box::new(between)), pos)
            } else {
                between
            });
        }
        if self.at_kw("is") {
            let pos = self.pos();
            self.at += 1;
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::new(
                ExprKind::IsNull {
                    expr: Box::new(left),
                    negated,
                },
                pos,
            ));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.at += 1;
            let right = self.mul_expr()?;
            left = SqlExpr::new(ExprKind::Arith(op, Box::new(left), Box::new(right)), pos);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                _ => break,
            };
            let pos = self.pos();
            self.at += 1;
            let right = self.unary_expr()?;
            left = SqlExpr::new(ExprKind::Arith(op, Box::new(left), Box::new(right)), pos);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<SqlExpr> {
        if let Some(Token {
            tok: Tok::Minus,
            pos,
        }) = self.peek()
        {
            let pos = *pos;
            self.at += 1;
            let inner = self.descend(|p| p.unary_expr())?;
            return Ok(SqlExpr::new(ExprKind::Neg(Box::new(inner)), pos));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        let Some(t) = self.peek().cloned() else {
            return Err(self.unexpected("an expression"));
        };
        let pos = t.pos;
        match t.tok {
            Tok::Int(v) => {
                self.at += 1;
                Ok(SqlExpr::new(ExprKind::Lit(Value::Int(v)), pos))
            }
            Tok::Dec(s) => {
                self.at += 1;
                let d = Dec::parse(&s)
                    .map_err(|e| parse_err(pos, format!("bad decimal literal `{s}`: {e}")))?;
                Ok(SqlExpr::new(ExprKind::Lit(Value::Decimal(d)), pos))
            }
            Tok::Str(s) => {
                self.at += 1;
                Ok(SqlExpr::new(ExprKind::Lit(Value::str(&s)), pos))
            }
            Tok::LParen => {
                self.at += 1;
                if self.at_kw("select") {
                    let select = self.select_stmt()?;
                    self.expect(&Tok::RParen, "`)` closing subquery")?;
                    return Ok(SqlExpr::new(ExprKind::Scalar(Box::new(select)), pos));
                }
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Tok::Ident(word) => self.keyword_or_column(&word, pos),
            other => Err(parse_err(
                pos,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }

    fn keyword_or_column(&mut self, word: &str, pos: Pos) -> Result<SqlExpr> {
        match word {
            "case" => {
                self.at += 1;
                let mut branches = Vec::new();
                while self.eat_kw("when") {
                    let c = self.expr()?;
                    self.expect_kw("then")?;
                    let v = self.expr()?;
                    branches.push((c, v));
                }
                if branches.is_empty() {
                    return Err(parse_err(pos, "CASE needs at least one WHEN branch"));
                }
                self.expect_kw("else")?;
                let else_ = self.expr()?;
                self.expect_kw("end")?;
                Ok(SqlExpr::new(
                    ExprKind::Case {
                        branches,
                        else_: Box::new(else_),
                    },
                    pos,
                ))
            }
            "exists" => {
                self.at += 1;
                self.expect(&Tok::LParen, "`(` after EXISTS")?;
                let select = self.select_stmt()?;
                self.expect(&Tok::RParen, "`)` closing EXISTS subquery")?;
                Ok(SqlExpr::new(
                    ExprKind::Exists {
                        select: Box::new(select),
                        negated: false,
                    },
                    pos,
                ))
            }
            "not" if self.next_is_exists() => {
                self.at += 2; // not exists
                self.expect(&Tok::LParen, "`(` after NOT EXISTS")?;
                let select = self.select_stmt()?;
                self.expect(&Tok::RParen, "`)` closing EXISTS subquery")?;
                Ok(SqlExpr::new(
                    ExprKind::Exists {
                        select: Box::new(select),
                        negated: true,
                    },
                    pos,
                ))
            }
            "date" => {
                self.at += 1;
                match self.bump() {
                    Some(Token {
                        tok: Tok::Str(s),
                        pos: spos,
                    }) => {
                        let d = Date32::parse(&s)
                            .map_err(|e| parse_err(spos, format!("bad date literal '{s}': {e}")))?;
                        Ok(SqlExpr::new(ExprKind::Lit(Value::Date(d)), pos))
                    }
                    _ => Err(parse_err(pos, "expected string after DATE")),
                }
            }
            "extract" => {
                self.at += 1;
                self.expect(&Tok::LParen, "`(` after EXTRACT")?;
                self.expect_kw("year")?;
                self.expect_kw("from")?;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)` closing EXTRACT")?;
                Ok(SqlExpr::new(ExprKind::ExtractYear(Box::new(e)), pos))
            }
            "substring" => {
                self.at += 1;
                self.expect(&Tok::LParen, "`(` after SUBSTRING")?;
                let e = self.expr()?;
                self.expect_kw("from")?;
                let from = self.small_uint("start position")?;
                self.expect_kw("for")?;
                let len = self.small_uint("length")?;
                self.expect(&Tok::RParen, "`)` closing SUBSTRING")?;
                Ok(SqlExpr::new(
                    ExprKind::Substr {
                        expr: Box::new(e),
                        from,
                        len,
                    },
                    pos,
                ))
            }
            "count" | "sum" | "min" | "max" | "avg" => {
                let func = match word {
                    "count" => AggName::Count,
                    "sum" => AggName::Sum,
                    "min" => AggName::Min,
                    "max" => AggName::Max,
                    _ => AggName::Avg,
                };
                self.at += 1;
                self.expect(&Tok::LParen, "`(` after aggregate name")?;
                if func == AggName::Count && self.eat(&Tok::Star) {
                    self.expect(&Tok::RParen, "`)` closing COUNT(*)")?;
                    return Ok(SqlExpr::new(
                        ExprKind::Agg {
                            func,
                            distinct: false,
                            arg: None,
                        },
                        pos,
                    ));
                }
                let distinct = self.eat_kw("distinct");
                let arg = self.expr()?;
                self.expect(&Tok::RParen, "`)` closing aggregate")?;
                Ok(SqlExpr::new(
                    ExprKind::Agg {
                        func,
                        distinct,
                        arg: Some(Box::new(arg)),
                    },
                    pos,
                ))
            }
            w if is_reserved(w) => Err(parse_err(
                pos,
                format!("expected an expression, found keyword `{w}`"),
            )),
            _ => {
                let first = self.ident("column")?;
                if self.eat(&Tok::Dot) {
                    let name = self.ident("column after `.`")?;
                    Ok(SqlExpr::new(
                        ExprKind::Column {
                            qualifier: Some(first),
                            name,
                        },
                        pos,
                    ))
                } else {
                    Ok(SqlExpr::new(
                        ExprKind::Column {
                            qualifier: None,
                            name: first,
                        },
                        pos,
                    ))
                }
            }
        }
    }

    fn small_uint(&mut self, what: &str) -> Result<u64> {
        match self.bump() {
            Some(Token {
                tok: Tok::Int(n), ..
            }) if n >= 0 => Ok(n as u64),
            Some(t) => Err(parse_err(
                t.pos,
                format!("expected {what}, found {}", t.tok.describe()),
            )),
            None => Err(self.unexpected(what)),
        }
    }
}

/// Keywords that cannot be bare identifiers (so `from`, `where`, ...
/// never parse as table aliases or column names).
fn is_reserved(s: &str) -> bool {
    matches!(
        s,
        "select"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "order"
            | "limit"
            | "as"
            | "join"
            | "inner"
            | "left"
            | "outer"
            | "on"
            | "and"
            | "or"
            | "not"
            | "in"
            | "like"
            | "between"
            | "is"
            | "null"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "exists"
            | "asc"
            | "desc"
            | "force"
            | "explain"
            | "distinct"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> String {
        let s1 = parse(sql).unwrap();
        let printed = s1.to_string();
        let s2 = parse(&printed).unwrap();
        assert_eq!(printed, s2.to_string(), "printer not a fixed point");
        printed
    }

    #[test]
    fn parses_basic_select() {
        let s = roundtrip("SELECT a, b + 1 AS c FROM t WHERE a > 5 ORDER BY a DESC LIMIT 3");
        assert!(s.contains("select a, (b + 1) as c from t"), "{s}");
        assert!(s.contains("order by a desc limit 3"), "{s}");
    }

    #[test]
    fn precedence_and_or_arith() {
        let s = roundtrip("select * from t where a = 1 or b = 2 and c < 3 + 4 * 5");
        assert!(
            s.contains("((a = 1) or ((b = 2) and (c < (3 + (4 * 5)))))"),
            "{s}"
        );
    }

    #[test]
    fn joins_force_index_and_derived_tables() {
        roundtrip(
            "select x.a from (select a from t group by a) as x \
             join u force index (primary) on u.a = x.a \
             left join v on v.b = x.a and v.c = 1",
        );
    }

    #[test]
    fn subqueries_exists_in_scalar() {
        roundtrip(
            "select a from t where exists (select * from u where u.a = t.a) \
             and b in (select b from v) and c > (select avg(c) from t) \
             and not exists (select * from w) and d not in (1, 2, 3)",
        );
    }

    #[test]
    fn case_extract_substring_aggregates() {
        roundtrip(
            "select case when a = 1 then 'x' else 'y' end, extract(year from d), \
             substring(p from 1 for 2), count(distinct k), count(*), sum(a * (1 - b)) \
             from t group by a",
        );
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse("select from t").unwrap_err();
        match err {
            Error::Parse(m) => assert!(m.contains("line 1, col 8"), "{m}"),
            other => panic!("expected Parse, got {other:?}"),
        }
        let err = parse("select a from t where").unwrap_err();
        assert!(matches!(err, Error::Parse(_)), "{err:?}");
    }

    #[test]
    fn depth_guard_refuses_deep_nesting() {
        let mut sql = String::from("select ");
        for _ in 0..200 {
            sql.push('(');
        }
        sql.push('1');
        for _ in 0..200 {
            sql.push(')');
        }
        sql.push_str(" from t");
        let err = parse(&sql).unwrap_err();
        match err {
            Error::Parse(m) => assert!(m.contains("too deep"), "{m}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }
}
