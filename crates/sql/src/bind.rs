//! The catalog binder: typed SQL AST → executable [`Plan`].
//!
//! Binding resolves names against the live catalog and lowers the
//! statement onto the existing plan layer, so everything downstream —
//! NDP post-processing, columnar execution, `taurus-verify`'s plan gate —
//! applies to SQL text for free. The lowering contract:
//!
//! - each base table in FROM becomes one [`ScanNode`] whose `output` is
//!   exactly the set of referenced columns (ascending; `[0]` when none),
//!   and whose `predicate` holds the single-table WHERE/ON conjuncts in
//!   written order, lowered over *table* columns;
//! - `JOIN ... ON` lowers left-deep in written order: plain joins become
//!   [`HashJoinNode`]s keyed by the ON equalities, `FORCE INDEX (...)`
//!   on the right side requests a [`LookupJoinNode`] through that index,
//!   correlating the equality conjuncts that cover the index key prefix;
//! - `[NOT] EXISTS` / `[NOT] IN (SELECT ...)` WHERE conjuncts become
//!   Semi/Anti joins appended after the FROM tree, in written order;
//! - grouping lowers to [`HashAggNode`] with layout `groups ++ aggs`,
//!   HAVING filters that layout, and the SELECT list projects it
//!   (identity projections are elided);
//! - ORDER BY resolves against SELECT output positions; with LIMIT it
//!   becomes a top-N sort.
//!
//! Every diagnostic is a positioned [`Error::Parse`] (`line L, col C:`),
//! the same taxonomy the parser uses, so one wire error code covers the
//! whole frontend.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use taurus_common::schema::TableSchema;
use taurus_common::{DataType, Error, Result, Value};
use taurus_executor::Session;
use taurus_expr::ast::{CmpOp, Expr};
use taurus_ndp::engine::Table;
use taurus_ndp::TaurusDb;
use taurus_optimizer::ndp_post::ndp_post_process;
use taurus_optimizer::plan::{
    AggFuncEx, AggItem, HashAggNode, HashJoinNode, JoinType, LookupJoinNode, Plan, ScanNode,
};
use taurus_verify::{infer_plan, plan_width};

use crate::ast::{AggName, ExprKind, Ident, JoinKind, SelectItem, SelectStmt, SqlExpr, TableRef};
use crate::lexer::{parse_err, Pos};

/// Subquery nesting the binder will follow (derived tables, IN/EXISTS,
/// scalar subqueries) before refusing.
const MAX_SUBQUERY_DEPTH: usize = 8;

/// Bind a SELECT against the session's catalog and lower it to a plan.
///
/// Mirrors the query-builder facade: NDP post-processing runs when the
/// session has NDP enabled, and debug builds gate the result through
/// `taurus_verify::check_plan` before returning it.
pub fn bind(session: &Session, stmt: &SelectStmt) -> Result<Plan> {
    let mut b = Binder { session, depth: 0 };
    let (mut plan, _) = b.bind_select(stmt)?;
    if session.ndp() {
        ndp_post_process(&mut plan, session.db())?;
    }
    #[cfg(debug_assertions)]
    taurus_verify::check_plan(&plan, session.db())?;
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Type families for positioned mismatch diagnostics. The verifier types the
// final plan exactly; the binder only needs coarse families to reject
// nonsense comparisons with a source position attached.

#[derive(Clone, Copy, PartialEq, Eq)]
enum Family {
    Num,
    Date,
    Str,
}

fn family(dt: &DataType) -> Family {
    match dt {
        DataType::Int | DataType::BigInt | DataType::Decimal { .. } | DataType::Double => {
            Family::Num
        }
        DataType::Date => Family::Date,
        DataType::Char(_) | DataType::Varchar(_) => Family::Str,
    }
}

fn family_name(f: Family) -> &'static str {
    match f {
        Family::Num => "numeric",
        Family::Date => "date",
        Family::Str => "string",
    }
}

fn value_family(v: &Value) -> Option<Family> {
    match v {
        Value::Int(_) | Value::Decimal(_) | Value::Double(_) => Some(Family::Num),
        Value::Date(_) => Some(Family::Date),
        Value::Str(_) => Some(Family::Str),
        Value::Null => None,
    }
}

// ---------------------------------------------------------------------------
// FROM-clause atoms and the analysis tree.

enum AtomKind {
    Base {
        table: Arc<Table>,
        force: Option<Ident>,
    },
    Derived {
        names: Vec<String>,
        dtypes: Vec<DataType>,
        width: usize,
    },
}

struct Atom {
    alias: String,
    pos: Pos,
    kind: AtomKind,
    /// Referenced table/derived columns → reference count. Keys (sorted)
    /// become the scan output / lookup `inner_output`.
    usage: BTreeMap<usize, usize>,
    /// On the right side of a LEFT JOIN: WHERE conjuncts must not be
    /// pushed below the join.
    right_of_left: bool,
}

enum ColHit {
    None,
    One(usize),
    Many,
}

impl Atom {
    fn width(&self) -> usize {
        match &self.kind {
            AtomKind::Base { table, .. } => table.schema.columns.len(),
            AtomKind::Derived { width, .. } => *width,
        }
    }

    fn find_col(&self, name: &str) -> ColHit {
        match &self.kind {
            AtomKind::Base { table, .. } => {
                match table.schema.columns.iter().position(|c| c.name == name) {
                    Some(i) => ColHit::One(i),
                    None => ColHit::None,
                }
            }
            AtomKind::Derived { names, .. } => {
                let mut hits = names.iter().enumerate().filter(|(_, n)| *n == name);
                match (hits.next(), hits.next()) {
                    (None, _) => ColHit::None,
                    (Some((i, _)), None) => ColHit::One(i),
                    _ => ColHit::Many,
                }
            }
        }
    }

    fn col_name(&self, c: usize) -> String {
        match &self.kind {
            AtomKind::Base { table, .. } => table.schema.columns[c].name.clone(),
            AtomKind::Derived { names, .. } => names[c].clone(),
        }
    }

    fn col_dtype(&self, c: usize) -> DataType {
        match &self.kind {
            AtomKind::Base { table, .. } => table.schema.columns[c].dtype,
            AtomKind::Derived { dtypes, .. } => dtypes[c],
        }
    }
}

/// Per-SELECT binding state built by the analysis pass.
struct FromCx<'s> {
    atoms: Vec<Atom>,
    /// Derived-table plans, taken exactly once at lowering.
    derived_plans: Vec<Option<Plan>>,
    /// Per-atom single-table conjuncts (ON-derived first, then WHERE),
    /// lowered over table columns for base atoms.
    scan_preds: Vec<Vec<&'s SqlExpr>>,
    /// Like `scan_preds` but for derived atoms: becomes a Filter directly
    /// above the derived plan, before any join.
    atom_filters: Vec<Vec<&'s SqlExpr>>,
}

impl<'s> FromCx<'s> {
    fn push_atom(&mut self, atom: Atom) -> Result<usize> {
        if let Some(other) = self.atoms.iter().find(|a| a.alias == atom.alias) {
            let _ = other;
            return Err(parse_err(
                atom.pos,
                format!("duplicate table alias `{}`", atom.alias),
            ));
        }
        self.atoms.push(atom);
        self.derived_plans.push(None);
        self.scan_preds.push(Vec::new());
        self.atom_filters.push(Vec::new());
        Ok(self.atoms.len() - 1)
    }
}

/// The lowering tree: mirrors the written join shape, with each ON
/// already classified.
enum FromNode<'s> {
    Atom(usize),
    Hash {
        left: Box<FromNode<'s>>,
        right: Box<FromNode<'s>>,
        join: JoinType,
        /// (left (atom, col), right (atom, col)) per ON equality, in
        /// written order.
        keys: Vec<((usize, usize), (usize, usize))>,
        residual: Vec<&'s SqlExpr>,
    },
    Lookup {
        left: Box<FromNode<'s>>,
        atom: usize,
        index: usize,
        join: JoinType,
        /// Outer (atom, col) per consumed index key column, in key order.
        key: Vec<(usize, usize)>,
        residual: Vec<&'s SqlExpr>,
    },
}

/// A WHERE-level subquery conjunct, lowered to a Semi/Anti join after the
/// FROM tree.
enum SubJoin<'s> {
    Exists {
        negated: bool,
        table: Arc<Table>,
        index: usize,
        /// Outer (atom, col) per consumed index key column, in key order.
        key: Vec<(usize, usize)>,
        inner_alias: String,
        inner_preds: Vec<&'s SqlExpr>,
        residual: Vec<&'s SqlExpr>,
        /// Inner columns referenced by residual conjuncts, ascending.
        inner_out: Vec<usize>,
    },
    InSelect {
        pos: Pos,
        negated: bool,
        left: (usize, usize),
        select: &'s SelectStmt,
    },
}

// ---------------------------------------------------------------------------
// Lowering frames: which positional space an expression lowers into.

enum Frame<'a> {
    /// Scan / lookup-inner predicate: positions are table columns of one
    /// base atom.
    Table { atoms: &'a [Atom], atom: usize },
    /// EXISTS inner predicate: table columns of the subquery's table.
    ExistsTable {
        schema: &'a TableSchema,
        alias: &'a str,
    },
    /// Row layout after FROM lowering: positions index `layout`.
    Layout {
        atoms: &'a [Atom],
        layout: &'a [(usize, usize)],
    },
    /// EXISTS residual: outer layout ++ the subquery's `inner_out`
    /// columns.
    ExistsCombined {
        atoms: &'a [Atom],
        layout: &'a [(usize, usize)],
        schema: &'a TableSchema,
        alias: &'a str,
        inner_out: &'a [usize],
    },
}

impl Frame<'_> {
    fn dtypes(&self) -> Vec<DataType> {
        match self {
            Frame::Table { atoms, atom } => (0..atoms[*atom].width())
                .map(|c| atoms[*atom].col_dtype(c))
                .collect(),
            Frame::ExistsTable { schema, .. } => schema.dtypes(),
            Frame::Layout { atoms, layout } => {
                layout.iter().map(|&(a, c)| atoms[a].col_dtype(c)).collect()
            }
            Frame::ExistsCombined {
                atoms,
                layout,
                schema,
                inner_out,
                ..
            } => layout
                .iter()
                .map(|&(a, c)| atoms[a].col_dtype(c))
                .chain(inner_out.iter().map(|&c| schema.columns[c].dtype))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------

struct Binder<'a> {
    session: &'a Session,
    depth: usize,
}

/// Flatten an AND spine into conjuncts, written order preserved.
fn flatten_and<'s>(e: &'s SqlExpr, out: &mut Vec<&'s SqlExpr>) {
    if let ExprKind::And(a, b) = &e.kind {
        flatten_and(a, out);
        flatten_and(b, out);
    } else {
        out.push(e);
    }
}

fn flatten_or<'s>(e: &'s SqlExpr, out: &mut Vec<&'s SqlExpr>) {
    if let ExprKind::Or(a, b) = &e.kind {
        flatten_or(a, out);
        flatten_or(b, out);
    } else {
        out.push(e);
    }
}

fn conjuncts(e: Option<&SqlExpr>) -> Vec<&SqlExpr> {
    let mut out = Vec::new();
    if let Some(e) = e {
        flatten_and(e, &mut out);
    }
    out
}

/// Does the expression contain an aggregate call (not descending into
/// subqueries)?
fn contains_agg(e: &SqlExpr) -> bool {
    match &e.kind {
        ExprKind::Agg { .. } => true,
        ExprKind::Column { .. } | ExprKind::Lit(_) => false,
        ExprKind::Cmp(_, a, b) | ExprKind::And(a, b) | ExprKind::Or(a, b) => {
            contains_agg(a) || contains_agg(b)
        }
        ExprKind::Arith(_, a, b) => contains_agg(a) || contains_agg(b),
        ExprKind::Not(a) | ExprKind::Neg(a) | ExprKind::ExtractYear(a) => contains_agg(a),
        ExprKind::Like { expr, .. }
        | ExprKind::IsNull { expr, .. }
        | ExprKind::Substr { expr, .. } => contains_agg(expr),
        ExprKind::InList { expr, list, .. } => contains_agg(expr) || list.iter().any(contains_agg),
        ExprKind::Between { expr, lo, hi } => {
            contains_agg(expr) || contains_agg(lo) || contains_agg(hi)
        }
        ExprKind::Case { branches, else_ } => {
            branches
                .iter()
                .any(|(c, v)| contains_agg(c) || contains_agg(v))
                || contains_agg(else_)
        }
        ExprKind::InSelect { expr, .. } => contains_agg(expr),
        ExprKind::Exists { .. } | ExprKind::Scalar(_) => false,
    }
}

fn stmt_pos(s: &SelectStmt) -> Pos {
    match s.items.first() {
        Some(SelectItem::Wildcard(p)) => *p,
        Some(SelectItem::Expr { expr, .. }) => expr.pos,
        None => Pos::start(),
    }
}

fn tableref_pos(t: &TableRef) -> Pos {
    match t {
        TableRef::Table { name, .. } => name.pos,
        TableRef::Derived { alias, .. } => alias.pos,
        TableRef::Join { left, .. } => tableref_pos(left),
    }
}

fn plan_dtypes(plan: &Plan, db: &TaurusDb) -> Vec<DataType> {
    match infer_plan(plan, db).schema {
        Some(cols) => cols.iter().map(|c| c.dtype).collect(),
        None => vec![DataType::Int; plan_width(plan)],
    }
}

impl<'a> Binder<'a> {
    fn db(&self) -> &Arc<TaurusDb> {
        self.session.db()
    }

    fn bind_select(&mut self, s: &SelectStmt) -> Result<(Plan, Vec<String>)> {
        self.depth += 1;
        if self.depth > MAX_SUBQUERY_DEPTH {
            self.depth -= 1;
            return Err(parse_err(stmt_pos(s), "subqueries nested too deeply"));
        }
        let r = self.bind_select_inner(s);
        self.depth -= 1;
        r
    }

    // -- analysis -----------------------------------------------------------

    fn bind_select_inner(&mut self, s: &SelectStmt) -> Result<(Plan, Vec<String>)> {
        if s.from.is_empty() {
            return Err(parse_err(stmt_pos(s), "a FROM clause is required"));
        }
        if s.from.len() > 1 {
            return Err(parse_err(
                tableref_pos(&s.from[1]),
                "comma-separated FROM is not supported; use explicit JOIN ... ON",
            ));
        }

        let mut cx = FromCx {
            atoms: Vec::new(),
            derived_plans: Vec::new(),
            scan_preds: Vec::new(),
            atom_filters: Vec::new(),
        };
        let fnode = self.analyze_from(&s.from[0], &mut cx, false)?;

        // WHERE: route each conjunct to a scan predicate, a residual
        // filter, or a Semi/Anti subquery join.
        let mut residual_where: Vec<&SqlExpr> = Vec::new();
        let mut sub_joins: Vec<SubJoin<'_>> = Vec::new();
        for conj in conjuncts(s.where_.as_ref()) {
            match &conj.kind {
                ExprKind::Exists { select, negated } => {
                    sub_joins.push(self.analyze_exists(conj.pos, select, *negated, &mut cx)?);
                }
                ExprKind::InSelect {
                    expr,
                    select,
                    negated,
                } => {
                    let (qual, name) = match &expr.kind {
                        ExprKind::Column { qualifier, name } => (qualifier.as_ref(), name),
                        _ => {
                            return Err(parse_err(
                                expr.pos,
                                "the left side of IN (SELECT ...) must be a column",
                            ))
                        }
                    };
                    let hit = resolve_col(&cx.atoms, 0, cx.atoms.len(), qual, name)?;
                    *cx.atoms[hit.0].usage.entry(hit.1).or_insert(0) += 1;
                    sub_joins.push(SubJoin::InSelect {
                        pos: conj.pos,
                        negated: *negated,
                        left: hit,
                        select,
                    });
                }
                _ => {
                    let mut set = BTreeSet::new();
                    self.walk_refs(conj, &mut cx, 0, usize::MAX, false, &mut set)?;
                    match (set.len(), set.iter().next()) {
                        (1, Some(&i)) if !cx.atoms[i].right_of_left => match cx.atoms[i].kind {
                            AtomKind::Base { .. } => cx.scan_preds[i].push(conj),
                            AtomKind::Derived { .. } => cx.atom_filters[i].push(conj),
                        },
                        _ => residual_where.push(conj),
                    }
                }
            }
        }

        // SELECT list: aliases, usage.
        let mut aliases: Vec<(String, usize)> = Vec::new();
        for (i, item) in s.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard(_) => {
                    for a in cx.atoms.iter_mut() {
                        for c in 0..a.width() {
                            *a.usage.entry(c).or_insert(0) += 1;
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    if let Some(al) = alias {
                        aliases.push((al.name.clone(), i));
                    }
                    let mut set = BTreeSet::new();
                    self.walk_refs(expr, &mut cx, 0, usize::MAX, true, &mut set)?;
                }
            }
        }

        // GROUP BY: a bare name that is not a column but matches a SELECT
        // alias means that item's expression.
        let mut group_eff: Vec<&SqlExpr> = Vec::new();
        for g in &s.group_by {
            let eff = self.effective_expr(g, s, &aliases, &cx)?;
            if contains_agg(eff) {
                return Err(parse_err(g.pos, "aggregates are not allowed in GROUP BY"));
            }
            let mut set = BTreeSet::new();
            self.walk_refs(eff, &mut cx, 0, usize::MAX, false, &mut set)?;
            group_eff.push(eff);
        }

        if let Some(h) = &s.having {
            let mut set = BTreeSet::new();
            self.walk_refs(h, &mut cx, 0, usize::MAX, true, &mut set)?;
        }

        // ORDER BY: an alias reference needs no usage of its own.
        for (oe, _) in &s.order_by {
            if self.alias_ref(oe, &aliases).is_some() {
                continue;
            }
            let mut set = BTreeSet::new();
            self.walk_refs(oe, &mut cx, 0, usize::MAX, true, &mut set)?;
        }

        // -- lowering -------------------------------------------------------

        let FromCx {
            atoms,
            mut derived_plans,
            scan_preds,
            atom_filters,
        } = cx;

        let (mut plan, layout) = self.lower_from(
            &fnode,
            &atoms,
            &mut derived_plans,
            &scan_preds,
            &atom_filters,
        )?;

        if !residual_where.is_empty() {
            let fr = Frame::Layout {
                atoms: &atoms,
                layout: &layout,
            };
            let lowered = residual_where
                .iter()
                .map(|e| self.lower_expr(e, &fr))
                .collect::<Result<Vec<_>>>()?;
            plan = merge_residual(plan, lowered);
        }

        for sj in &sub_joins {
            plan = self.lower_sub_join(plan, sj, &atoms, &layout)?;
        }

        self.lower_output(plan, s, &atoms, &layout, &aliases, &group_eff)
    }

    /// Resolve a GROUP BY/HAVING-style expression through SELECT aliases:
    /// a bare, unqualified name that is no atom's column but matches
    /// exactly one alias stands for that item's expression.
    fn effective_expr<'s>(
        &self,
        e: &'s SqlExpr,
        s: &'s SelectStmt,
        aliases: &[(String, usize)],
        cx: &FromCx<'s>,
    ) -> Result<&'s SqlExpr> {
        let name = match &e.kind {
            ExprKind::Column {
                qualifier: None,
                name,
            } => name,
            _ => return Ok(e),
        };
        let in_atoms = cx
            .atoms
            .iter()
            .any(|a| !matches!(a.find_col(&name.name), ColHit::None));
        if in_atoms {
            return Ok(e);
        }
        let mut hits = aliases.iter().filter(|(n, _)| *n == name.name);
        match (hits.next(), hits.next()) {
            (Some(&(_, i)), None) => match &s.items[i] {
                SelectItem::Expr { expr, .. } => Ok(expr),
                SelectItem::Wildcard(_) => Ok(e),
            },
            (Some(_), Some(_)) => Err(parse_err(
                name.pos,
                format!("ambiguous alias `{}`", name.name),
            )),
            (None, _) => Ok(e), // let the usage walk report "unknown column"
        }
    }

    fn alias_ref(&self, e: &SqlExpr, aliases: &[(String, usize)]) -> Option<usize> {
        if let ExprKind::Column {
            qualifier: None,
            name,
        } = &e.kind
        {
            let mut hits = aliases.iter().filter(|(n, _)| *n == name.name);
            if let (Some(&(_, i)), None) = (hits.next(), hits.next()) {
                return Some(i);
            }
        }
        None
    }

    /// Record column usage for every reference in `e`, collecting the set
    /// of atoms touched. Rejects misplaced subqueries/aggregates.
    fn walk_refs(
        &mut self,
        e: &SqlExpr,
        cx: &mut FromCx<'_>,
        lo: usize,
        hi: usize,
        allow_agg: bool,
        set: &mut BTreeSet<usize>,
    ) -> Result<()> {
        let hi = hi.min(cx.atoms.len());
        match &e.kind {
            ExprKind::Column { qualifier, name } => {
                let (a, c) = resolve_col(&cx.atoms, lo, hi, qualifier.as_ref(), name)?;
                *cx.atoms[a].usage.entry(c).or_insert(0) += 1;
                set.insert(a);
                Ok(())
            }
            ExprKind::Lit(_) => Ok(()),
            ExprKind::Cmp(_, a, b) | ExprKind::And(a, b) | ExprKind::Or(a, b) => {
                self.walk_refs(a, cx, lo, hi, allow_agg, set)?;
                self.walk_refs(b, cx, lo, hi, allow_agg, set)
            }
            ExprKind::Arith(_, a, b) => {
                self.walk_refs(a, cx, lo, hi, allow_agg, set)?;
                self.walk_refs(b, cx, lo, hi, allow_agg, set)
            }
            ExprKind::Not(a) | ExprKind::Neg(a) | ExprKind::ExtractYear(a) => {
                self.walk_refs(a, cx, lo, hi, allow_agg, set)
            }
            ExprKind::Like { expr, .. }
            | ExprKind::IsNull { expr, .. }
            | ExprKind::Substr { expr, .. } => self.walk_refs(expr, cx, lo, hi, allow_agg, set),
            ExprKind::InList { expr, list, .. } => {
                self.walk_refs(expr, cx, lo, hi, allow_agg, set)?;
                for v in list {
                    self.walk_refs(v, cx, lo, hi, allow_agg, set)?;
                }
                Ok(())
            }
            ExprKind::Between { expr, lo: l, hi: h } => {
                self.walk_refs(expr, cx, lo, hi, allow_agg, set)?;
                self.walk_refs(l, cx, lo, hi, allow_agg, set)?;
                self.walk_refs(h, cx, lo, hi, allow_agg, set)
            }
            ExprKind::Case { branches, else_ } => {
                for (c, v) in branches {
                    self.walk_refs(c, cx, lo, hi, allow_agg, set)?;
                    self.walk_refs(v, cx, lo, hi, allow_agg, set)?;
                }
                self.walk_refs(else_, cx, lo, hi, allow_agg, set)
            }
            ExprKind::Agg { arg, .. } => {
                if !allow_agg {
                    return Err(parse_err(
                        e.pos,
                        "aggregates are not allowed in this clause",
                    ));
                }
                match arg {
                    // Aggregate inputs are plain expressions again.
                    Some(a) => self.walk_refs(a, cx, lo, hi, false, set),
                    None => Ok(()),
                }
            }
            ExprKind::Scalar(_) => Ok(()), // bound (and executed) at lowering
            ExprKind::Exists { .. } | ExprKind::InSelect { .. } => Err(parse_err(
                e.pos,
                "subqueries are only supported as top-level WHERE conjuncts",
            )),
        }
    }

    // -- FROM analysis ------------------------------------------------------

    fn analyze_from<'s>(
        &mut self,
        t: &'s TableRef,
        cx: &mut FromCx<'s>,
        right_of_left: bool,
    ) -> Result<FromNode<'s>> {
        match t {
            TableRef::Table {
                name,
                alias,
                force_index,
            } => {
                let table = self
                    .db()
                    .table(&name.name)
                    .map_err(|_| parse_err(name.pos, format!("unknown table `{}`", name.name)))?;
                let alias_s = alias.as_ref().unwrap_or(name).name.clone();
                let i = cx.push_atom(Atom {
                    alias: alias_s,
                    pos: name.pos,
                    kind: AtomKind::Base {
                        table,
                        force: force_index.clone(),
                    },
                    usage: BTreeMap::new(),
                    right_of_left,
                })?;
                Ok(FromNode::Atom(i))
            }
            TableRef::Derived { select, alias } => {
                let (plan, names) = self.bind_select(select)?;
                let width = plan_width(&plan);
                let dtypes = plan_dtypes(&plan, self.db());
                let i = cx.push_atom(Atom {
                    alias: alias.name.clone(),
                    pos: alias.pos,
                    kind: AtomKind::Derived {
                        names,
                        dtypes,
                        width,
                    },
                    usage: BTreeMap::new(),
                    right_of_left,
                })?;
                cx.derived_plans[i] = Some(plan);
                Ok(FromNode::Atom(i))
            }
            TableRef::Join {
                left,
                kind,
                right,
                on,
            } => {
                let l0 = cx.atoms.len();
                let lnode = self.analyze_from(left, cx, right_of_left)?;
                let l1 = cx.atoms.len();
                let join = match kind {
                    JoinKind::Inner => JoinType::Inner,
                    JoinKind::Left => JoinType::LeftOuter,
                };
                let right_rol = right_of_left || *kind == JoinKind::Left;
                // FORCE INDEX on a plain right-side table requests a
                // lookup join through that index.
                if let TableRef::Table {
                    force_index: Some(fi),
                    ..
                } = &**right
                {
                    let fi = fi.clone();
                    let rnode = self.analyze_from(right, cx, right_rol)?;
                    let ai = match rnode {
                        FromNode::Atom(i) => i,
                        _ => unreachable!("table ref lowers to an atom"),
                    };
                    let (index, key, residual) =
                        self.analyze_lookup_on(on, cx, l0, l1, ai, &fi, join)?;
                    Ok(FromNode::Lookup {
                        left: Box::new(lnode),
                        atom: ai,
                        index,
                        join,
                        key,
                        residual,
                    })
                } else {
                    let rnode = self.analyze_from(right, cx, right_rol)?;
                    let r1 = cx.atoms.len();
                    let (keys, residual) = self.analyze_hash_on(on, cx, l0, l1, r1, join)?;
                    Ok(FromNode::Hash {
                        left: Box::new(lnode),
                        right: Box::new(rnode),
                        join,
                        keys,
                        residual,
                    })
                }
            }
        }
    }

    /// Is `e` a plain column resolving inside `[lo, hi)`? No usage is
    /// recorded here; classification decides that.
    fn plain_col(
        &self,
        e: &SqlExpr,
        atoms: &[Atom],
        lo: usize,
        hi: usize,
    ) -> Option<(usize, usize)> {
        if let ExprKind::Column { qualifier, name } = &e.kind {
            return resolve_col(atoms, lo, hi, qualifier.as_ref(), name).ok();
        }
        None
    }

    #[allow(clippy::type_complexity)]
    fn analyze_hash_on<'s>(
        &mut self,
        on: &'s SqlExpr,
        cx: &mut FromCx<'s>,
        l0: usize,
        l1: usize,
        r1: usize,
        join: JoinType,
    ) -> Result<(Vec<((usize, usize), (usize, usize))>, Vec<&'s SqlExpr>)> {
        let mut keys = Vec::new();
        let mut residual = Vec::new();
        let mut parts = Vec::new();
        flatten_and(on, &mut parts);
        for conj in parts {
            if let ExprKind::Cmp(CmpOp::Eq, a, b) = &conj.kind {
                let ra = self.plain_col(a, &cx.atoms, l0, r1);
                let rb = self.plain_col(b, &cx.atoms, l0, r1);
                if let (Some(ka), Some(kb)) = (ra, rb) {
                    let (lk, rk) = if ka.0 < l1 && kb.0 >= l1 {
                        (ka, kb)
                    } else if kb.0 < l1 && ka.0 >= l1 {
                        (kb, ka)
                    } else {
                        // Same-side equality: fall through to the general
                        // routing below.
                        self.route_on_conjunct(conj, cx, l0, l1, r1, join, &mut residual)?;
                        continue;
                    };
                    *cx.atoms[lk.0].usage.entry(lk.1).or_insert(0) += 1;
                    *cx.atoms[rk.0].usage.entry(rk.1).or_insert(0) += 1;
                    keys.push((lk, rk));
                    continue;
                }
            }
            self.route_on_conjunct(conj, cx, l0, l1, r1, join, &mut residual)?;
        }
        if keys.is_empty() {
            return Err(parse_err(
                on.pos,
                "JOIN ... ON needs at least one equality between the two sides",
            ));
        }
        Ok((keys, residual))
    }

    /// Route a non-equi ON conjunct: single-side conjuncts push to the
    /// scan (ON semantics allow that even under LEFT JOIN for the right
    /// side); anything else is residual, which only inner joins support.
    #[allow(clippy::too_many_arguments)]
    fn route_on_conjunct<'s>(
        &mut self,
        conj: &'s SqlExpr,
        cx: &mut FromCx<'s>,
        l0: usize,
        l1: usize,
        r1: usize,
        join: JoinType,
        residual: &mut Vec<&'s SqlExpr>,
    ) -> Result<()> {
        let mut set = BTreeSet::new();
        self.walk_refs(conj, cx, l0, r1, false, &mut set)?;
        let all_right = set.iter().all(|&i| i >= l1);
        let all_left = set.iter().all(|&i| i < l1);
        if set.len() == 1 && (all_right || (all_left && join == JoinType::Inner)) {
            let i = *set.iter().next().expect("nonempty");
            match cx.atoms[i].kind {
                AtomKind::Base { .. } => cx.scan_preds[i].push(conj),
                AtomKind::Derived { .. } => cx.atom_filters[i].push(conj),
            }
            return Ok(());
        }
        if join != JoinType::Inner {
            return Err(parse_err(
                conj.pos,
                "this ON condition is not supported for LEFT JOIN",
            ));
        }
        residual.push(conj);
        Ok(())
    }

    /// Classify the ON clause of a lookup join: equalities covering the
    /// forced index's key prefix correlate the lookup; the rest stays as
    /// scan predicates (single-side) or the residual `on`.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn analyze_lookup_on<'s>(
        &mut self,
        on: &'s SqlExpr,
        cx: &mut FromCx<'s>,
        l0: usize,
        l1: usize,
        ai: usize,
        force: &Ident,
        join: JoinType,
    ) -> Result<(usize, Vec<(usize, usize)>, Vec<&'s SqlExpr>)> {
        let table = match &cx.atoms[ai].kind {
            AtomKind::Base { table, .. } => table.clone(),
            AtomKind::Derived { .. } => unreachable!("lookup inner is a base table"),
        };
        let index = resolve_index(&table, force)?;
        let key_cols = table.index(index).tree.def.key_cols.clone();

        let mut parts = Vec::new();
        flatten_and(on, &mut parts);

        // Pass 1: equality candidates (inner col → first outer ref).
        let mut cand: BTreeMap<usize, (usize, (usize, usize))> = BTreeMap::new();
        for (ci, conj) in parts.iter().enumerate() {
            if let ExprKind::Cmp(CmpOp::Eq, a, b) = &conj.kind {
                let ra = self.plain_col(a, &cx.atoms, l0, ai + 1);
                let rb = self.plain_col(b, &cx.atoms, l0, ai + 1);
                if let (Some(ka), Some(kb)) = (ra, rb) {
                    let (inner, outer) = if ka.0 == ai && kb.0 < l1 {
                        (ka.1, kb)
                    } else if kb.0 == ai && ka.0 < l1 {
                        (kb.1, ka)
                    } else {
                        continue;
                    };
                    cand.entry(inner).or_insert((ci, outer));
                }
            }
        }

        // Consume the key prefix.
        let mut key = Vec::new();
        let mut consumed = BTreeSet::new();
        for &kc in &key_cols {
            match cand.get(&kc) {
                Some(&(ci, outer)) => {
                    consumed.insert(ci);
                    key.push(outer);
                }
                None => break,
            }
        }
        if key.is_empty() {
            return Err(parse_err(
                force.pos,
                format!(
                    "FORCE INDEX (`{}`) needs a join equality on the index's leading key column",
                    force.name
                ),
            ));
        }
        for &(_, outer) in cand.values().filter(|(ci, _)| consumed.contains(ci)) {
            *cx.atoms[outer.0].usage.entry(outer.1).or_insert(0) += 1;
        }

        // Pass 2: everything not consumed, in written order.
        let mut residual = Vec::new();
        for (ci, conj) in parts.iter().enumerate() {
            if consumed.contains(&ci) {
                continue;
            }
            self.route_on_conjunct(conj, cx, l0, l1, ai + 1, join, &mut residual)?;
        }
        Ok((index, key, residual))
    }

    // -- EXISTS analysis ----------------------------------------------------

    fn analyze_exists<'s>(
        &mut self,
        pos: Pos,
        sub: &'s SelectStmt,
        negated: bool,
        cx: &mut FromCx<'s>,
    ) -> Result<SubJoin<'s>> {
        if sub.from.len() != 1 {
            return Err(parse_err(
                pos,
                "an EXISTS subquery must scan a single base table",
            ));
        }
        let (name, alias, force) = match &sub.from[0] {
            TableRef::Table {
                name,
                alias,
                force_index,
            } => (name, alias, force_index),
            _ => {
                return Err(parse_err(
                    pos,
                    "an EXISTS subquery must scan a single base table",
                ))
            }
        };
        if !sub.group_by.is_empty()
            || sub.having.is_some()
            || !sub.order_by.is_empty()
            || sub.limit.is_some()
        {
            return Err(parse_err(
                pos,
                "an EXISTS subquery cannot use GROUP BY, HAVING, ORDER BY, or LIMIT",
            ));
        }
        let table = self
            .db()
            .table(&name.name)
            .map_err(|_| parse_err(name.pos, format!("unknown table `{}`", name.name)))?;
        let inner_alias = alias.as_ref().unwrap_or(name).name.clone();

        let parts = conjuncts(sub.where_.as_ref());

        // Pass 1: correlation candidates inner-col → outer (atom, col).
        let mut cand: BTreeMap<usize, (usize, (usize, usize))> = BTreeMap::new();
        for (ci, conj) in parts.iter().enumerate() {
            if let ExprKind::Cmp(CmpOp::Eq, a, b) = &conj.kind {
                let sa = self.exists_side(a, &table.schema, &inner_alias, &cx.atoms)?;
                let sb = self.exists_side(b, &table.schema, &inner_alias, &cx.atoms)?;
                match (sa, sb) {
                    (Some(ExistsSide::Inner(ic)), Some(ExistsSide::Outer(oc)))
                    | (Some(ExistsSide::Outer(oc)), Some(ExistsSide::Inner(ic))) => {
                        cand.entry(ic).or_insert((ci, oc));
                    }
                    _ => {}
                }
            }
        }

        // Index: forced, or the one whose key prefix the correlations
        // cover best (ties to the lowest ordinal).
        let index = match force {
            Some(fi) => resolve_index(&table, fi)?,
            None => {
                let mut best = (0usize, 0usize);
                for i in 0..=table.secondaries.len() {
                    let kc = &table.index(i).tree.def.key_cols;
                    let cov = kc.iter().take_while(|c| cand.contains_key(c)).count();
                    if cov > best.1 {
                        best = (i, cov);
                    }
                }
                if best.1 == 0 {
                    return Err(parse_err(
                        pos,
                        "an EXISTS subquery needs an equality between an indexed inner column \
                         and the outer query",
                    ));
                }
                best.0
            }
        };

        let key_cols = table.index(index).tree.def.key_cols.clone();
        let mut key = Vec::new();
        let mut consumed = BTreeSet::new();
        for &kc in &key_cols {
            match cand.get(&kc) {
                Some(&(ci, outer)) => {
                    consumed.insert(ci);
                    key.push(outer);
                }
                None => break,
            }
        }
        if key.is_empty() {
            return Err(parse_err(
                pos,
                "an EXISTS subquery needs an equality between an indexed inner column and the \
                 outer query",
            ));
        }
        for &(_, outer) in cand.values().filter(|(ci, _)| consumed.contains(ci)) {
            *cx.atoms[outer.0].usage.entry(outer.1).or_insert(0) += 1;
        }

        // Pass 2: inner-only conjuncts → inner predicate; mixed → residual
        // (recording outer usage and the inner columns the residual needs).
        let mut inner_preds = Vec::new();
        let mut residual = Vec::new();
        let mut inner_cols = BTreeSet::new();
        for (ci, conj) in parts.iter().enumerate() {
            if consumed.contains(&ci) {
                continue;
            }
            let mut inner_here = BTreeSet::new();
            let mut outer_here = false;
            self.exists_refs(
                conj,
                &table.schema,
                &inner_alias,
                cx,
                &mut inner_here,
                &mut outer_here,
            )?;
            if outer_here {
                inner_cols.extend(inner_here.iter().copied());
                residual.push(*conj);
            } else {
                inner_preds.push(*conj);
            }
        }

        Ok(SubJoin::Exists {
            negated,
            table,
            index,
            key,
            inner_alias,
            inner_preds,
            residual,
            inner_out: inner_cols.into_iter().collect(),
        })
    }

    /// Which side of the EXISTS scope does a plain column land on?
    fn exists_side(
        &self,
        e: &SqlExpr,
        schema: &TableSchema,
        inner_alias: &str,
        atoms: &[Atom],
    ) -> Result<Option<ExistsSide>> {
        let (qualifier, name) = match &e.kind {
            ExprKind::Column { qualifier, name } => (qualifier.as_ref(), name),
            _ => return Ok(None),
        };
        match qualifier {
            Some(q) if q.name == inner_alias => {
                let c = schema.col_index(&name.name).map_err(|_| {
                    parse_err(
                        name.pos,
                        format!("unknown column `{}` in `{inner_alias}`", name.name),
                    )
                })?;
                Ok(Some(ExistsSide::Inner(c)))
            }
            Some(_) => Ok(resolve_col(atoms, 0, atoms.len(), qualifier, name)
                .ok()
                .map(ExistsSide::Outer)),
            None => {
                if let Ok(c) = schema.col_index(&name.name) {
                    return Ok(Some(ExistsSide::Inner(c)));
                }
                Ok(resolve_col(atoms, 0, atoms.len(), None, name)
                    .ok()
                    .map(ExistsSide::Outer))
            }
        }
    }

    /// Walk an EXISTS-scope conjunct: inner refs collect into
    /// `inner_here`, outer refs record usage and set `outer_here`.
    fn exists_refs(
        &mut self,
        e: &SqlExpr,
        schema: &TableSchema,
        inner_alias: &str,
        cx: &mut FromCx<'_>,
        inner_here: &mut BTreeSet<usize>,
        outer_here: &mut bool,
    ) -> Result<()> {
        match &e.kind {
            ExprKind::Column { .. } => {
                match self.exists_side(e, schema, inner_alias, &cx.atoms)? {
                    Some(ExistsSide::Inner(c)) => {
                        inner_here.insert(c);
                        Ok(())
                    }
                    Some(ExistsSide::Outer((a, c))) => {
                        *cx.atoms[a].usage.entry(c).or_insert(0) += 1;
                        *outer_here = true;
                        Ok(())
                    }
                    None => {
                        // Re-resolve for the error message.
                        if let ExprKind::Column { qualifier, name } = &e.kind {
                            resolve_col(&cx.atoms, 0, cx.atoms.len(), qualifier.as_ref(), name)?;
                        }
                        Ok(())
                    }
                }
            }
            ExprKind::Agg { .. }
            | ExprKind::Exists { .. }
            | ExprKind::InSelect { .. }
            | ExprKind::Scalar(_) => Err(parse_err(
                e.pos,
                "this expression is not supported inside an EXISTS subquery",
            )),
            ExprKind::Lit(_) => Ok(()),
            ExprKind::Cmp(_, a, b) | ExprKind::And(a, b) | ExprKind::Or(a, b) => {
                self.exists_refs(a, schema, inner_alias, cx, inner_here, outer_here)?;
                self.exists_refs(b, schema, inner_alias, cx, inner_here, outer_here)
            }
            ExprKind::Arith(_, a, b) => {
                self.exists_refs(a, schema, inner_alias, cx, inner_here, outer_here)?;
                self.exists_refs(b, schema, inner_alias, cx, inner_here, outer_here)
            }
            ExprKind::Not(a) | ExprKind::Neg(a) | ExprKind::ExtractYear(a) => {
                self.exists_refs(a, schema, inner_alias, cx, inner_here, outer_here)
            }
            ExprKind::Like { expr, .. }
            | ExprKind::IsNull { expr, .. }
            | ExprKind::Substr { expr, .. } => {
                self.exists_refs(expr, schema, inner_alias, cx, inner_here, outer_here)
            }
            ExprKind::InList { expr, list, .. } => {
                self.exists_refs(expr, schema, inner_alias, cx, inner_here, outer_here)?;
                for v in list {
                    self.exists_refs(v, schema, inner_alias, cx, inner_here, outer_here)?;
                }
                Ok(())
            }
            ExprKind::Between { expr, lo, hi } => {
                self.exists_refs(expr, schema, inner_alias, cx, inner_here, outer_here)?;
                self.exists_refs(lo, schema, inner_alias, cx, inner_here, outer_here)?;
                self.exists_refs(hi, schema, inner_alias, cx, inner_here, outer_here)
            }
            ExprKind::Case { branches, else_ } => {
                for (c, v) in branches {
                    self.exists_refs(c, schema, inner_alias, cx, inner_here, outer_here)?;
                    self.exists_refs(v, schema, inner_alias, cx, inner_here, outer_here)?;
                }
                self.exists_refs(else_, schema, inner_alias, cx, inner_here, outer_here)
            }
        }
    }
}

enum ExistsSide {
    Inner(usize),
    Outer((usize, usize)),
}

/// Resolve `FORCE INDEX (name)` / EXISTS index names: `primary` (any
/// case) means the primary index, otherwise the named index must exist.
fn resolve_index(table: &Table, ident: &Ident) -> Result<usize> {
    if ident.name == "primary" {
        return Ok(0);
    }
    table.find_index(&ident.name).ok_or_else(|| {
        parse_err(
            ident.pos,
            format!(
                "unknown index `{}` on table `{}`",
                ident.name, table.schema.name
            ),
        )
    })
}

/// Resolve a column reference over the atoms in `[lo, hi)`.
fn resolve_col(
    atoms: &[Atom],
    lo: usize,
    hi: usize,
    qualifier: Option<&Ident>,
    name: &Ident,
) -> Result<(usize, usize)> {
    let hi = hi.min(atoms.len());
    if let Some(q) = qualifier {
        let a = atoms[lo..hi]
            .iter()
            .position(|a| a.alias == q.name)
            .map(|i| i + lo)
            .ok_or_else(|| parse_err(q.pos, format!("unknown table or alias `{}`", q.name)))?;
        return match atoms[a].find_col(&name.name) {
            ColHit::One(c) => Ok((a, c)),
            ColHit::None => Err(parse_err(
                name.pos,
                format!("unknown column `{}` in `{}`", name.name, q.name),
            )),
            ColHit::Many => Err(parse_err(
                name.pos,
                format!("ambiguous column `{}` in `{}`", name.name, q.name),
            )),
        };
    }
    let mut found: Option<(usize, usize)> = None;
    for (i, a) in atoms[lo..hi].iter().enumerate() {
        match a.find_col(&name.name) {
            ColHit::None => {}
            ColHit::Many => {
                return Err(parse_err(
                    name.pos,
                    format!("ambiguous column `{}` in `{}`", name.name, a.alias),
                ))
            }
            ColHit::One(c) => {
                if let Some((prev, _)) = found {
                    return Err(parse_err(
                        name.pos,
                        format!(
                            "ambiguous column `{}` (in `{}` and `{}`)",
                            name.name, atoms[prev].alias, a.alias
                        ),
                    ));
                }
                found = Some((i + lo, c));
            }
        }
    }
    found.ok_or_else(|| parse_err(name.pos, format!("unknown column `{}`", name.name)))
}

/// An inner-join residual merges into a top-level lookup join's `on`;
/// anything else filters above the join.
fn merge_residual(mut plan: Plan, lowered: Vec<Expr>) -> Plan {
    if let Plan::LookupJoin(lj) = &mut plan {
        if lj.join == JoinType::Inner {
            let mut parts = Vec::new();
            if let Some(on) = lj.on.take() {
                parts.push(on);
            }
            parts.extend(lowered);
            lj.on = Some(Expr::and(parts));
            return plan;
        }
    }
    plan.filter(Expr::and(lowered))
}

// ---------------------------------------------------------------------------
// Lowering.

impl<'a> Binder<'a> {
    fn lower_from(
        &mut self,
        node: &FromNode<'_>,
        atoms: &[Atom],
        derived: &mut [Option<Plan>],
        scan_preds: &[Vec<&SqlExpr>],
        atom_filters: &[Vec<&SqlExpr>],
    ) -> Result<(Plan, Vec<(usize, usize)>)> {
        match node {
            FromNode::Atom(i) => {
                let a = &atoms[*i];
                match &a.kind {
                    AtomKind::Base { table, force } => {
                        if let Some(fi) = force {
                            return Err(parse_err(
                                fi.pos,
                                "FORCE INDEX is only supported on the right side of a JOIN",
                            ));
                        }
                        let output: Vec<usize> = if a.usage.is_empty() {
                            vec![0]
                        } else {
                            a.usage.keys().copied().collect()
                        };
                        let fr = Frame::Table { atoms, atom: *i };
                        let preds = scan_preds[*i]
                            .iter()
                            .map(|e| self.lower_expr(e, &fr))
                            .collect::<Result<Vec<_>>>()?;
                        let mut scan = ScanNode::new(&table.schema.name, output.clone());
                        if !preds.is_empty() {
                            scan = scan.with_predicate(preds);
                        }
                        let layout = output.into_iter().map(|c| (*i, c)).collect();
                        Ok((Plan::Scan(scan), layout))
                    }
                    AtomKind::Derived { width, .. } => {
                        let mut plan = derived[*i]
                            .take()
                            .expect("derived plan is lowered exactly once");
                        let layout: Vec<(usize, usize)> = (0..*width).map(|c| (*i, c)).collect();
                        if !atom_filters[*i].is_empty() {
                            let fr = Frame::Layout {
                                atoms,
                                layout: &layout,
                            };
                            let preds = atom_filters[*i]
                                .iter()
                                .map(|e| self.lower_expr(e, &fr))
                                .collect::<Result<Vec<_>>>()?;
                            plan = plan.filter(Expr::and(preds));
                        }
                        Ok((plan, layout))
                    }
                }
            }
            FromNode::Hash {
                left,
                right,
                join,
                keys,
                residual,
            } => {
                let (lp, ll) = self.lower_from(left, atoms, derived, scan_preds, atom_filters)?;
                let (rp, rl) = self.lower_from(right, atoms, derived, scan_preds, atom_filters)?;
                let left_keys = keys
                    .iter()
                    .map(|(lk, _)| pos_in(&ll, *lk))
                    .collect::<Result<Vec<_>>>()?;
                let right_keys = keys
                    .iter()
                    .map(|(_, rk)| pos_in(&rl, *rk))
                    .collect::<Result<Vec<_>>>()?;
                let mut layout = ll;
                layout.extend(rl);
                let mut plan = Plan::HashJoin(HashJoinNode {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    left_keys,
                    right_keys,
                    join: *join,
                });
                if !residual.is_empty() {
                    let fr = Frame::Layout {
                        atoms,
                        layout: &layout,
                    };
                    let preds = residual
                        .iter()
                        .map(|e| self.lower_expr(e, &fr))
                        .collect::<Result<Vec<_>>>()?;
                    plan = plan.filter(Expr::and(preds));
                }
                Ok((plan, layout))
            }
            FromNode::Lookup {
                left,
                atom,
                index,
                join,
                key,
                residual,
            } => {
                let (lp, ll) = self.lower_from(left, atoms, derived, scan_preds, atom_filters)?;
                let a = &atoms[*atom];
                let table = match &a.kind {
                    AtomKind::Base { table, .. } => table.clone(),
                    AtomKind::Derived { .. } => unreachable!("lookup inner is a base table"),
                };
                let outer_key_cols = key
                    .iter()
                    .map(|k| pos_in(&ll, *k))
                    .collect::<Result<Vec<_>>>()?;
                let inner_output: Vec<usize> = a.usage.keys().copied().collect();
                let fr = Frame::Table { atoms, atom: *atom };
                let inner_predicate = scan_preds[*atom]
                    .iter()
                    .map(|e| self.lower_expr(e, &fr))
                    .collect::<Result<Vec<_>>>()?;
                let mut layout = ll;
                layout.extend(inner_output.iter().map(|&c| (*atom, c)));
                let on = if residual.is_empty() {
                    None
                } else {
                    let fr = Frame::Layout {
                        atoms,
                        layout: &layout,
                    };
                    let preds = residual
                        .iter()
                        .map(|e| self.lower_expr(e, &fr))
                        .collect::<Result<Vec<_>>>()?;
                    Some(Expr::and(preds))
                };
                let plan = Plan::LookupJoin(LookupJoinNode {
                    outer: Box::new(lp),
                    table: table.schema.name.clone(),
                    index: *index,
                    outer_key_cols,
                    on,
                    inner_output,
                    join: *join,
                    inner_predicate,
                });
                Ok((plan, layout))
            }
        }
    }

    fn lower_sub_join(
        &mut self,
        plan: Plan,
        sj: &SubJoin<'_>,
        atoms: &[Atom],
        layout: &[(usize, usize)],
    ) -> Result<Plan> {
        match sj {
            SubJoin::Exists {
                negated,
                table,
                index,
                key,
                inner_alias,
                inner_preds,
                residual,
                inner_out,
            } => {
                let outer_key_cols = key
                    .iter()
                    .map(|k| pos_in(layout, *k))
                    .collect::<Result<Vec<_>>>()?;
                let tfr = Frame::ExistsTable {
                    schema: &table.schema,
                    alias: inner_alias,
                };
                let inner_predicate = inner_preds
                    .iter()
                    .map(|e| self.lower_expr(e, &tfr))
                    .collect::<Result<Vec<_>>>()?;
                let on = if residual.is_empty() {
                    None
                } else {
                    let cfr = Frame::ExistsCombined {
                        atoms,
                        layout,
                        schema: &table.schema,
                        alias: inner_alias,
                        inner_out,
                    };
                    let preds = residual
                        .iter()
                        .map(|e| self.lower_expr(e, &cfr))
                        .collect::<Result<Vec<_>>>()?;
                    Some(Expr::and(preds))
                };
                Ok(Plan::LookupJoin(LookupJoinNode {
                    outer: Box::new(plan),
                    table: table.schema.name.clone(),
                    index: *index,
                    outer_key_cols,
                    on,
                    inner_output: inner_out.clone(),
                    join: if *negated {
                        JoinType::Anti
                    } else {
                        JoinType::Semi
                    },
                    inner_predicate,
                }))
            }
            SubJoin::InSelect {
                pos,
                negated,
                left,
                select,
            } => {
                let (rplan, _) = self.bind_select(select)?;
                if plan_width(&rplan) != 1 {
                    return Err(parse_err(
                        *pos,
                        "an IN (SELECT ...) subquery must return exactly one column",
                    ));
                }
                // A trailing single-column projection folds into the join
                // key; the registry plans join against the pre-projection
                // input directly.
                let (rplan, rk) = match rplan {
                    Plan::Project(p) => {
                        if let [Expr::Col(k)] = p.exprs[..] {
                            (*p.input, k)
                        } else {
                            (Plan::Project(p), 0)
                        }
                    }
                    other => (other, 0),
                };
                let lfam = family(&atoms[left.0].col_dtype(left.1));
                let rdts = plan_dtypes(&rplan, self.db());
                if family(&rdts[rk]) != lfam {
                    return Err(parse_err(
                        *pos,
                        format!(
                            "type mismatch: cannot compare a {} column to a {} subquery",
                            family_name(lfam),
                            family_name(family(&rdts[rk]))
                        ),
                    ));
                }
                Ok(Plan::HashJoin(HashJoinNode {
                    left: Box::new(plan),
                    right: Box::new(rplan),
                    left_keys: vec![pos_in(layout, *left)?],
                    right_keys: vec![rk],
                    join: if *negated {
                        JoinType::Anti
                    } else {
                        JoinType::Semi
                    },
                }))
            }
        }
    }
}

fn pos_in(layout: &[(usize, usize)], key: (usize, usize)) -> Result<usize> {
    layout
        .iter()
        .position(|&k| k == key)
        .ok_or_else(|| Error::Internal("binder: referenced column missing from layout".into()))
}

// ---------------------------------------------------------------------------
// Scalar expression lowering.

impl<'a> Binder<'a> {
    fn resolve_in_frame(&self, fr: &Frame<'_>, e: &SqlExpr) -> Result<usize> {
        let (qualifier, name) = match &e.kind {
            ExprKind::Column { qualifier, name } => (qualifier.as_ref(), name),
            _ => unreachable!("resolve_in_frame on a column"),
        };
        match fr {
            Frame::Table { atoms, atom } => {
                let a = &atoms[*atom];
                if let Some(q) = qualifier {
                    if q.name != a.alias {
                        return Err(parse_err(
                            q.pos,
                            format!("unknown table or alias `{}`", q.name),
                        ));
                    }
                }
                match a.find_col(&name.name) {
                    ColHit::One(c) => Ok(c),
                    _ => Err(parse_err(
                        name.pos,
                        format!("unknown column `{}` in `{}`", name.name, a.alias),
                    )),
                }
            }
            Frame::ExistsTable { schema, alias } => {
                if let Some(q) = qualifier {
                    if q.name != *alias {
                        return Err(parse_err(
                            q.pos,
                            format!("unknown table or alias `{}`", q.name),
                        ));
                    }
                }
                schema.col_index(&name.name).map_err(|_| {
                    parse_err(
                        name.pos,
                        format!("unknown column `{}` in `{alias}`", name.name),
                    )
                })
            }
            Frame::Layout { atoms, layout } => {
                let key = resolve_col(atoms, 0, atoms.len(), qualifier, name)?;
                pos_in(layout, key)
            }
            Frame::ExistsCombined {
                atoms,
                layout,
                schema,
                alias,
                inner_out,
            } => {
                // Inner scope shadows the outer one, as in the analysis.
                let inner = match qualifier {
                    Some(q) if q.name == *alias => {
                        Some(schema.col_index(&name.name).map_err(|_| {
                            parse_err(
                                name.pos,
                                format!("unknown column `{}` in `{alias}`", name.name),
                            )
                        })?)
                    }
                    Some(_) => None,
                    None => schema.col_index(&name.name).ok(),
                };
                if let Some(c) = inner {
                    let i = inner_out.iter().position(|&x| x == c).ok_or_else(|| {
                        Error::Internal("binder: EXISTS residual column not collected".into())
                    })?;
                    return Ok(layout.len() + i);
                }
                let key = resolve_col(atoms, 0, atoms.len(), qualifier, name)?;
                pos_in(layout, key)
            }
        }
    }

    fn dtype_of(&self, e: &Expr, fr: &Frame<'_>) -> Option<DataType> {
        e.dtype(&fr.dtypes()).ok()
    }

    fn check_families(
        &self,
        what: &str,
        a: &Expr,
        b: &Expr,
        fr: &Frame<'_>,
        pos: Pos,
    ) -> Result<()> {
        if let (Some(da), Some(db)) = (self.dtype_of(a, fr), self.dtype_of(b, fr)) {
            if family(&da) != family(&db) {
                return Err(parse_err(
                    pos,
                    format!(
                        "type mismatch: cannot {what} a {} expression and a {} expression",
                        family_name(family(&da)),
                        family_name(family(&db))
                    ),
                ));
            }
        }
        Ok(())
    }

    fn lower_expr(&mut self, e: &SqlExpr, fr: &Frame<'_>) -> Result<Expr> {
        match &e.kind {
            ExprKind::Column { .. } => Ok(Expr::Col(self.resolve_in_frame(fr, e)?)),
            ExprKind::Lit(v) => Ok(Expr::Lit(v.clone())),
            ExprKind::Cmp(op, a, b) => {
                let la = self.lower_expr(a, fr)?;
                let lb = self.lower_expr(b, fr)?;
                self.check_families("compare", &la, &lb, fr, e.pos)?;
                Ok(Expr::Cmp(*op, Box::new(la), Box::new(lb)))
            }
            ExprKind::And(_, _) => {
                let mut parts = Vec::new();
                flatten_and(e, &mut parts);
                Ok(Expr::and(
                    parts
                        .iter()
                        .map(|p| self.lower_expr(p, fr))
                        .collect::<Result<Vec<_>>>()?,
                ))
            }
            ExprKind::Or(_, _) => {
                let mut parts = Vec::new();
                flatten_or(e, &mut parts);
                Ok(Expr::or(
                    parts
                        .iter()
                        .map(|p| self.lower_expr(p, fr))
                        .collect::<Result<Vec<_>>>()?,
                ))
            }
            ExprKind::Not(a) => Ok(Expr::not(self.lower_expr(a, fr)?)),
            ExprKind::Arith(op, a, b) => {
                let la = self.lower_expr(a, fr)?;
                let lb = self.lower_expr(b, fr)?;
                for side in [&la, &lb] {
                    if let Some(dt) = self.dtype_of(side, fr) {
                        if family(&dt) != Family::Num {
                            return Err(parse_err(
                                e.pos,
                                format!(
                                    "type mismatch: arithmetic needs numeric operands, got a {} \
                                     expression",
                                    family_name(family(&dt))
                                ),
                            ));
                        }
                    }
                }
                Ok(Expr::Arith(*op, Box::new(la), Box::new(lb)))
            }
            ExprKind::Neg(a) => Ok(Expr::Neg(Box::new(self.lower_expr(a, fr)?))),
            ExprKind::Like {
                expr,
                pattern,
                negated,
            } => {
                let le = self.lower_expr(expr, fr)?;
                if let Some(dt) = self.dtype_of(&le, fr) {
                    if family(&dt) != Family::Str {
                        return Err(parse_err(
                            e.pos,
                            "type mismatch: LIKE needs a string expression",
                        ));
                    }
                }
                Ok(Expr::Like {
                    expr: Box::new(le),
                    pattern: pattern.clone(),
                    negated: *negated,
                })
            }
            ExprKind::InList {
                expr,
                list,
                negated,
            } => {
                let le = self.lower_expr(expr, fr)?;
                let efam = self.dtype_of(&le, fr).map(|d| family(&d));
                let mut vals = Vec::with_capacity(list.len());
                for item in list {
                    let v = match self.lower_expr(item, fr)? {
                        Expr::Lit(v) => v,
                        _ => return Err(parse_err(item.pos, "IN list elements must be literals")),
                    };
                    if let (Some(ef), Some(vf)) = (efam, value_family(&v)) {
                        if ef != vf {
                            return Err(parse_err(
                                item.pos,
                                format!(
                                    "type mismatch: cannot compare a {} expression to a {} \
                                     literal",
                                    family_name(ef),
                                    family_name(vf)
                                ),
                            ));
                        }
                    }
                    vals.push(v);
                }
                Ok(Expr::InList {
                    expr: Box::new(le),
                    list: vals,
                    negated: *negated,
                })
            }
            ExprKind::Between { expr, lo, hi } => {
                let le = self.lower_expr(expr, fr)?;
                let ll = self.lower_expr(lo, fr)?;
                let lh = self.lower_expr(hi, fr)?;
                self.check_families("compare", &le, &ll, fr, e.pos)?;
                self.check_families("compare", &le, &lh, fr, e.pos)?;
                Ok(Expr::Between {
                    expr: Box::new(le),
                    lo: Box::new(ll),
                    hi: Box::new(lh),
                })
            }
            ExprKind::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.lower_expr(expr, fr)?),
                negated: *negated,
            }),
            ExprKind::Case { branches, else_ } => {
                let bs = branches
                    .iter()
                    .map(|(c, v)| Ok((self.lower_expr(c, fr)?, self.lower_expr(v, fr)?)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Expr::Case {
                    branches: bs,
                    else_: Box::new(self.lower_expr(else_, fr)?),
                })
            }
            ExprKind::ExtractYear(a) => {
                let la = self.lower_expr(a, fr)?;
                if let Some(dt) = self.dtype_of(&la, fr) {
                    if family(&dt) != Family::Date {
                        return Err(parse_err(
                            e.pos,
                            "type mismatch: EXTRACT(YEAR FROM ...) needs a date expression",
                        ));
                    }
                }
                Ok(Expr::ExtractYear(Box::new(la)))
            }
            ExprKind::Substr { expr, from, len } => {
                if *from == 0 {
                    return Err(parse_err(e.pos, "SUBSTRING positions are 1-based"));
                }
                let le = self.lower_expr(expr, fr)?;
                if let Some(dt) = self.dtype_of(&le, fr) {
                    if family(&dt) != Family::Str {
                        return Err(parse_err(
                            e.pos,
                            "type mismatch: SUBSTRING needs a string expression",
                        ));
                    }
                }
                Ok(Expr::Substr {
                    expr: Box::new(le),
                    from: *from as usize,
                    len: *len as usize,
                })
            }
            ExprKind::Scalar(sel) => Ok(Expr::Lit(self.eval_scalar(sel, e.pos)?)),
            ExprKind::Agg { .. } => Err(parse_err(
                e.pos,
                "aggregates are not allowed in this clause",
            )),
            ExprKind::Exists { .. } | ExprKind::InSelect { .. } => Err(parse_err(
                e.pos,
                "subqueries are only supported as top-level WHERE conjuncts",
            )),
        }
    }

    /// Bind and execute an uncorrelated scalar subquery at bind time,
    /// baking its single value into the plan as a literal.
    fn eval_scalar(&mut self, sel: &SelectStmt, pos: Pos) -> Result<Value> {
        let (mut plan, _) = self.bind_select(sel)?;
        if plan_width(&plan) != 1 {
            return Err(parse_err(
                pos,
                "a scalar subquery must return exactly one column",
            ));
        }
        if self.session.ndp() {
            ndp_post_process(&mut plan, self.db())?;
        }
        let rows = self.session.execute_plan(&plan)?;
        if rows.len() != 1 {
            return Err(parse_err(
                pos,
                format!("a scalar subquery must return one row, got {}", rows.len()),
            ));
        }
        Ok(rows[0][0].clone())
    }
}

// ---------------------------------------------------------------------------
// Output: aggregation, SELECT projection, ORDER BY, LIMIT.

/// Collected aggregate calls for one SELECT.
struct AggSet {
    items: Vec<AggItem>,
    /// `COUNT(DISTINCT e)` argument, if present (sole aggregate).
    distinct: Option<Expr>,
}

impl AggSet {
    fn push(&mut self, item: AggItem) {
        if !self
            .items
            .iter()
            .any(|a| a.func == item.func && a.input == item.input)
        {
            self.items.push(item);
        }
    }
}

fn mk_agg_item(func: AggName, input: Option<Expr>) -> AggItem {
    let f = match (func, &input) {
        (AggName::Count, None) => AggFuncEx::CountStar,
        (AggName::Count, Some(_)) => AggFuncEx::Count,
        (AggName::Sum, _) => AggFuncEx::Sum,
        (AggName::Min, _) => AggFuncEx::Min,
        (AggName::Max, _) => AggFuncEx::Max,
        (AggName::Avg, _) => AggFuncEx::Avg,
    };
    AggItem { func: f, input }
}

impl<'a> Binder<'a> {
    /// Collect every aggregate call in `e` into `set` (inputs lowered
    /// over the pre-aggregation layout).
    fn collect_aggs(&mut self, e: &SqlExpr, fr: &Frame<'_>, set: &mut AggSet) -> Result<()> {
        if let ExprKind::Agg {
            func,
            distinct,
            arg,
        } = &e.kind
        {
            let input = match arg {
                Some(a) => Some(self.lower_expr(a, fr)?),
                None => None,
            };
            if *distinct {
                if *func != AggName::Count {
                    return Err(parse_err(e.pos, "DISTINCT is only supported with COUNT"));
                }
                let arg = input
                    .ok_or_else(|| parse_err(e.pos, "COUNT(DISTINCT ...) needs an argument"))?;
                match &set.distinct {
                    None => set.distinct = Some(arg),
                    Some(prev) if *prev == arg => {}
                    Some(_) => {
                        return Err(parse_err(
                            e.pos,
                            "only one COUNT(DISTINCT ...) aggregate is supported",
                        ))
                    }
                }
            } else {
                set.push(mk_agg_item(*func, input));
            }
            return Ok(());
        }
        match &e.kind {
            ExprKind::Column { .. } | ExprKind::Lit(_) | ExprKind::Scalar(_) => Ok(()),
            ExprKind::Cmp(_, a, b) | ExprKind::And(a, b) | ExprKind::Or(a, b) => {
                self.collect_aggs(a, fr, set)?;
                self.collect_aggs(b, fr, set)
            }
            ExprKind::Arith(_, a, b) => {
                self.collect_aggs(a, fr, set)?;
                self.collect_aggs(b, fr, set)
            }
            ExprKind::Not(a) | ExprKind::Neg(a) | ExprKind::ExtractYear(a) => {
                self.collect_aggs(a, fr, set)
            }
            ExprKind::Like { expr, .. }
            | ExprKind::IsNull { expr, .. }
            | ExprKind::Substr { expr, .. } => self.collect_aggs(expr, fr, set),
            ExprKind::InList { expr, .. } => self.collect_aggs(expr, fr, set),
            ExprKind::Between { expr, lo, hi } => {
                self.collect_aggs(expr, fr, set)?;
                self.collect_aggs(lo, fr, set)?;
                self.collect_aggs(hi, fr, set)
            }
            ExprKind::Case { branches, else_ } => {
                for (c, v) in branches {
                    self.collect_aggs(c, fr, set)?;
                    self.collect_aggs(v, fr, set)?;
                }
                self.collect_aggs(else_, fr, set)
            }
            ExprKind::Agg { .. } => unreachable!("handled above"),
            ExprKind::Exists { .. } | ExprKind::InSelect { .. } => Err(parse_err(
                e.pos,
                "subqueries are only supported as top-level WHERE conjuncts",
            )),
        }
    }

    /// Lower an expression in aggregation context: aggregate calls and
    /// whole group expressions become positions into `groups ++ aggs`;
    /// an ungrouped bare column is the classic aggregate-misuse error.
    fn lower_agg_expr(
        &mut self,
        e: &SqlExpr,
        fr: &Frame<'_>,
        groups: &[Expr],
        set: &AggSet,
    ) -> Result<Expr> {
        if let ExprKind::Agg {
            func,
            distinct,
            arg,
        } = &e.kind
        {
            let input = match arg {
                Some(a) => Some(self.lower_expr(a, fr)?),
                None => None,
            };
            if *distinct {
                return Ok(Expr::Col(groups.len()));
            }
            let item = mk_agg_item(*func, input);
            let i = set
                .items
                .iter()
                .position(|a| a.func == item.func && a.input == item.input)
                .ok_or_else(|| Error::Internal("binder: aggregate not collected".into()))?;
            return Ok(Expr::Col(groups.len() + i));
        }
        if !contains_agg(e) {
            let low = self.lower_expr(e, fr)?;
            if let Some(gi) = groups.iter().position(|g| *g == low) {
                return Ok(Expr::Col(gi));
            }
            if let Expr::Lit(_) = low {
                return Ok(low);
            }
            if let ExprKind::Column { name, .. } = &e.kind {
                return Err(parse_err(
                    name.pos,
                    format!(
                        "column `{}` must appear in the GROUP BY clause or be used in an \
                         aggregate",
                        name.name
                    ),
                ));
            }
            // A compound expression over grouped columns: rebuild from its
            // pieces so each leaf resolves through the group list.
        }
        match &e.kind {
            ExprKind::Cmp(op, a, b) => Ok(Expr::Cmp(
                *op,
                Box::new(self.lower_agg_expr(a, fr, groups, set)?),
                Box::new(self.lower_agg_expr(b, fr, groups, set)?),
            )),
            ExprKind::And(_, _) => {
                let mut parts = Vec::new();
                flatten_and(e, &mut parts);
                Ok(Expr::and(
                    parts
                        .iter()
                        .map(|p| self.lower_agg_expr(p, fr, groups, set))
                        .collect::<Result<Vec<_>>>()?,
                ))
            }
            ExprKind::Or(_, _) => {
                let mut parts = Vec::new();
                flatten_or(e, &mut parts);
                Ok(Expr::or(
                    parts
                        .iter()
                        .map(|p| self.lower_agg_expr(p, fr, groups, set))
                        .collect::<Result<Vec<_>>>()?,
                ))
            }
            ExprKind::Not(a) => Ok(Expr::not(self.lower_agg_expr(a, fr, groups, set)?)),
            ExprKind::Arith(op, a, b) => Ok(Expr::Arith(
                *op,
                Box::new(self.lower_agg_expr(a, fr, groups, set)?),
                Box::new(self.lower_agg_expr(b, fr, groups, set)?),
            )),
            ExprKind::Neg(a) => Ok(Expr::Neg(Box::new(
                self.lower_agg_expr(a, fr, groups, set)?,
            ))),
            ExprKind::Case { branches, else_ } => {
                let bs = branches
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            self.lower_agg_expr(c, fr, groups, set)?,
                            self.lower_agg_expr(v, fr, groups, set)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Expr::Case {
                    branches: bs,
                    else_: Box::new(self.lower_agg_expr(else_, fr, groups, set)?),
                })
            }
            _ => Err(parse_err(
                e.pos,
                "this expression must appear in the GROUP BY clause or be used in an aggregate",
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_output(
        &mut self,
        mut plan: Plan,
        s: &SelectStmt,
        atoms: &[Atom],
        layout: &[(usize, usize)],
        aliases: &[(String, usize)],
        group_eff: &[&SqlExpr],
    ) -> Result<(Plan, Vec<String>)> {
        let fr = Frame::Layout { atoms, layout };
        let items_agg = s.items.iter().any(|it| match it {
            SelectItem::Wildcard(_) => false,
            SelectItem::Expr { expr, .. } => contains_agg(expr),
        });
        let having_agg = s.having.as_ref().is_some_and(contains_agg);
        let order_agg = s.order_by.iter().any(|(e, _)| contains_agg(e));
        let agg_mode = !s.group_by.is_empty() || items_agg || having_agg || order_agg;
        if s.having.is_some() && !agg_mode {
            return Err(parse_err(
                stmt_pos(s),
                "HAVING requires GROUP BY or aggregates",
            ));
        }

        let mut exprs: Vec<Expr> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let width;
        let mut agg_cx: Option<(Vec<Expr>, AggSet)> = None;

        if agg_mode {
            let groups = group_eff
                .iter()
                .map(|g| self.lower_expr(g, &fr))
                .collect::<Result<Vec<_>>>()?;

            let mut set = AggSet {
                items: Vec::new(),
                distinct: None,
            };
            for item in &s.items {
                match item {
                    SelectItem::Wildcard(p) => {
                        return Err(parse_err(
                            *p,
                            "SELECT * cannot be combined with aggregation",
                        ))
                    }
                    SelectItem::Expr { expr, .. } => self.collect_aggs(expr, &fr, &mut set)?,
                }
            }
            if let Some(h) = &s.having {
                self.collect_aggs(h, &fr, &mut set)?;
            }
            for (oe, _) in &s.order_by {
                if self.alias_ref(oe, aliases).is_none() {
                    self.collect_aggs(oe, &fr, &mut set)?;
                }
            }
            if set.distinct.is_some() && !set.items.is_empty() {
                return Err(parse_err(
                    stmt_pos(s),
                    "COUNT(DISTINCT ...) cannot be mixed with other aggregates",
                ));
            }

            if let Some(darg) = &set.distinct {
                // Two-level plan: dedup on groups ++ arg, then count per
                // group.
                let mut dedup = groups.clone();
                dedup.push(darg.clone());
                plan = Plan::HashAgg(HashAggNode {
                    input: Box::new(plan),
                    group: dedup,
                    aggs: Vec::new(),
                });
                plan = Plan::HashAgg(HashAggNode {
                    input: Box::new(plan),
                    group: (0..groups.len()).map(Expr::Col).collect(),
                    aggs: vec![AggItem {
                        func: AggFuncEx::CountStar,
                        input: None,
                    }],
                });
                width = groups.len() + 1;
            } else {
                plan = Plan::HashAgg(HashAggNode {
                    input: Box::new(plan),
                    group: groups.clone(),
                    aggs: set.items.clone(),
                });
                width = groups.len() + set.items.len();
            }

            if let Some(h) = &s.having {
                let pred = self.lower_agg_expr(h, &fr, &groups, &set)?;
                plan = plan.filter(pred);
            }

            for item in &s.items {
                if let SelectItem::Expr { expr, alias } = item {
                    exprs.push(self.lower_agg_expr(expr, &fr, &groups, &set)?);
                    names.push(item_name(expr, alias));
                }
            }
            agg_cx = Some((groups, set));
        } else {
            width = layout.len();
            for item in &s.items {
                match item {
                    SelectItem::Wildcard(_) => {
                        for (i, &(a, c)) in layout.iter().enumerate() {
                            exprs.push(Expr::Col(i));
                            names.push(atoms[a].col_name(c));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        exprs.push(self.lower_expr(expr, &fr)?);
                        names.push(item_name(expr, alias));
                    }
                }
            }
        }

        // ORDER BY resolves against SELECT output positions before the
        // identity-elision decision.
        let mut keys: Vec<(usize, bool)> = Vec::new();
        for (oe, desc) in &s.order_by {
            let pos = if let Some(i) = self.alias_ref(oe, aliases) {
                i
            } else {
                let low = match &agg_cx {
                    Some((groups, set)) => self.lower_agg_expr(oe, &fr, groups, set)?,
                    None => self.lower_expr(oe, &fr)?,
                };
                exprs.iter().position(|x| *x == low).ok_or_else(|| {
                    parse_err(
                        oe.pos,
                        "an ORDER BY expression must appear in the SELECT list",
                    )
                })?
            };
            keys.push((pos, *desc));
        }

        let identity =
            exprs.len() == width && exprs.iter().enumerate().all(|(i, e)| *e == Expr::Col(i));
        if !identity {
            plan = plan.project(exprs);
        }

        plan = match (keys.is_empty(), s.limit) {
            (false, Some(n)) => plan.top_n(keys, n as usize),
            (false, None) => plan.sort(keys),
            (true, Some(n)) => plan.limit(n as usize),
            (true, None) => plan,
        };
        Ok((plan, names))
    }
}

fn item_name(expr: &SqlExpr, alias: &Option<Ident>) -> String {
    if let Some(a) = alias {
        return a.name.clone();
    }
    if let ExprKind::Column { name, .. } = &expr.kind {
        return name.name.clone();
    }
    format!("{expr}")
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use taurus_common::ClusterConfig;

    use super::*;
    use crate::ast::Statement;

    fn db() -> &'static Arc<TaurusDb> {
        static DB: OnceLock<Arc<TaurusDb>> = OnceLock::new();
        DB.get_or_init(|| {
            let db = TaurusDb::new(ClusterConfig::default());
            taurus_tpch::load(&db, 0.001, 7).expect("load tiny tpch");
            db
        })
    }

    fn try_bind(sql: &str) -> Result<Plan> {
        let stmt = crate::parser::parse(sql)?;
        let sel = match stmt {
            Statement::Select(s) | Statement::Explain(s) => s,
        };
        let session = Session::new(db());
        bind(&session, &sel)
    }

    fn bind_err(sql: &str) -> String {
        match try_bind(sql) {
            Err(Error::Parse(m)) => m,
            other => panic!("expected a positioned parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_table_is_positioned() {
        let m = bind_err("select x from nosuch");
        assert!(m.contains("unknown table `nosuch`"), "{m}");
        assert!(m.contains("line 1, col 15"), "{m}");
    }

    #[test]
    fn unknown_column_is_positioned() {
        let m = bind_err("select c_nosuch from customer");
        assert!(m.contains("unknown column `c_nosuch`"), "{m}");
        assert!(m.contains("line 1, col 8"), "{m}");
    }

    #[test]
    fn ambiguous_column_across_joined_tables() {
        let m = bind_err(
            "select c_custkey from customer as a join customer as b \
             on a.c_custkey = b.c_custkey",
        );
        assert!(m.contains("ambiguous column `c_custkey`"), "{m}");
        assert!(m.contains("line 1, col 8"), "{m}");
    }

    #[test]
    fn ungrouped_column_in_select_is_rejected() {
        let m = bind_err("select c_name, count(*) from customer group by c_nationkey");
        assert!(m.contains("must appear in the GROUP BY"), "{m}");
        assert!(m.contains("line 1, col 8"), "{m}");
    }

    #[test]
    fn type_mismatched_comparison_is_rejected() {
        let m = bind_err("select c_custkey from customer where c_phone = 5");
        assert!(m.contains("type mismatch"), "{m}");
        assert!(m.contains("line 1, col 46"), "{m}");
    }

    #[test]
    fn sane_queries_bind_and_pass_the_plan_gate() {
        // bind() runs check_plan in debug builds, so these exercise the
        // whole lowering contract.
        for sql in [
            "select count(*) from customer",
            "select c_name from customer where c_custkey < 10 order by c_name limit 5",
            "select n_name, count(*) from customer join nation \
             on c_nationkey = n_nationkey group by n_name order by n_name",
            "select o_orderpriority, count(*) as n from orders where exists (\
             select * from lineitem where l_orderkey = o_orderkey and \
             l_commitdate < l_receiptdate) group by o_orderpriority order by o_orderpriority",
        ] {
            try_bind(sql).unwrap_or_else(|e| panic!("{sql}: {e:?}"));
        }
    }

    #[test]
    fn left_join_where_conjunct_stays_above_the_join() {
        let plan = try_bind(
            "select c_custkey, o_orderkey from customer left join orders \
             on c_custkey = o_custkey where o_orderkey is not null",
        )
        .unwrap();
        // The WHERE on the left-join output must not be pushed into a
        // scan under the join: expect a Filter above the HashJoin (the
        // projection wraps it).
        fn has_filter_above_join(p: &Plan) -> bool {
            match p {
                Plan::Filter(f) => matches!(*f.input, Plan::HashJoin(_)),
                Plan::Project(p) => has_filter_above_join(&p.input),
                Plan::Sort(s) => has_filter_above_join(&s.input),
                _ => false,
            }
        }
        assert!(has_filter_above_join(&plan), "{plan:?}");
    }
}
