//! The SQL lexer: text → positioned tokens.
//!
//! Every token carries the 1-based line/column where it starts; the
//! parser and binder thread those positions into every diagnostic, so a
//! bad query fails with `line L, col C: ...` instead of a bare message.
//! All failures are [`Error::Parse`] — the lexer never panics on any
//! input byte sequence (the fuzz leg in `tests/` holds it to that).

use taurus_common::{Error, Result};

/// A 1-based source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    pub line: u32,
    pub col: u32,
}

impl Pos {
    pub fn start() -> Pos {
        Pos { line: 1, col: 1 }
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// Build the standard positioned parse error.
pub fn parse_err(pos: Pos, msg: impl std::fmt::Display) -> Error {
    Error::Parse(format!("{pos}: {msg}"))
}

/// One lexed token. Keywords are not distinguished here: the parser
/// matches [`Tok::Ident`] case-insensitively, and identifiers are
/// carried lowercased (SQL names are case-insensitive; the catalog is
/// lowercase).
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword, lowercased.
    Ident(String),
    /// Integer literal (digits only).
    Int(i64),
    /// Decimal literal, original digits preserved (e.g. `0.05`).
    Dec(String),
    /// String literal with `''` unescaped.
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Tok {
    /// Human-readable rendering for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("`{v}`"),
            Tok::Dec(s) => format!("`{s}`"),
            Tok::Str(s) => format!("'{s}'"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Star => "`*`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ne => "`<>`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
        }
    }
}

/// A token plus where it started.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

/// Lex a whole statement. `--` comments run to end of line.
pub fn lex(text: &str) -> Result<Vec<Token>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut pos = Pos::start();

    // Advance over one byte, maintaining line/col.
    fn step(pos: &mut Pos, b: u8) {
        if b == b'\n' {
            pos.line += 1;
            pos.col = 1;
        } else {
            pos.col += 1;
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let start = pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                step(&mut pos, b);
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    step(&mut pos, bytes[i]);
                    i += 1;
                }
            }
            b'\'' => {
                step(&mut pos, b);
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(parse_err(start, "unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            step(&mut pos, b'\'');
                            step(&mut pos, b'\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            step(&mut pos, b'\'');
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            // Strings are treated as byte text; multi-byte
                            // UTF-8 advances col per byte, which keeps the
                            // lexer total and positions monotone.
                            s.push(c as char);
                            step(&mut pos, c);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    pos: start,
                });
            }
            b'0'..=b'9' => {
                let begin = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    step(&mut pos, bytes[i]);
                    i += 1;
                }
                let is_dec = bytes.get(i) == Some(&b'.')
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit());
                if is_dec {
                    step(&mut pos, b'.');
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        step(&mut pos, bytes[i]);
                        i += 1;
                    }
                    let s = std::str::from_utf8(&bytes[begin..i])
                        .map_err(|_| parse_err(start, "malformed numeric literal"))?;
                    out.push(Token {
                        tok: Tok::Dec(s.to_string()),
                        pos: start,
                    });
                } else {
                    let s = std::str::from_utf8(&bytes[begin..i])
                        .map_err(|_| parse_err(start, "malformed numeric literal"))?;
                    let v: i64 = s.parse().map_err(|_| {
                        parse_err(start, format!("integer literal `{s}` overflows"))
                    })?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        pos: start,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let begin = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    step(&mut pos, bytes[i]);
                    i += 1;
                }
                let s = std::str::from_utf8(&bytes[begin..i])
                    .map_err(|_| parse_err(start, "malformed identifier"))?;
                out.push(Token {
                    tok: Tok::Ident(s.to_ascii_lowercase()),
                    pos: start,
                });
            }
            _ => {
                let (tok, len) = match (b, bytes.get(i + 1)) {
                    (b'<', Some(b'=')) => (Tok::Le, 2),
                    (b'<', Some(b'>')) => (Tok::Ne, 2),
                    (b'>', Some(b'=')) => (Tok::Ge, 2),
                    (b'!', Some(b'=')) => (Tok::Ne, 2),
                    (b'<', _) => (Tok::Lt, 1),
                    (b'>', _) => (Tok::Gt, 1),
                    (b'=', _) => (Tok::Eq, 1),
                    (b'(', _) => (Tok::LParen, 1),
                    (b')', _) => (Tok::RParen, 1),
                    (b',', _) => (Tok::Comma, 1),
                    (b'.', _) => (Tok::Dot, 1),
                    (b';', _) => (Tok::Semi, 1),
                    (b'*', _) => (Tok::Star, 1),
                    (b'+', _) => (Tok::Plus, 1),
                    (b'-', _) => (Tok::Minus, 1),
                    (b'/', _) => (Tok::Slash, 1),
                    _ => {
                        return Err(parse_err(
                            start,
                            format!("unexpected character `{}`", b as char),
                        ))
                    }
                };
                for _ in 0..len {
                    step(&mut pos, bytes[i]);
                    i += 1;
                }
                out.push(Token { tok, pos: start });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based_and_line_aware() {
        let ts = lex("select a\n from t").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 1, col: 8 });
        assert_eq!(ts[2].pos, Pos { line: 2, col: 2 });
        assert_eq!(ts[3].pos, Pos { line: 2, col: 7 });
    }

    #[test]
    fn keywords_and_idents_lowercase() {
        let ts = lex("SELECT L_ShipDate").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("select".into()));
        assert_eq!(ts[1].tok, Tok::Ident("l_shipdate".into()));
    }

    #[test]
    fn string_escapes_and_numbers() {
        let ts = lex("'it''s' 0.05 42").unwrap();
        assert_eq!(ts[0].tok, Tok::Str("it's".into()));
        assert_eq!(ts[1].tok, Tok::Dec("0.05".into()));
        assert_eq!(ts[2].tok, Tok::Int(42));
    }

    #[test]
    fn unterminated_string_is_positioned_parse_error() {
        let err = lex("select 'oops").unwrap_err();
        match err {
            Error::Parse(m) => assert!(m.contains("line 1, col 8"), "{m}"),
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let ts = lex("select -- everything\n1").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1].tok, Tok::Int(1));
    }
}
