//! SQL text frontend for the Taurus NDP reproduction.
//!
//! A hand-written [`lexer`], a recursive-descent [`parser`] producing a
//! typed AST ([`ast`]), and a catalog [`bind`]er that lowers the AST onto
//! the existing plan layer. Because binding produces ordinary
//! [`taurus_optimizer::plan::Plan`]s, everything downstream applies to
//! SQL text unchanged: NDP predicate pushdown, columnar execution, the
//! static plan verifier's pre-execution gate, and the wire protocol's
//! streaming replies.
//!
//! The supported subset is the shape of the paper's workload: SELECT with
//! INNER/LEFT joins (`FORCE INDEX` requesting lookup joins), WHERE with
//! `[NOT] EXISTS` / `[NOT] IN (SELECT ...)` / scalar subqueries, GROUP BY
//! with the standard aggregates (plus a single `COUNT(DISTINCT ...)`),
//! HAVING, ORDER BY, LIMIT, and derived tables. All 22 TPC-H queries are
//! expressible ([`tpch_sql`]) and produce results byte-equal to the
//! hand-built registry plans.
//!
//! Every failure — lexing, parsing, or binding — is a positioned
//! [`taurus_common::Error::Parse`] (`line L, col C: ...`), which the wire
//! protocol already carries as error code 1.

pub mod ast;
pub mod bind;
pub mod lexer;
pub mod parser;
pub mod tpch_sql;

pub use ast::{SelectStmt, Statement};
pub use bind::bind;
pub use parser::parse;

use taurus_common::schema::Row;
use taurus_common::{Result, Value};
use taurus_executor::Session;

/// What one SQL statement produced.
pub enum SqlOutput {
    Rows(Vec<Row>),
    /// `EXPLAIN`: the physical plan rendering, one line per entry.
    Explain(Vec<String>),
}

/// Parse, bind, and execute one statement against a session.
///
/// `EXPLAIN SELECT ...` binds the query exactly like execution would
/// (including NDP post-processing when the session has NDP enabled) and
/// returns the physical plan text instead of rows.
pub fn run(session: &Session, text: &str) -> Result<SqlOutput> {
    match parse(text)? {
        Statement::Select(s) => {
            let plan = bind(session, &s)?;
            Ok(SqlOutput::Rows(session.execute_plan(&plan)?))
        }
        Statement::Explain(s) => {
            let plan = bind(session, &s)?;
            let text = taurus_optimizer::explain_physical(&plan, session.db());
            Ok(SqlOutput::Explain(
                text.lines().map(str::to_string).collect(),
            ))
        }
    }
}

/// `session.sql("select ...")` — the in-process SQL facade.
///
/// EXPLAIN output comes back as one single-column string row per plan
/// line, so callers handle both shapes uniformly.
pub trait SessionSqlExt {
    fn sql(&self, text: &str) -> Result<Vec<Row>>;
}

impl SessionSqlExt for Session {
    fn sql(&self, text: &str) -> Result<Vec<Row>> {
        match run(self, text)? {
            SqlOutput::Rows(rows) => Ok(rows),
            SqlOutput::Explain(lines) => {
                Ok(lines.into_iter().map(|l| vec![Value::str(l)]).collect())
            }
        }
    }
}
