//! The "shared library of pre-compiled complex functions" (§V-B2).
//!
//! In Taurus, utility routines like `bin2decimal` are pre-compiled native
//! code installed on every Page Store so that the LLVM bitcode shipped in
//! descriptors stays small: generated code *calls* these helpers instead of
//! inlining them. Here the analogue is this module: ordinary Rust functions
//! reached through [`UtilFn`] ids from VM instructions, used identically by
//! the compute-node interpreter so both sides produce bit-identical results
//! (the paper's §V-B2 correctness requirement).

use taurus_common::{Date32, Dec};

/// Identifiers of library functions callable from the IR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum UtilFn {
    LikeMatch = 0,
    ExtractYear = 1,
    Substr = 2,
    DecimalCmp = 3,
}

impl UtilFn {
    pub fn from_u8(v: u8) -> Option<UtilFn> {
        Some(match v {
            0 => UtilFn::LikeMatch,
            1 => UtilFn::ExtractYear,
            2 => UtilFn::Substr,
            3 => UtilFn::DecimalCmp,
            _ => return None,
        })
    }
}

/// SQL LIKE over bytes: `%` matches any run (including empty), `_` matches
/// exactly one byte. Iterative two-pointer algorithm with backtracking to
/// the last `%`.
pub fn like_match(text: &[u8], pattern: &[u8]) -> bool {
    let (mut t, mut p) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == b'_' || pattern[p] == text[t]) {
            t += 1;
            p += 1;
        } else if p < pattern.len() && pattern[p] == b'%' {
            star = Some((p + 1, t));
            p += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more byte.
            p = sp;
            t = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'%' {
        p += 1;
    }
    p == pattern.len()
}

/// EXTRACT(YEAR FROM d) for a raw day count.
pub fn extract_year(days: i32) -> i64 {
    Date32(days).year() as i64
}

/// SUBSTRING over bytes, 1-based `from`, clamped to the text bounds.
pub fn substr(text: &[u8], from: usize, len: usize) -> &[u8] {
    let start = from.saturating_sub(1).min(text.len());
    let end = (start + len).min(text.len());
    &text[start..end]
}

/// Compare two decimals with potentially different scales — the analogue of
/// the paper's `bin2decimal`-style helpers used during predicate evaluation.
pub fn decimal_cmp(a: Dec, b: Dec) -> std::cmp::Ordering {
    a.cmp_dec(b)
}

/// Trim trailing spaces for CHAR pad-space comparisons.
pub fn trim_pad(b: &[u8]) -> &[u8] {
    let mut end = b.len();
    while end > 0 && b[end - 1] == b' ' {
        end -= 1;
    }
    &b[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_basic_wildcards() {
        assert!(like_match(b"PROMO BURNISHED", b"PROMO%"));
        assert!(like_match(b"shipping containers", b"%containers%"));
        assert!(!like_match(b"shipping crate", b"%containers%"));
        assert!(like_match(b"abc", b"a_c"));
        assert!(!like_match(b"abbc", b"a_c"));
        assert!(like_match(b"", b"%"));
        assert!(!like_match(b"", b"_"));
        assert!(like_match(b"x", b"x"));
    }

    #[test]
    fn like_backtracking_cases() {
        // Needs the % to absorb a partial later match.
        assert!(like_match(b"aXbXcXd", b"%X%d"));
        assert!(like_match(b"special requests", b"%special%requests%"));
        assert!(!like_match(b"special packages", b"%special%requests%"));
        // Q13 shape: NOT LIKE '%special%requests%'.
        assert!(like_match(
            b"aaa special bbb requests ccc",
            b"%special%requests%"
        ));
        // Multiple consecutive %.
        assert!(like_match(b"abc", b"%%c"));
    }

    #[test]
    fn substr_bounds() {
        assert_eq!(substr(b"13-HIGH", 1, 2), b"13");
        assert_eq!(substr(b"abc", 3, 10), b"c");
        assert_eq!(substr(b"abc", 9, 2), b"");
        assert_eq!(substr(b"abc", 1, 0), b"");
    }

    #[test]
    fn extract_year_matches_date32() {
        let d = Date32::parse("1995-12-31").unwrap();
        assert_eq!(extract_year(d.0), 1995);
    }

    #[test]
    fn trim_pad_only_trailing() {
        assert_eq!(trim_pad(b"ab  "), b"ab");
        assert_eq!(trim_pad(b"  ab"), b"  ab");
        assert_eq!(trim_pad(b"   "), b"");
    }

    #[test]
    fn utilfn_roundtrip() {
        for f in [
            UtilFn::LikeMatch,
            UtilFn::ExtractYear,
            UtilFn::Substr,
            UtilFn::DecimalCmp,
        ] {
            assert_eq!(UtilFn::from_u8(f as u8), Some(f));
        }
        assert_eq!(UtilFn::from_u8(77), None);
    }
}
