//! Column-at-a-time predicate evaluation — the vectorized twin of the
//! scalar VM in [`crate::vm`].
//!
//! A [`VectorProgram`] is extracted from the same validated IR the scalar
//! paths run ([`crate::ir`]): the short-circuit branch structure that
//! `lower` emits for AND/OR is *statically* removed (see
//! [`canonical shortcut`](#shortcut-elision)) leaving a straight-line op
//! sequence that evaluates every sub-expression over all rows at once.
//! Boolean results live in [`BoolVec`] bitmap pairs and combine with
//! word-level Kleene AND/OR/NOT — 64 rows of three-valued logic per
//! instruction instead of a `TriBool` dispatch per cell. Non-boolean
//! registers hold one [`Slot`] per row and reuse the scalar VM's cell
//! helpers (`slot_cmp`/`slot_arith`/...), so every lane computes exactly
//! what `CompiledPredicate::eval_record` would — parity by construction.
//!
//! The same program runs over both inputs of the paper's split:
//! [`VectorProgram::eval_batch`] on the executor's [`ColumnBatch`]es, and
//! [`VectorProgram::eval_records`] on raw Page-Store record views (the
//! NDP path), which extracts each referenced field into a column first
//! and then shares the kernel.
//!
//! # Shortcut elision
//!
//! `lower_junction` emits exactly one shape of conditional branch: a jump
//! to a `Mov; Jmp end; LoadConst dst, 0|1` shortcut exit. Because the
//! fall-through path merges with Kleene AND/OR — for which
//! `And(False, x) == False` and `Or(True, x) == True` — the merged
//! fall-through value *equals* the shortcut constant on every row that
//! would have branched, so dropping the branch preserves semantics. The
//! extractor verifies this exact shape and rejects anything else
//! (hand-built IR, future compiler changes): rejection is not an error,
//! it just means callers fall back to the scalar path.
//!
//! # Errors
//!
//! Vector evaluation computes eagerly where the scalar VM short-circuits,
//! so it can hit a runtime error (division by zero, integer overflow) on
//! a row the scalar path never evaluates. Any lane error fails the whole
//! batch: callers treat `Err` as "use the scalar path for this batch",
//! keeping the scalar result authoritative.

use taurus_common::colbatch::{Bitmap, ColumnBatch, ColumnVec};
use taurus_common::{DataType, Dec, Error, Result};
use taurus_page::{RecordLayout, RecordView};

use crate::ast::{ArithOp, CmpOp, Expr};
use crate::compile::MAX_REGS;
use crate::ir::{IrInstr, IrProgram};
use crate::util;
use crate::vm::{
    bool_slot, cmp_holds, load_field, slot_arith, slot_bool, slot_cmp, ConstSlot, Slot,
};

/// A three-valued boolean column: `truth` holds the definite-TRUE rows,
/// `valid` the non-NULL rows. Invariant: `truth ⊆ valid` (and bits past
/// `len` are zero in both), so FALSE = `valid & !truth` and NULL =
/// `!valid` — one word op each.
#[derive(Clone, Debug)]
pub struct BoolVec {
    truth: Vec<u64>,
    valid: Vec<u64>,
    len: usize,
}

impl BoolVec {
    /// All lanes NULL.
    pub fn with_len(len: usize) -> BoolVec {
        BoolVec {
            truth: vec![0; len.div_ceil(64)],
            valid: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Every lane the same three-valued constant.
    pub fn splat(len: usize, v: Option<bool>) -> BoolVec {
        let mut b = BoolVec::with_len(len);
        if v.is_some() {
            for w in &mut b.valid {
                *w = !0;
            }
        }
        if v == Some(true) {
            for w in &mut b.truth {
                *w = !0;
            }
        }
        b.mask_tail();
        b
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            let m = (1u64 << tail) - 1;
            if let Some(w) = self.truth.last_mut() {
                *w &= m;
            }
            if let Some(w) = self.valid.last_mut() {
                *w &= m;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set lane `i` (starting from NULL; lanes are set at most once).
    #[inline]
    pub fn set_lane(&mut self, i: usize, v: Option<bool>) {
        debug_assert!(i < self.len);
        let (w, off) = (i / 64, i % 64);
        match v {
            None => {}
            Some(t) => {
                self.valid[w] |= 1 << off;
                if t {
                    self.truth[w] |= 1 << off;
                }
            }
        }
    }

    #[inline]
    pub fn get_lane(&self, i: usize) -> Option<bool> {
        debug_assert!(i < self.len);
        let (w, off) = (i / 64, i % 64);
        if (self.valid[w] >> off) & 1 == 0 {
            None
        } else {
            Some((self.truth[w] >> off) & 1 == 1)
        }
    }

    #[inline]
    pub fn is_true(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.truth[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Word-level Kleene AND: FALSE dominates NULL.
    pub fn and(&self, o: &BoolVec) -> BoolVec {
        debug_assert_eq!(self.len, o.len);
        let mut out = BoolVec::with_len(self.len);
        for i in 0..out.truth.len() {
            let t = self.truth[i] & o.truth[i];
            let f = (self.valid[i] & !self.truth[i]) | (o.valid[i] & !o.truth[i]);
            out.truth[i] = t;
            out.valid[i] = t | f;
        }
        out
    }

    /// Word-level Kleene OR: TRUE dominates NULL.
    pub fn or(&self, o: &BoolVec) -> BoolVec {
        debug_assert_eq!(self.len, o.len);
        let mut out = BoolVec::with_len(self.len);
        for i in 0..out.truth.len() {
            let t = self.truth[i] | o.truth[i];
            let f = (self.valid[i] & !self.truth[i]) & (o.valid[i] & !o.truth[i]);
            out.truth[i] = t;
            out.valid[i] = t | f;
        }
        out
    }

    /// Kleene NOT: NULL stays NULL.
    pub fn not(&self) -> BoolVec {
        let mut out = self.clone();
        for i in 0..out.truth.len() {
            out.truth[i] = out.valid[i] & !out.truth[i];
        }
        out
    }

    pub fn count_true(&self) -> usize {
        self.truth.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Row indices of the definite-TRUE lanes, ascending — ready to use
    /// as (or intersect with) a [`ColumnBatch`] selection vector.
    pub fn true_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_true());
        for (wi, &word) in self.truth.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push((wi * 64) as u32 + bit);
                w &= w - 1;
            }
        }
        out
    }
}

/// Where a column load reads from: an executor batch column, or a record
/// field resolved against a Page-Store layout (mirrors the scalar VM's
/// `Op::LoadField` resolution).
#[derive(Clone, Copy, Debug)]
enum VLoad {
    Col { col: u16 },
    Field { pos: u16, dtype: DataType },
}

/// Straight-line vector op: [`IrInstr`] minus branches and `Ret`.
#[derive(Clone, Copy, Debug)]
enum VOp {
    Load {
        dst: u16,
        src: VLoad,
    },
    LoadConst {
        dst: u16,
        idx: u16,
    },
    Mov {
        dst: u16,
        src: u16,
    },
    Cmp {
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    And {
        dst: u16,
        a: u16,
        b: u16,
    },
    Or {
        dst: u16,
        a: u16,
        b: u16,
    },
    Not {
        dst: u16,
        a: u16,
    },
    Arith {
        op: ArithOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    Neg {
        dst: u16,
        a: u16,
    },
    IsNull {
        dst: u16,
        a: u16,
        negated: bool,
    },
    Like {
        dst: u16,
        a: u16,
        pattern: u16,
        negated: bool,
    },
    InList {
        dst: u16,
        a: u16,
        first: u16,
        count: u16,
        negated: bool,
    },
    ExtractYear {
        dst: u16,
        a: u16,
    },
    Substr {
        dst: u16,
        a: u16,
        from: u16,
        len: u16,
    },
}

/// One register during vector evaluation.
#[derive(Clone, Debug)]
enum VReg<'a> {
    Unset,
    /// The same scalar on every row (constants).
    Splat(Slot<'a>),
    /// A borrowed batch column, still in typed form — comparisons against
    /// it run over the raw vectors (the fast kernels); anything else
    /// materializes slots lazily via [`lanes`].
    Col(&'a ColumnVec),
    /// One slot per row.
    Cells(Vec<Slot<'a>>),
    /// Three-valued boolean bitmaps.
    Bool(BoolVec),
}

/// A per-row view of a register for the cell-at-a-time kernels.
enum Lanes<'v, 'a> {
    Splat(Slot<'a>),
    Cells(&'v [Slot<'a>]),
    Owned(Vec<Slot<'a>>),
}

impl<'a> Lanes<'_, 'a> {
    #[inline]
    fn at(&self, i: usize) -> Slot<'a> {
        match self {
            Lanes::Splat(s) => *s,
            Lanes::Cells(c) => c[i],
            Lanes::Owned(v) => v[i],
        }
    }

    fn is_splat(&self) -> bool {
        matches!(self, Lanes::Splat(_))
    }
}

fn lanes<'v, 'a>(r: &'v VReg<'a>, len: usize) -> Result<Lanes<'v, 'a>> {
    match r {
        VReg::Splat(s) => Ok(Lanes::Splat(*s)),
        VReg::Col(cv) => Ok(Lanes::Owned(column_slots(cv, len))),
        VReg::Cells(c) => Ok(Lanes::Cells(c)),
        VReg::Bool(b) => Ok(Lanes::Owned(
            (0..len)
                .map(|i| match b.get_lane(i) {
                    None => Slot::Null,
                    Some(t) => bool_slot(t),
                })
                .collect(),
        )),
        VReg::Unset => Err(Error::Internal("vector register read before write".into())),
    }
}

/// Convert any register into boolean bitmaps (`Ret`, And/Or/Not inputs).
fn to_bool(r: &VReg<'_>, len: usize) -> Result<BoolVec> {
    match r {
        VReg::Bool(b) => Ok(b.clone()),
        VReg::Splat(s) => Ok(BoolVec::splat(len, slot_bool(s)?)),
        VReg::Col(cv) => {
            let cells = column_slots(cv, len);
            let mut out = BoolVec::with_len(len);
            for (i, s) in cells.iter().enumerate() {
                out.set_lane(i, slot_bool(s)?);
            }
            Ok(out)
        }
        VReg::Cells(c) => {
            let mut out = BoolVec::with_len(len);
            for (i, s) in c.iter().enumerate() {
                out.set_lane(i, slot_bool(s)?);
            }
            Ok(out)
        }
        VReg::Unset => Err(Error::Internal("vector register read before write".into())),
    }
}

/// A predicate program in straight-line vector form, shared by the
/// executor's columnar Filter and the Page-Store NDP page kernel.
pub struct VectorProgram {
    ops: Box<[VOp]>,
    consts: Box<[ConstSlot]>,
    n_regs: usize,
    ret: u16,
    /// Set by the static verifier's range analysis (crates/verify) when
    /// every decimal rescale this program can perform is proven not to
    /// overflow `i128`. Proven programs run the raw unchecked multiply
    /// loops; unproven ones pay a per-lane `checked_mul` and defer the
    /// batch to the generic slot path on overflow (whose `Dec::cmp_dec`
    /// is overflow-sound), so results never depend on this flag.
    proven_safe: bool,
}

/// A typed, read-only view of one straight-line vector op, exposed for
/// the static verifier's abstract interpreter (`crates/verify`). Mirrors
/// the private op list without leaking evaluation internals; register
/// indices are the same as the source IR's.
#[derive(Clone, Copy, Debug)]
pub enum VOpView {
    /// A column (batch position) or record-field load; `dtype` is known
    /// only for record-layout loads.
    Load {
        dst: u16,
        col: u16,
        dtype: Option<DataType>,
    },
    LoadConst {
        dst: u16,
        idx: u16,
    },
    Mov {
        dst: u16,
        src: u16,
    },
    Cmp {
        dst: u16,
        a: u16,
        b: u16,
    },
    And {
        dst: u16,
        a: u16,
        b: u16,
    },
    Or {
        dst: u16,
        a: u16,
        b: u16,
    },
    Not {
        dst: u16,
        a: u16,
    },
    Arith {
        dst: u16,
        a: u16,
        b: u16,
    },
    Neg {
        dst: u16,
        a: u16,
    },
    IsNull {
        dst: u16,
        a: u16,
    },
    Like {
        dst: u16,
        a: u16,
        pattern: u16,
    },
    InList {
        dst: u16,
        a: u16,
        first: u16,
        count: u16,
    },
    ExtractYear {
        dst: u16,
        a: u16,
    },
    Substr {
        dst: u16,
        a: u16,
    },
}

impl VectorProgram {
    /// Compile an executor predicate: `Expr::Col(i)` loads batch column
    /// `i`. `Err` means "not vectorizable" — fall back to the scalar path.
    pub fn from_expr(e: &Expr) -> Result<VectorProgram> {
        let ir = crate::compile::lower(e)?;
        Self::build(&ir, |col| Ok(VLoad::Col { col }))
    }

    /// Compile decoded NDP descriptor IR against a record layout —
    /// identical column resolution to `CompiledPredicate::compile`.
    pub fn from_ir(
        ir: &IrProgram,
        layout: &RecordLayout,
        col_map: &[u16],
    ) -> Result<VectorProgram> {
        Self::build(ir, |col| {
            let pos = *col_map
                .get(col as usize)
                .ok_or_else(|| Error::InvalidState(format!("descriptor col {col} unmapped")))?;
            if pos == u16::MAX || pos as usize >= layout.n_cols() {
                return Err(Error::InvalidState(format!(
                    "descriptor col {col} not present in record layout"
                )));
            }
            Ok(VLoad::Field {
                pos,
                dtype: layout.dtypes[pos as usize],
            })
        })
    }

    /// Extract the straight-line op sequence, following unconditional
    /// jumps and eliding canonical shortcut branches (module docs).
    fn build(ir: &IrProgram, mut load: impl FnMut(u16) -> Result<VLoad>) -> Result<VectorProgram> {
        ir.validate()?;
        if ir.n_regs as usize > MAX_REGS {
            return Err(Error::InvalidState(format!(
                "program uses {} registers, max {MAX_REGS}",
                ir.n_regs
            )));
        }
        let mut ops = Vec::with_capacity(ir.instrs.len());
        let mut pc = 0usize;
        let ret;
        loop {
            let Some(&ins) = ir.instrs.get(pc) else {
                return Err(Error::InvalidState("program ran off the end".into()));
            };
            match ins {
                IrInstr::Jmp { target } => {
                    if target as usize <= pc {
                        return Err(Error::InvalidState(
                            "backward jump; not vectorizable".into(),
                        ));
                    }
                    // The shortcut exit this jump skips must never run on
                    // the fall-through path: follow it statically.
                    pc = target as usize;
                }
                IrInstr::BrFalse { target, .. } => {
                    canonical_shortcut(ir, target, false)?;
                    pc += 1;
                }
                IrInstr::BrTrue { target, .. } => {
                    canonical_shortcut(ir, target, true)?;
                    pc += 1;
                }
                IrInstr::Ret { src } => {
                    ret = src;
                    break;
                }
                other => {
                    ops.push(lower_one(other, &mut load)?);
                    pc += 1;
                }
            }
        }
        Ok(VectorProgram {
            ops: ops.into_boxed_slice(),
            consts: ir.consts.iter().map(ConstSlot::from_value).collect(),
            n_regs: ir.n_regs as usize,
            ret,
            proven_safe: false,
        })
    }

    /// Record the verifier's proof that no decimal rescale in this
    /// program can overflow: comparison kernels then skip the per-lane
    /// checked-overflow deferral. Only `crates/verify`'s range analysis
    /// should establish this.
    pub fn mark_proven_safe(&mut self) {
        self.proven_safe = true;
    }

    pub fn is_proven_safe(&self) -> bool {
        self.proven_safe
    }

    /// Register count (for the verifier's abstract interpreter).
    pub fn reg_count(&self) -> usize {
        self.n_regs
    }

    /// The register whose value is the program result.
    pub fn ret_reg(&self) -> u16 {
        self.ret
    }

    /// The straight-line op sequence in verifier-view form.
    pub fn ops_view(&self) -> Vec<VOpView> {
        self.ops
            .iter()
            .map(|op| match *op {
                VOp::Load { dst, src } => match src {
                    VLoad::Col { col } => VOpView::Load {
                        dst,
                        col,
                        dtype: None,
                    },
                    VLoad::Field { pos, dtype } => VOpView::Load {
                        dst,
                        col: pos,
                        dtype: Some(dtype),
                    },
                },
                VOp::LoadConst { dst, idx } => VOpView::LoadConst { dst, idx },
                VOp::Mov { dst, src } => VOpView::Mov { dst, src },
                VOp::Cmp { dst, a, b, .. } => VOpView::Cmp { dst, a, b },
                VOp::And { dst, a, b } => VOpView::And { dst, a, b },
                VOp::Or { dst, a, b } => VOpView::Or { dst, a, b },
                VOp::Not { dst, a } => VOpView::Not { dst, a },
                VOp::Arith { dst, a, b, .. } => VOpView::Arith { dst, a, b },
                VOp::Neg { dst, a } => VOpView::Neg { dst, a },
                VOp::IsNull { dst, a, .. } => VOpView::IsNull { dst, a },
                VOp::Like {
                    dst, a, pattern, ..
                } => VOpView::Like { dst, a, pattern },
                VOp::InList {
                    dst,
                    a,
                    first,
                    count,
                    ..
                } => VOpView::InList {
                    dst,
                    a,
                    first,
                    count,
                },
                VOp::ExtractYear { dst, a } => VOpView::ExtractYear { dst, a },
                VOp::Substr { dst, a, .. } => VOpView::Substr { dst, a },
            })
            .collect()
    }

    /// Columns/record positions this program loads (sorted, deduplicated)
    /// — the vector-side counterpart of [`IrProgram::columns_used`].
    pub fn columns_used(&self) -> Vec<u16> {
        let mut cols: Vec<u16> = self
            .ops
            .iter()
            .filter_map(|op| match op {
                VOp::Load { src, .. } => Some(match src {
                    VLoad::Col { col } => *col,
                    VLoad::Field { pos, .. } => *pos,
                }),
                _ => None,
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Evaluate over an executor [`ColumnBatch`] (all physical rows; the
    /// caller intersects the result with any existing selection).
    pub fn eval_batch<'a>(&'a self, batch: &'a ColumnBatch) -> Result<BoolVec> {
        let len = batch.len();
        self.exec(len, &mut |l| match *l {
            VLoad::Col { col } => {
                if col as usize >= batch.width() {
                    return Err(Error::Internal(format!(
                        "vector load of column {col} from width-{} batch",
                        batch.width()
                    )));
                }
                // Keep the typed column: comparisons against it run the
                // raw-vector kernels instead of per-lane slot dispatch.
                Ok(VReg::Col(batch.col(col as usize)))
            }
            VLoad::Field { .. } => Err(Error::Internal("field load outside record context".into())),
        })
    }

    /// Evaluate over Page-Store record views: each referenced field is
    /// gathered into a column of borrowed slots (the same no-copy loads as
    /// the scalar VM), then the shared kernel runs column-at-a-time.
    pub fn eval_records<'a>(&'a self, views: &[RecordView<'a>]) -> Result<BoolVec> {
        let len = views.len();
        let offsets: Vec<Vec<u32>> = views
            .iter()
            .map(|v| {
                let mut o = Vec::new();
                v.fill_offsets(&mut o);
                o
            })
            .collect();
        self.exec(len, &mut |l| match *l {
            VLoad::Field { pos, dtype } => Ok(VReg::Cells(
                views
                    .iter()
                    .zip(&offsets)
                    .map(|(v, off)| {
                        if v.is_null(pos as usize) {
                            Slot::Null
                        } else {
                            let s = off[pos as usize] as usize;
                            let e = off[pos as usize + 1] as usize;
                            load_field(&v.backing()[s..e], dtype)
                        }
                    })
                    .collect(),
            )),
            VLoad::Col { .. } => Err(Error::Internal("column load outside batch context".into())),
        })
    }

    /// The shared straight-line interpreter; `load` materializes one
    /// referenced column per `Load` op.
    fn exec<'a>(
        &'a self,
        len: usize,
        load: &mut dyn FnMut(&VLoad) -> Result<VReg<'a>>,
    ) -> Result<BoolVec> {
        let mut regs: Vec<VReg<'a>> = vec![VReg::Unset; self.n_regs];
        for op in self.ops.iter() {
            match *op {
                VOp::Load { dst, src } => regs[dst as usize] = load(&src)?,
                VOp::LoadConst { dst, idx } => {
                    regs[dst as usize] = VReg::Splat(self.consts[idx as usize].as_slot());
                }
                VOp::Mov { dst, src } => regs[dst as usize] = regs[src as usize].clone(),
                VOp::Cmp { op, dst, a, b } => {
                    let r = cmp_vec(
                        op,
                        &regs[a as usize],
                        &regs[b as usize],
                        len,
                        self.proven_safe,
                    )?;
                    regs[dst as usize] = VReg::Bool(r);
                }
                VOp::And { dst, a, b } => {
                    let x = to_bool(&regs[a as usize], len)?;
                    let y = to_bool(&regs[b as usize], len)?;
                    regs[dst as usize] = VReg::Bool(x.and(&y));
                }
                VOp::Or { dst, a, b } => {
                    let x = to_bool(&regs[a as usize], len)?;
                    let y = to_bool(&regs[b as usize], len)?;
                    regs[dst as usize] = VReg::Bool(x.or(&y));
                }
                VOp::Not { dst, a } => {
                    let x = to_bool(&regs[a as usize], len)?;
                    regs[dst as usize] = VReg::Bool(x.not());
                }
                VOp::Arith { op, dst, a, b } => {
                    let r = arith_vec(op, &regs[a as usize], &regs[b as usize], len)?;
                    regs[dst as usize] = r;
                }
                VOp::Neg { dst, a } => {
                    let r = unary_cells(&regs[a as usize], len, |s| match s {
                        Slot::Null => Ok(Slot::Null),
                        Slot::Int(v) => Ok(Slot::Int(-v)),
                        Slot::Dec(d) => Ok(Slot::Dec(d.neg())),
                        Slot::F64(v) => Ok(Slot::F64(-v)),
                        other => Err(Error::Type(format!("cannot negate {other:?}"))),
                    })?;
                    regs[dst as usize] = r;
                }
                VOp::IsNull { dst, a, negated } => {
                    let r = match &regs[a as usize] {
                        VReg::Bool(b) => {
                            // A boolean register is NULL exactly where it
                            // is not valid.
                            let mut out = BoolVec::with_len(len);
                            for i in 0..len {
                                let isn = b.get_lane(i).is_none();
                                out.set_lane(i, Some(isn != negated));
                            }
                            out
                        }
                        VReg::Splat(s) => {
                            BoolVec::splat(len, Some(matches!(s, Slot::Null) != negated))
                        }
                        VReg::Col(cv) => {
                            // NULL ⟺ validity bit clear: word-level.
                            let mut out = BoolVec::splat(len, Some(false));
                            let vw = cv.valid().words();
                            for (i, t) in out.truth.iter_mut().enumerate() {
                                let nulls = !vw.get(i).copied().unwrap_or(0);
                                *t = if negated { !nulls } else { nulls };
                            }
                            for (t, &va) in out.truth.iter_mut().zip(&out.valid) {
                                *t &= va;
                            }
                            out
                        }
                        VReg::Cells(c) => {
                            let mut out = BoolVec::with_len(len);
                            for (i, s) in c.iter().enumerate() {
                                let isn = matches!(s, Slot::Null);
                                out.set_lane(i, Some(isn != negated));
                            }
                            out
                        }
                        VReg::Unset => {
                            return Err(Error::Internal("vector register read before write".into()))
                        }
                    };
                    regs[dst as usize] = VReg::Bool(r);
                }
                VOp::Like {
                    dst,
                    a,
                    pattern,
                    negated,
                } => {
                    let pat = match &self.consts[pattern as usize] {
                        ConstSlot::Bytes(b) => &b[..],
                        other => {
                            return Err(Error::Internal(format!("LIKE pattern const is {other:?}")))
                        }
                    };
                    let av = lanes(&regs[a as usize], len)?;
                    let mut out = BoolVec::with_len(len);
                    for i in 0..len {
                        match av.at(i) {
                            Slot::Null => {}
                            Slot::Bytes(text) => {
                                out.set_lane(i, Some(util::like_match(text, pat) != negated))
                            }
                            other => return Err(Error::Type(format!("LIKE on {other:?}"))),
                        }
                    }
                    regs[dst as usize] = VReg::Bool(out);
                }
                VOp::InList {
                    dst,
                    a,
                    first,
                    count,
                    negated,
                } => {
                    let list: Vec<Slot<'_>> = (first..first + count)
                        .map(|i| self.consts[i as usize].as_slot())
                        .collect();
                    let av = lanes(&regs[a as usize], len)?;
                    let mut out = BoolVec::with_len(len);
                    for i in 0..len {
                        let v = av.at(i);
                        if matches!(v, Slot::Null) {
                            continue;
                        }
                        let mut found = false;
                        for c in &list {
                            if slot_cmp(&v, c)? == Some(std::cmp::Ordering::Equal) {
                                found = true;
                                break;
                            }
                        }
                        out.set_lane(i, Some(found != negated));
                    }
                    regs[dst as usize] = VReg::Bool(out);
                }
                VOp::ExtractYear { dst, a } => {
                    let r = unary_cells(&regs[a as usize], len, |s| match s {
                        Slot::Null => Ok(Slot::Null),
                        Slot::Date(d) => Ok(Slot::Int(util::extract_year(d))),
                        other => Err(Error::Type(format!("EXTRACT(YEAR) on {other:?}"))),
                    })?;
                    regs[dst as usize] = r;
                }
                VOp::Substr {
                    dst,
                    a,
                    from,
                    len: n,
                } => {
                    let r = unary_cells(&regs[a as usize], len, |s| match s {
                        Slot::Null => Ok(Slot::Null),
                        Slot::Bytes(b) => {
                            Ok(Slot::Bytes(util::substr(b, from as usize, n as usize)))
                        }
                        other => Err(Error::Type(format!("SUBSTR on {other:?}"))),
                    })?;
                    regs[dst as usize] = r;
                }
            }
        }
        to_bool(&regs[self.ret as usize], len)
    }
}

/// Verify the canonical shortcut-exit shape at branch target `t` (module
/// docs): `Mov{dst}; Jmp t+1; LoadConst{dst, Int(0|1)}`. Anything else —
/// hand-built IR, a different compiler — is rejected (scalar fallback).
fn canonical_shortcut(ir: &IrProgram, target: u16, is_true: bool) -> Result<()> {
    let t = target as usize;
    let want = if is_true { 1 } else { 0 };
    let reject = || Error::InvalidState("non-canonical shortcut branch; not vectorizable".into());
    if t < 2 || t >= ir.instrs.len() {
        return Err(reject());
    }
    let IrInstr::LoadConst { dst, idx } = ir.instrs[t] else {
        return Err(reject());
    };
    if ir.consts.get(idx as usize) != Some(&taurus_common::Value::Int(want)) {
        return Err(reject());
    }
    let IrInstr::Jmp { target: j } = ir.instrs[t - 1] else {
        return Err(reject());
    };
    if j as usize != t + 1 {
        return Err(reject());
    }
    let IrInstr::Mov { dst: md, .. } = ir.instrs[t - 2] else {
        return Err(reject());
    };
    if md != dst {
        return Err(reject());
    }
    Ok(())
}

fn lower_one(ins: IrInstr, load: &mut impl FnMut(u16) -> Result<VLoad>) -> Result<VOp> {
    Ok(match ins {
        IrInstr::LoadCol { dst, col } => VOp::Load {
            dst,
            src: load(col)?,
        },
        IrInstr::LoadConst { dst, idx } => VOp::LoadConst { dst, idx },
        IrInstr::Mov { dst, src } => VOp::Mov { dst, src },
        IrInstr::Cmp { op, dst, a, b } => VOp::Cmp { op, dst, a, b },
        IrInstr::And { dst, a, b } => VOp::And { dst, a, b },
        IrInstr::Or { dst, a, b } => VOp::Or { dst, a, b },
        IrInstr::Not { dst, a } => VOp::Not { dst, a },
        IrInstr::Arith { op, dst, a, b } => VOp::Arith { op, dst, a, b },
        IrInstr::Neg { dst, a } => VOp::Neg { dst, a },
        IrInstr::IsNull { dst, a, negated } => VOp::IsNull { dst, a, negated },
        IrInstr::Like {
            dst,
            a,
            pattern,
            negated,
        } => VOp::Like {
            dst,
            a,
            pattern,
            negated,
        },
        IrInstr::InList {
            dst,
            a,
            first,
            count,
            negated,
        } => VOp::InList {
            dst,
            a,
            first,
            count,
            negated,
        },
        IrInstr::ExtractYear { dst, a } => VOp::ExtractYear { dst, a },
        IrInstr::Substr { dst, a, from, len } => VOp::Substr { dst, a, from, len },
        IrInstr::BrFalse { .. }
        | IrInstr::BrTrue { .. }
        | IrInstr::Jmp { .. }
        | IrInstr::Ret { .. } => {
            return Err(Error::Internal(
                "branch reached straight-line lowering".into(),
            ))
        }
    })
}

/// Per-type column → slot extraction: one tight loop per [`ColumnVec`]
/// variant (this is the "column-at-a-time" load the row path lacks).
fn column_slots<'a>(cv: &'a ColumnVec, len: usize) -> Vec<Slot<'a>> {
    debug_assert_eq!(cv.len(), len);
    match cv {
        ColumnVec::Int64 { vals, valid } => vals
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if valid.get(i) {
                    Slot::Int(v)
                } else {
                    Slot::Null
                }
            })
            .collect(),
        ColumnVec::Dec { raw, scale, valid } => raw
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if valid.get(i) {
                    Slot::Dec(Dec::new(r, *scale))
                } else {
                    Slot::Null
                }
            })
            .collect(),
        ColumnVec::Date { vals, valid } => vals
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if valid.get(i) {
                    Slot::Date(v)
                } else {
                    Slot::Null
                }
            })
            .collect(),
        ColumnVec::F64 { vals, valid } => vals
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if valid.get(i) {
                    Slot::F64(v)
                } else {
                    Slot::Null
                }
            })
            .collect(),
        ColumnVec::Generic { vals, .. } => vals
            .iter()
            .map(|v| match v {
                taurus_common::Value::Null => Slot::Null,
                taurus_common::Value::Int(x) => Slot::Int(*x),
                taurus_common::Value::Decimal(d) => Slot::Dec(*d),
                taurus_common::Value::Date(d) => Slot::Date(d.0),
                taurus_common::Value::Str(s) => Slot::Bytes(s.as_bytes()),
                taurus_common::Value::Double(x) => Slot::F64(*x),
            })
            .collect(),
    }
}

fn cmp_vec(
    op: CmpOp,
    ra: &VReg<'_>,
    rb: &VReg<'_>,
    len: usize,
    proven_safe: bool,
) -> Result<BoolVec> {
    // Typed fast paths first: raw-vector loops, no per-lane slot dispatch.
    // `None` means "shape not specialized" (or a checked rescale deferred
    // the batch) — never a semantic difference — and the generic path
    // below reproduces scalar-VM behavior exactly (including its type
    // errors; `slot_cmp`'s `Dec::cmp_dec` is overflow-sound).
    match (ra, rb) {
        (VReg::Col(cv), VReg::Splat(s)) => {
            if let Some(bv) = cmp_col_const(op, cv, s, len, proven_safe) {
                return Ok(bv);
            }
        }
        (VReg::Splat(s), VReg::Col(cv)) => {
            if let Some(bv) = cmp_col_const(op.flip(), cv, s, len, proven_safe) {
                return Ok(bv);
            }
        }
        (VReg::Col(ca), VReg::Col(cb)) => {
            if let Some(bv) = cmp_col_col(op, ca, cb, proven_safe) {
                return Ok(bv);
            }
        }
        _ => {}
    }
    let a = lanes(ra, len)?;
    let b = lanes(rb, len)?;
    if a.is_splat() && b.is_splat() {
        let v = slot_cmp(&a.at(0), &b.at(0))?.map(|ord| cmp_holds(op, ord));
        return Ok(BoolVec::splat(len, v));
    }
    let mut out = BoolVec::with_len(len);
    for i in 0..len {
        if let Some(ord) = slot_cmp(&a.at(i), &b.at(i))? {
            out.set_lane(i, Some(cmp_holds(op, ord)));
        }
    }
    Ok(out)
}

/// Truth bits from one tight loop over a typed vector; validity copied
/// wordwise from the column bitmap (then `truth &= valid`, preserving the
/// `truth ⊆ valid` invariant — NULL lanes compare to NULL exactly as
/// `slot_cmp` does).
fn cmp_tight<T: Copy>(vals: &[T], valid: &Bitmap, f: impl Fn(T) -> bool) -> BoolVec {
    let mut out = BoolVec::with_len(vals.len());
    out.valid.copy_from_slice(valid.words());
    for (i, &v) in vals.iter().enumerate() {
        out.truth[i / 64] |= (f(v) as u64) << (i % 64);
    }
    for (t, &w) in out.truth.iter_mut().zip(&out.valid) {
        *t &= w;
    }
    out
}

/// Power of ten used by `Dec::align` — the same rescale the scalar
/// comparison performs, hoisted out of the loop.
fn pow10(scale: u8) -> i128 {
    10i128.pow(scale as u32)
}

/// Largest upscale exponent for which `i64 as i128 * 10^k` cannot exceed
/// `i128`: `i64::MAX · 10^19 < i128::MAX` (range analysis soundness
/// anchor — DESIGN.md "Static verification").
const MAX_I64_UPSCALE: u8 = 19;

/// Checked variant of [`cmp_tight`]: any lane whose rescale would
/// overflow aborts the specialization (`None`), deferring the whole batch
/// to the generic slot path, whose `Dec::cmp_dec` is overflow-sound.
fn cmp_tight_checked<T: Copy>(
    vals: &[T],
    valid: &Bitmap,
    f: impl Fn(T) -> Option<bool>,
) -> Option<BoolVec> {
    let mut out = BoolVec::with_len(vals.len());
    out.valid.copy_from_slice(valid.words());
    for (i, &v) in vals.iter().enumerate() {
        out.truth[i / 64] |= (f(v)? as u64) << (i % 64);
    }
    for (t, &w) in out.truth.iter_mut().zip(&out.valid) {
        *t &= w;
    }
    Some(out)
}

/// Column vs constant, specialized per typed [`ColumnVec`] variant.
/// Decimal/int mixes pre-align the constant (or fold the per-lane align
/// multiply into the loop) exactly as `Dec::align` would per lane.
/// `proven_safe` programs skip the per-lane overflow checks; everything
/// else runs checked and defers on overflow.
fn cmp_col_const(
    op: CmpOp,
    cv: &ColumnVec,
    c: &Slot<'_>,
    len: usize,
    proven_safe: bool,
) -> Option<BoolVec> {
    if matches!(c, Slot::Null) {
        // NULL compares to NULL on every lane.
        return Some(BoolVec::with_len(len));
    }
    match (cv, c) {
        (ColumnVec::Int64 { vals, valid }, Slot::Int(c)) => {
            let c = *c;
            Some(cmp_tight(vals, valid, |v| cmp_holds(op, v.cmp(&c))))
        }
        (ColumnVec::Int64 { vals, valid }, Slot::Dec(d)) => {
            // The lane side is i64 by type, so `v · 10^scale` is statically
            // safe for any scale ≤ 19 — no flag or per-lane check needed.
            if d.scale > MAX_I64_UPSCALE {
                return None;
            }
            let (p, cr) = (pow10(d.scale), d.raw);
            Some(cmp_tight(vals, valid, |v| {
                cmp_holds(op, (v as i128 * p).cmp(&cr))
            }))
        }
        (ColumnVec::Dec { raw, scale, valid }, Slot::Dec(d)) => {
            if d.scale <= *scale {
                let cr = d.raw.checked_mul(pow10(scale - d.scale))?;
                Some(cmp_tight(raw, valid, |v| cmp_holds(op, v.cmp(&cr))))
            } else {
                let (p, cr) = (pow10(d.scale - scale), d.raw);
                if proven_safe {
                    Some(cmp_tight(raw, valid, |v| cmp_holds(op, (v * p).cmp(&cr))))
                } else {
                    cmp_tight_checked(raw, valid, |v| {
                        Some(cmp_holds(op, v.checked_mul(p)?.cmp(&cr)))
                    })
                }
            }
        }
        (ColumnVec::Dec { raw, scale, valid }, Slot::Int(c)) => {
            let cr = (*c as i128).checked_mul(pow10(*scale))?;
            Some(cmp_tight(raw, valid, |v| cmp_holds(op, v.cmp(&cr))))
        }
        (ColumnVec::Date { vals, valid }, Slot::Date(c)) => {
            let c = *c;
            Some(cmp_tight(vals, valid, |v| cmp_holds(op, v.cmp(&c))))
        }
        _ => None,
    }
}

/// Column vs column for matching typed variants; validity is the
/// word-level AND of both bitmaps. Decimal pairs of unequal scale
/// rescale per lane: `proven_safe` programs run the raw multiplies,
/// unproven ones check and defer on overflow.
fn cmp_col_col(op: CmpOp, ca: &ColumnVec, cb: &ColumnVec, proven_safe: bool) -> Option<BoolVec> {
    fn zip<T: Copy, U: Copy>(
        op: CmpOp,
        a: &[T],
        b: &[U],
        va: &Bitmap,
        vb: &Bitmap,
        ord: impl Fn(T, U) -> std::cmp::Ordering,
    ) -> BoolVec {
        let mut out = BoolVec::with_len(a.len());
        for (o, (&x, &y)) in out.valid.iter_mut().zip(va.words().iter().zip(vb.words())) {
            *o = x & y;
        }
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            out.truth[i / 64] |= (cmp_holds(op, ord(x, y)) as u64) << (i % 64);
        }
        for (t, &w) in out.truth.iter_mut().zip(&out.valid) {
            *t &= w;
        }
        out
    }
    match (ca, cb) {
        (ColumnVec::Int64 { vals: a, valid: va }, ColumnVec::Int64 { vals: b, valid: vb }) => {
            Some(zip(op, a, b, va, vb, |x, y| x.cmp(&y)))
        }
        (ColumnVec::Date { vals: a, valid: va }, ColumnVec::Date { vals: b, valid: vb }) => {
            Some(zip(op, a, b, va, vb, |x, y| x.cmp(&y)))
        }
        (
            ColumnVec::Dec {
                raw: a,
                scale: sa,
                valid: va,
            },
            ColumnVec::Dec {
                raw: b,
                scale: sb,
                valid: vb,
            },
        ) => {
            let (pa, pb) = (pow10(sa.max(sb) - sa), pow10(sa.max(sb) - sb));
            if proven_safe || (pa == 1 && pb == 1) {
                return Some(zip(op, a, b, va, vb, |x, y| (x * pa).cmp(&(y * pb))));
            }
            let mut out = BoolVec::with_len(a.len());
            for (o, (&x, &y)) in out.valid.iter_mut().zip(va.words().iter().zip(vb.words())) {
                *o = x & y;
            }
            for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
                let (xs, ys) = (x.checked_mul(pa)?, y.checked_mul(pb)?);
                out.truth[i / 64] |= (cmp_holds(op, xs.cmp(&ys)) as u64) << (i % 64);
            }
            for (t, &w) in out.truth.iter_mut().zip(&out.valid) {
                *t &= w;
            }
            Some(out)
        }
        _ => None,
    }
}

fn arith_vec<'a>(op: ArithOp, ra: &VReg<'a>, rb: &VReg<'a>, len: usize) -> Result<VReg<'a>> {
    let a = lanes(ra, len)?;
    let b = lanes(rb, len)?;
    if a.is_splat() && b.is_splat() {
        return Ok(VReg::Splat(slot_arith(op, &a.at(0), &b.at(0))?));
    }
    let cells: Vec<Slot<'a>> = (0..len)
        .map(|i| slot_arith(op, &a.at(i), &b.at(i)))
        .collect::<Result<_>>()?;
    Ok(VReg::Cells(cells))
}

fn unary_cells<'a>(
    r: &VReg<'a>,
    len: usize,
    f: impl Fn(Slot<'a>) -> Result<Slot<'a>>,
) -> Result<VReg<'a>> {
    let a = lanes(r, len)?;
    if a.is_splat() {
        return Ok(VReg::Splat(f(a.at(0))?));
    }
    let cells: Vec<Slot<'a>> = (0..len).map(|i| f(a.at(i))).collect::<Result<_>>()?;
    Ok(VReg::Cells(cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::lower;
    use crate::eval::eval_pred;
    use crate::vm::{CompiledPredicate, TriBool};
    use taurus_common::{Date32, Value};
    use taurus_page::{encode_record, RecordMeta};

    fn dtypes() -> Vec<DataType> {
        vec![
            DataType::Int,
            DataType::Decimal {
                precision: 15,
                scale: 2,
            },
            DataType::Date,
            DataType::Char(10),
            DataType::Varchar(25),
        ]
    }

    fn layout() -> RecordLayout {
        RecordLayout::new(dtypes())
    }

    /// The scalar VM test corpus — byte-for-byte the shapes the vector
    /// path must agree on.
    fn predicates() -> Vec<Expr> {
        vec![
            Expr::and(vec![
                Expr::ge(Expr::col(2), Expr::date("1994-01-01")),
                Expr::lt(Expr::col(2), Expr::date("1995-01-01")),
                Expr::between(Expr::col(1), Expr::dec("0.05"), Expr::dec("0.07")),
                Expr::lt(Expr::col(0), Expr::int(25)),
            ]),
            Expr::or(vec![
                Expr::and(vec![
                    Expr::gt(Expr::col(0), Expr::int(1)),
                    Expr::gt(Expr::col(1), Expr::dec("0.02")),
                ]),
                Expr::ge(Expr::col(2), Expr::date("1995-01-01")),
            ]),
            Expr::like(Expr::col(4), "PROMO%"),
            Expr::not_like(Expr::col(4), "%BRASS"),
            Expr::in_list(Expr::col(3), vec![Value::str("MAIL"), Value::str("SHIP")]),
            Expr::eq(Expr::ExtractYear(Box::new(Expr::col(2))), Expr::int(1994)),
            Expr::IsNull {
                expr: Box::new(Expr::col(0)),
                negated: false,
            },
            Expr::gt(Expr::mul(Expr::col(1), Expr::int(100)), Expr::int(5)),
            Expr::eq(
                Expr::Substr {
                    expr: Box::new(Expr::col(4)),
                    from: 1,
                    len: 5,
                },
                Expr::str("PROMO"),
            ),
            Expr::not(Expr::lt(Expr::col(0), Expr::int(25))),
        ]
    }

    fn random_rows(n: usize, seed: u64) -> Vec<Vec<Value>> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let modes = ["MAIL", "SHIP", "AIR", "RAIL", "TRUCK"];
        let types = ["PROMO X", "SMALL Y", "STANDARD Z", "PROMO BRASS"];
        (0..n)
            .map(|_| {
                vec![
                    if rng.gen_bool(0.1) {
                        Value::Null
                    } else {
                        Value::Int(rng.gen_range(0..60))
                    },
                    Value::Decimal(Dec {
                        raw: rng.gen_range(0..11),
                        scale: 2,
                    }),
                    Value::Date(Date32(rng.gen_range(8766..10592))),
                    Value::str(modes[rng.gen_range(0..modes.len())]),
                    Value::str(types[rng.gen_range(0..types.len())]),
                ]
            })
            .collect()
    }

    fn batch_of(rows: &[Vec<Value>]) -> ColumnBatch {
        let mut cb = ColumnBatch::with_capacity(&dtypes(), rows.len().max(1));
        for r in rows {
            cb.push_row(r.iter().cloned());
        }
        cb
    }

    /// eval_batch == the interpreter on every row of every predicate.
    #[test]
    fn batch_eval_agrees_with_interpreter() {
        let rows = random_rows(257, 0xC0FFEE);
        let cb = batch_of(&rows);
        for (pi, p) in predicates().iter().enumerate() {
            let vp = VectorProgram::from_expr(p).unwrap();
            let bv = vp.eval_batch(&cb).unwrap();
            for (ri, row) in rows.iter().enumerate() {
                let expect = eval_pred(p, row).unwrap();
                assert_eq!(bv.get_lane(ri), expect, "predicate #{pi} row #{ri}: {p}");
                assert_eq!(bv.is_true(ri), expect == Some(true));
            }
        }
    }

    /// eval_records == the scalar VM over raw record bytes.
    #[test]
    fn record_eval_agrees_with_scalar_vm() {
        let l = layout();
        let rows = random_rows(64, 0xDB_CAFE);
        let encoded: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| {
                let mut b = Vec::new();
                encode_record(&l, r, RecordMeta::ordinary(1), None, &mut b).unwrap();
                b
            })
            .collect();
        let views: Vec<RecordView<'_>> = encoded.iter().map(|b| RecordView::new(b, &l)).collect();
        let col_map: Vec<u16> = (0..5).collect();
        for p in predicates() {
            let ir = lower(&p).unwrap();
            let scalar = CompiledPredicate::compile(&ir, &l, &col_map).unwrap();
            let vp = VectorProgram::from_ir(&ir, &l, &col_map).unwrap();
            let bv = vp.eval_records(&views).unwrap();
            let mut offsets = Vec::new();
            for (i, v) in views.iter().enumerate() {
                let expect = match scalar.eval_record(v, &mut offsets).unwrap() {
                    TriBool::True => Some(true),
                    TriBool::False => Some(false),
                    TriBool::Unknown => None,
                };
                assert_eq!(bv.get_lane(i), expect, "{p} row {i}");
            }
        }
    }

    /// Hand-built IR that doesn't match `lower`'s canonical shortcut shape
    /// must be rejected (callers then use the scalar path) — including the
    /// backward-jump program the scalar compiler also rejects.
    #[test]
    fn non_canonical_programs_are_rejected() {
        let backward = IrProgram {
            instrs: vec![
                IrInstr::LoadConst { dst: 0, idx: 0 },
                IrInstr::Jmp { target: 0 },
                IrInstr::Ret { src: 0 },
            ],
            consts: vec![Value::Int(1)],
            n_regs: 1,
        };
        assert!(VectorProgram::from_ir(&backward, &layout(), &[0, 1, 2, 3, 4]).is_err());
        // A branch straight to Ret: valid IR, but not the canonical
        // Mov/Jmp/LoadConst exit — rejected, not miscompiled.
        let to_ret = IrProgram {
            instrs: vec![
                IrInstr::LoadConst { dst: 0, idx: 0 },
                IrInstr::BrFalse { cond: 0, target: 2 },
                IrInstr::Ret { src: 0 },
            ],
            consts: vec![Value::Int(0)],
            n_regs: 1,
        };
        assert!(VectorProgram::from_ir(&to_ret, &layout(), &[0, 1, 2, 3, 4]).is_err());
    }

    /// Every compiler-emitted predicate in the corpus *is* vectorizable —
    /// the canonical-shape check accepts what `lower` produces.
    #[test]
    fn compiler_output_is_always_vectorizable() {
        for p in predicates() {
            assert!(VectorProgram::from_expr(&p).is_ok(), "{p}");
        }
    }

    /// Eager evaluation errors (lanes the scalar path would short-circuit
    /// past) fail the whole batch — the fallback contract.
    #[test]
    fn lane_error_fails_whole_batch() {
        // 10 / col0 > 1 with a zero present: scalar errors on that row
        // too, but here even one poisoned lane must fail all 3.
        let p = Expr::gt(Expr::div(Expr::int(10), Expr::col(0)), Expr::int(1));
        let rows = vec![
            vec![
                Value::Int(5),
                Value::Decimal(Dec::new(0, 2)),
                Value::Date(Date32(0)),
                Value::str("A"),
                Value::str("B"),
            ],
            vec![
                Value::Int(0),
                Value::Decimal(Dec::new(0, 2)),
                Value::Date(Date32(0)),
                Value::str("A"),
                Value::str("B"),
            ],
        ];
        let vp = VectorProgram::from_expr(&p).unwrap();
        assert!(vp.eval_batch(&batch_of(&rows)).is_err());
    }

    #[test]
    fn kleene_word_ops_match_truth_tables() {
        let vals = [Some(true), Some(false), None];
        let n = 9;
        let mut a = BoolVec::with_len(n);
        let mut b = BoolVec::with_len(n);
        for i in 0..n {
            a.set_lane(i, vals[i / 3]);
            b.set_lane(i, vals[i % 3]);
        }
        let and = a.and(&b);
        let or = a.or(&b);
        let not = a.not();
        for i in 0..n {
            let (x, y) = (vals[i / 3], vals[i % 3]);
            let want_and = match (x, y) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            };
            let want_or = match (x, y) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            };
            assert_eq!(and.get_lane(i), want_and, "AND lane {i}");
            assert_eq!(or.get_lane(i), want_or, "OR lane {i}");
            assert_eq!(not.get_lane(i), x.map(|v| !v), "NOT lane {i}");
        }
    }

    /// A decimal comparison whose per-lane rescale overflows `i128` must
    /// defer to the generic path and still agree with the interpreter —
    /// and a `proven_safe` program over safe lanes must produce the same
    /// bits as the default checked program.
    #[test]
    fn overflow_lanes_defer_and_proven_safe_agrees() {
        // col1 has scale 2; compare against a scale-30 constant so every
        // lane upscales by 10^28 — raws near i64::MAX then overflow i128.
        let huge = Expr::gt(Expr::col(1), Expr::Lit(Value::Decimal(Dec::new(1, 30))));
        let dt = dtypes();
        let mut cb = ColumnBatch::with_capacity(&dt, 2);
        cb.push_row(vec![
            Value::Int(1),
            Value::Decimal(Dec::new(i64::MAX as i128, 2)),
            Value::Date(Date32(0)),
            Value::str("A"),
            Value::str("B"),
        ]);
        cb.push_row(vec![
            Value::Int(1),
            Value::Decimal(Dec::new(-7, 2)),
            Value::Date(Date32(0)),
            Value::str("A"),
            Value::str("B"),
        ]);
        let vp = VectorProgram::from_expr(&huge).unwrap();
        assert!(!vp.is_proven_safe());
        let bv = vp.eval_batch(&cb).unwrap();
        // i64::MAX / 100 > 10^-30  → true; -0.07 > tiny positive → false.
        assert_eq!(bv.get_lane(0), Some(true));
        assert_eq!(bv.get_lane(1), Some(false));

        // Safe data: checked and proven-safe programs agree bit-for-bit.
        let p = Expr::gt(Expr::col(1), Expr::dec("0.0505"));
        let rows = random_rows(200, 0xAB);
        let cb = batch_of(&rows);
        let checked = VectorProgram::from_expr(&p).unwrap();
        let mut proven = VectorProgram::from_expr(&p).unwrap();
        proven.mark_proven_safe();
        assert!(proven.is_proven_safe());
        let a = checked.eval_batch(&cb).unwrap();
        let b = proven.eval_batch(&cb).unwrap();
        for i in 0..rows.len() {
            assert_eq!(a.get_lane(i), b.get_lane(i), "lane {i}");
        }
    }

    /// The verifier-facing views expose the same structure the evaluator
    /// runs: straight-line ops, the IR's registers, the loaded columns.
    #[test]
    fn ops_view_mirrors_program() {
        let p = Expr::and(vec![
            Expr::gt(Expr::col(0), Expr::int(1)),
            Expr::lt(Expr::col(2), Expr::date("1995-01-01")),
        ]);
        let vp = VectorProgram::from_expr(&p).unwrap();
        assert_eq!(vp.columns_used(), vec![0, 2]);
        assert!((vp.ret_reg() as usize) < vp.reg_count());
        let view = vp.ops_view();
        assert!(!view.is_empty());
        let loads: Vec<u16> = view
            .iter()
            .filter_map(|o| match o {
                VOpView::Load { col, .. } => Some(*col),
                _ => None,
            })
            .collect();
        assert_eq!(loads, vec![0, 2]);
        // Every register mentioned is in range.
        for o in &view {
            if let VOpView::Cmp { dst, a, b } = o {
                assert!((*dst as usize) < vp.reg_count());
                assert!((*a as usize) < vp.reg_count());
                assert!((*b as usize) < vp.reg_count());
            }
        }
    }

    #[test]
    fn true_indices_are_sorted_and_complete() {
        let mut b = BoolVec::with_len(200);
        let mut want = Vec::new();
        for i in (0..200).step_by(7) {
            b.set_lane(i, Some(true));
            want.push(i as u32);
        }
        b.set_lane(3, Some(false));
        assert_eq!(b.true_indices(), want);
        assert_eq!(b.count_true(), want.len());
    }
}
