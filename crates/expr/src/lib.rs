//! Expression engine: the compute-node interpreter and the Page Store
//! "LLVM" pipeline of the paper's §V-B.
//!
//! * [`ast`] — expression trees with the NDP allow-list check (§V-B1).
//! * [`eval`] — the classical tree-walking interpreter (the SQL executor's
//!   evaluation, and the semantic reference).
//! * [`compile`] — lowering to linear register IR with short-circuit
//!   branches (Listing 4's shape).
//! * [`ir`] — the IR itself plus its "bitcode" serialization that ships
//!   inside NDP descriptors.
//! * [`vm`] — the Page Store "JIT": IR × record layout → a program that
//!   runs over raw record bytes.
//! * [`vector`] — the column-at-a-time twin of [`vm`]: the same IR
//!   extracted to straight-line form and run over whole batches with
//!   word-level three-valued bitmaps (executor Filter + NDP page kernel).
//! * [`util`] — the pre-compiled utility-function library installed on
//!   every Page Store (§V-B2).
//! * [`agg`] — aggregate functions, partial states, payload serialization
//!   (§V-C).

pub mod agg;
pub mod ast;
pub mod compile;
pub mod descriptor;
pub mod eval;
pub mod ir;
pub mod util;
pub mod vector;
pub mod vm;

pub use agg::{decode_states, encode_states, AggFunc, AggSpec, AggState};
pub use ast::{ArithOp, CmpOp, Expr};
pub use compile::lower;
pub use descriptor::{fnv64, NdpAggSpec, NdpDescriptor};
pub use eval::{eval, eval_pred};
pub use ir::{IrInstr, IrProgram};
pub use vector::{BoolVec, VectorProgram};
pub use vm::{CompiledPredicate, TriBool};
