//! Lowering expression trees to IR — the compute-node half of the paper's
//! LLVM workflow (§V-B2, steps 1–2): the optimizer's chosen predicates are
//! "traversed bottom-up, and the IR code is emitted along the way", with
//! AND/OR short-circuiting compiled to conditional branches exactly like
//! Listing 4's `br i1 %cmp` pattern.

use taurus_common::{Error, Result, Value};

use crate::ast::{CmpOp, Expr};
use crate::ir::{IrInstr, IrProgram, Reg};

/// Maximum registers a single predicate program may use. Predicates are
/// small conjunction/disjunction trees; the cap bounds the Page Store's
/// per-record evaluation state.
pub const MAX_REGS: usize = 64;

struct Lowering {
    instrs: Vec<IrInstr>,
    consts: Vec<Value>,
    next_reg: u16,
}

impl Lowering {
    fn alloc(&mut self) -> Result<Reg> {
        if self.next_reg as usize >= MAX_REGS {
            return Err(Error::InvalidState(format!(
                "predicate needs more than {MAX_REGS} registers; not NDP-eligible"
            )));
        }
        let r = self.next_reg;
        self.next_reg += 1;
        Ok(r)
    }

    fn konst(&mut self, v: Value) -> u16 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn emit(&mut self, i: IrInstr) -> u16 {
        self.instrs.push(i);
        (self.instrs.len() - 1) as u16
    }

    fn here(&self) -> u16 {
        self.instrs.len() as u16
    }

    fn patch_target(&mut self, at: u16, target: u16) {
        match &mut self.instrs[at as usize] {
            IrInstr::BrFalse { target: t, .. }
            | IrInstr::BrTrue { target: t, .. }
            | IrInstr::Jmp { target: t } => *t = target,
            other => panic!("patching non-branch {other:?}"),
        }
    }

    fn lower(&mut self, e: &Expr) -> Result<Reg> {
        Ok(match e {
            Expr::Col(i) => {
                let dst = self.alloc()?;
                let col = u16::try_from(*i)
                    .map_err(|_| Error::Internal("column index overflow".into()))?;
                self.emit(IrInstr::LoadCol { dst, col });
                dst
            }
            Expr::Lit(v) => {
                let idx = self.konst(v.clone());
                let dst = self.alloc()?;
                self.emit(IrInstr::LoadConst { dst, idx });
                dst
            }
            Expr::Cmp(op, a, b) => {
                let ra = self.lower(a)?;
                let rb = self.lower(b)?;
                let dst = self.alloc()?;
                self.emit(IrInstr::Cmp {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                dst
            }
            Expr::And(xs) => self.lower_junction(xs, true)?,
            Expr::Or(xs) => self.lower_junction(xs, false)?,
            Expr::Not(a) => {
                let ra = self.lower(a)?;
                let dst = self.alloc()?;
                self.emit(IrInstr::Not { dst, a: ra });
                dst
            }
            Expr::Arith(op, a, b) => {
                let ra = self.lower(a)?;
                let rb = self.lower(b)?;
                let dst = self.alloc()?;
                self.emit(IrInstr::Arith {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                dst
            }
            Expr::Neg(a) => {
                let ra = self.lower(a)?;
                let dst = self.alloc()?;
                self.emit(IrInstr::Neg { dst, a: ra });
                dst
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let ra = self.lower(expr)?;
                let p = self.konst(Value::str(pattern));
                let dst = self.alloc()?;
                self.emit(IrInstr::Like {
                    dst,
                    a: ra,
                    pattern: p,
                    negated: *negated,
                });
                dst
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                if list.is_empty() {
                    return Err(Error::InvalidState("empty IN list".into()));
                }
                let ra = self.lower(expr)?;
                // IN consts must be contiguous: append unconditionally.
                let first = self.consts.len() as u16;
                for v in list {
                    self.consts.push(v.clone());
                }
                let dst = self.alloc()?;
                self.emit(IrInstr::InList {
                    dst,
                    a: ra,
                    first,
                    count: list.len() as u16,
                    negated: *negated,
                });
                dst
            }
            Expr::Between { expr, lo, hi } => {
                // v >= lo AND v <= hi with v evaluated exactly once.
                let rv = self.lower(expr)?;
                let rlo = self.lower(lo)?;
                let rhi = self.lower(hi)?;
                let c1 = self.alloc()?;
                self.emit(IrInstr::Cmp {
                    op: CmpOp::Ge,
                    dst: c1,
                    a: rv,
                    b: rlo,
                });
                let c2 = self.alloc()?;
                self.emit(IrInstr::Cmp {
                    op: CmpOp::Le,
                    dst: c2,
                    a: rv,
                    b: rhi,
                });
                let dst = self.alloc()?;
                self.emit(IrInstr::And { dst, a: c1, b: c2 });
                dst
            }
            Expr::IsNull { expr, negated } => {
                let ra = self.lower(expr)?;
                let dst = self.alloc()?;
                self.emit(IrInstr::IsNull {
                    dst,
                    a: ra,
                    negated: *negated,
                });
                dst
            }
            Expr::ExtractYear(a) => {
                let ra = self.lower(a)?;
                let dst = self.alloc()?;
                self.emit(IrInstr::ExtractYear { dst, a: ra });
                dst
            }
            Expr::Substr { expr, from, len } => {
                let ra = self.lower(expr)?;
                let dst = self.alloc()?;
                self.emit(IrInstr::Substr {
                    dst,
                    a: ra,
                    from: *from as u16,
                    len: *len as u16,
                });
                dst
            }
            Expr::Case { .. } => {
                // Not on the NDP allow-list (§V-B1): the optimizer keeps
                // CASE as a residual; reaching here is a planner bug.
                return Err(Error::InvalidState("CASE is not NDP-pushable".into()));
            }
        })
    }

    /// Short-circuiting AND (`all=true`) / OR (`all=false`) over the parts.
    ///
    /// Emits, per part, a conditional branch to the short-circuit exit —
    /// the analogue of Listing 4's `b_and_cont`/`b_or_cont` blocks — then a
    /// three-valued merge for the fall-through path (NULLs cannot take the
    /// shortcut).
    fn lower_junction(&mut self, xs: &[Expr], all: bool) -> Result<Reg> {
        assert!(xs.len() >= 2, "Expr::and/or normalize single elements");
        let dst = self.alloc()?;
        let mut shortcut_brs = Vec::with_capacity(xs.len());
        let mut part_regs = Vec::with_capacity(xs.len());
        for x in xs {
            let r = self.lower(x)?;
            let br = if all {
                self.emit(IrInstr::BrFalse { cond: r, target: 0 })
            } else {
                self.emit(IrInstr::BrTrue { cond: r, target: 0 })
            };
            shortcut_brs.push(br);
            part_regs.push(r);
        }
        // Fall-through: merge NULL-aware.
        let mut acc = part_regs[0];
        for &r in &part_regs[1..] {
            let m = self.alloc()?;
            if all {
                self.emit(IrInstr::And {
                    dst: m,
                    a: acc,
                    b: r,
                });
            } else {
                self.emit(IrInstr::Or {
                    dst: m,
                    a: acc,
                    b: r,
                });
            }
            acc = m;
        }
        self.emit(IrInstr::Mov { dst, src: acc });
        let jmp_end = self.emit(IrInstr::Jmp { target: 0 });
        // Short-circuit exit: definite FALSE (AND) / TRUE (OR).
        let sc = self.here();
        let idx = self.konst(Value::Int(if all { 0 } else { 1 }));
        self.emit(IrInstr::LoadConst { dst, idx });
        let end = self.here();
        for br in shortcut_brs {
            self.patch_target(br, sc);
        }
        self.patch_target(jmp_end, end);
        Ok(dst)
    }
}

/// Lower a predicate (or scalar expression) into a validated [`IrProgram`].
pub fn lower(expr: &Expr) -> Result<IrProgram> {
    let mut l = Lowering {
        instrs: Vec::new(),
        consts: Vec::new(),
        next_reg: 0,
    };
    let result = l.lower(expr)?;
    l.emit(IrInstr::Ret { src: result });
    let prog = IrProgram {
        instrs: l.instrs,
        consts: l.consts,
        n_regs: l.next_reg,
    };
    prog.validate()?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_4_shape_has_shortcut_branches() {
        // (a > 1 AND b > 2) OR c >= 3 — the paper's running example.
        let e = Expr::or(vec![
            Expr::and(vec![
                Expr::gt(Expr::col(0), Expr::int(1)),
                Expr::gt(Expr::col(1), Expr::int(2)),
            ]),
            Expr::ge(Expr::col(2), Expr::int(3)),
        ]);
        let p = lower(&e).unwrap();
        let brs = p
            .instrs
            .iter()
            .filter(|i| matches!(i, IrInstr::BrFalse { .. } | IrInstr::BrTrue { .. }))
            .count();
        assert!(
            brs >= 3,
            "expected short-circuit branches, got {:?}",
            p.instrs
        );
        assert!(matches!(p.instrs.last(), Some(IrInstr::Ret { .. })));
        p.validate().unwrap();
    }

    #[test]
    fn consts_are_deduplicated() {
        let e = Expr::and(vec![
            Expr::gt(Expr::col(0), Expr::int(10)),
            Expr::lt(Expr::col(1), Expr::int(10)),
        ]);
        let p = lower(&e).unwrap();
        let tens = p.consts.iter().filter(|c| **c == Value::Int(10)).count();
        assert_eq!(tens, 1);
    }

    #[test]
    fn between_evaluates_operand_once() {
        let e = Expr::between(Expr::col(0), Expr::dec("0.05"), Expr::dec("0.07"));
        let p = lower(&e).unwrap();
        let loads = p
            .instrs
            .iter()
            .filter(|i| matches!(i, IrInstr::LoadCol { col: 0, .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn case_is_rejected() {
        let e = Expr::Case {
            branches: vec![(Expr::eq(Expr::col(0), Expr::int(1)), Expr::int(1))],
            else_: Box::new(Expr::int(0)),
        };
        assert!(lower(&e).is_err());
    }

    #[test]
    fn register_budget_enforced() {
        // A pathological 100-way conjunction must be rejected, not miscompiled.
        let parts: Vec<Expr> = (0..100)
            .map(|i| Expr::gt(Expr::col(0), Expr::int(i)))
            .collect();
        assert!(lower(&Expr::and(parts)).is_err());
    }

    #[test]
    fn branches_are_forward_only() {
        let e = Expr::or(vec![
            Expr::and(vec![
                Expr::gt(Expr::col(0), Expr::int(1)),
                Expr::like(Expr::col(3), "PROMO%"),
            ]),
            Expr::in_list(Expr::col(2), vec![Value::str("MAIL"), Value::str("SHIP")]),
        ]);
        let p = lower(&e).unwrap();
        for (i, ins) in p.instrs.iter().enumerate() {
            if let IrInstr::BrFalse { target, .. }
            | IrInstr::BrTrue { target, .. }
            | IrInstr::Jmp { target } = ins
            {
                assert!(*target as usize > i, "backward branch at {i}: {ins:?}");
            }
        }
    }
}
