//! The linear register IR — this reproduction's "LLVM bitcode" (§V-B2).
//!
//! Predicates are lowered (on the compute node) into a branch-capable,
//! register-based program mirroring the paper's Listing 4: comparisons
//! write boolean registers, `BrFalse`/`BrTrue` implement AND/OR
//! short-circuiting, and complex operations call into the pre-compiled
//! utility library ([`crate::util`]). The program serializes to a compact
//! byte string that travels inside the NDP descriptor and is decoded and
//! "JIT-compiled" ([`crate::vm`]) on the Page Store.

use taurus_common::{Date32, Dec, Error, Result, Value};

use crate::ast::{ArithOp, CmpOp};

pub type Reg = u16;

/// One IR instruction. `col` operands are *table column indexes*; the Page
/// Store resolves them to physical record positions at JIT time using the
/// descriptor's column map.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum IrInstr {
    LoadCol {
        dst: Reg,
        col: u16,
    },
    LoadConst {
        dst: Reg,
        idx: u16,
    },
    Mov {
        dst: Reg,
        src: Reg,
    },
    Cmp {
        op: CmpOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Three-valued AND/OR merge of two already-evaluated booleans.
    And {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Or {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Not {
        dst: Reg,
        a: Reg,
    },
    Arith {
        op: ArithOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Neg {
        dst: Reg,
        a: Reg,
    },
    IsNull {
        dst: Reg,
        a: Reg,
        negated: bool,
    },
    /// LIKE via the utility library; `pattern` is a const-pool index.
    Like {
        dst: Reg,
        a: Reg,
        pattern: u16,
        negated: bool,
    },
    /// IN over consts `[first, first+count)`.
    InList {
        dst: Reg,
        a: Reg,
        first: u16,
        count: u16,
        negated: bool,
    },
    ExtractYear {
        dst: Reg,
        a: Reg,
    },
    Substr {
        dst: Reg,
        a: Reg,
        from: u16,
        len: u16,
    },
    /// Jump if `cond` is definitely FALSE (NULL falls through — the 3VL
    /// refinement of Listing 4's `br i1` shortcut).
    BrFalse {
        cond: Reg,
        target: u16,
    },
    /// Jump if `cond` is definitely TRUE.
    BrTrue {
        cond: Reg,
        target: u16,
    },
    Jmp {
        target: u16,
    },
    Ret {
        src: Reg,
    },
}

/// A complete predicate program plus its constant pool.
#[derive(Clone, Debug, PartialEq)]
pub struct IrProgram {
    pub instrs: Vec<IrInstr>,
    pub consts: Vec<Value>,
    pub n_regs: u16,
}

impl IrProgram {
    /// Table columns the program loads (sorted, deduplicated).
    pub fn columns_used(&self) -> Vec<u16> {
        let mut cols: Vec<u16> = self
            .instrs
            .iter()
            .filter_map(|i| match i {
                IrInstr::LoadCol { col, .. } => Some(*col),
                _ => None,
            })
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }
}

// --- value (de)serialization — shared with aggregate-state payloads -------

/// Append a tagged binary encoding of `v`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Int(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Decimal(d) => {
            out.push(2);
            out.extend_from_slice(&d.raw.to_le_bytes());
            out.push(d.scale);
        }
        Value::Date(d) => {
            out.push(3);
            out.extend_from_slice(&d.0.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            out.extend_from_slice(&(s.len() as u16).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Double(x) => {
            out.push(5);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Decode a value written by [`encode_value`], advancing `at`.
pub fn decode_value(buf: &[u8], at: &mut usize) -> Result<Value> {
    let err = || Error::Corruption("truncated value encoding".into());
    let tag = *buf.get(*at).ok_or_else(err)?;
    *at += 1;
    let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
        let s = buf.get(*at..*at + n).ok_or_else(err)?;
        *at += n;
        Ok(s)
    };
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Int(i64::from_le_bytes(take(at, 8)?.try_into().unwrap())),
        2 => {
            let raw = i128::from_le_bytes(take(at, 16)?.try_into().unwrap());
            let scale = take(at, 1)?[0];
            Value::Decimal(Dec { raw, scale })
        }
        3 => Value::Date(Date32(i32::from_le_bytes(take(at, 4)?.try_into().unwrap()))),
        4 => {
            let len = u16::from_le_bytes(take(at, 2)?.try_into().unwrap()) as usize;
            let bytes = take(at, len)?;
            Value::Str(std::str::from_utf8(bytes).map_err(|_| err())?.into())
        }
        5 => Value::Double(f64::from_bits(u64::from_le_bytes(
            take(at, 8)?.try_into().unwrap(),
        ))),
        other => return Err(Error::Corruption(format!("bad value tag {other}"))),
    })
}

// --- bitcode (de)serialization ---------------------------------------------

const MAGIC: &[u8; 4] = b"NDP1";

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u16(buf: &[u8], at: &mut usize) -> Result<u16> {
    let s = buf
        .get(*at..*at + 2)
        .ok_or_else(|| Error::Corruption("truncated bitcode".into()))?;
    *at += 2;
    Ok(u16::from_le_bytes(s.try_into().unwrap()))
}

impl IrProgram {
    /// Serialize to the descriptor's bitcode byte string.
    pub fn encode_bitcode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.instrs.len() * 8);
        out.extend_from_slice(MAGIC);
        push_u16(&mut out, self.n_regs);
        push_u16(&mut out, self.consts.len() as u16);
        for c in &self.consts {
            encode_value(c, &mut out);
        }
        push_u16(&mut out, self.instrs.len() as u16);
        for ins in &self.instrs {
            encode_instr(ins, &mut out);
        }
        out
    }

    /// Decode bitcode received inside an NDP descriptor.
    pub fn decode_bitcode(buf: &[u8]) -> Result<IrProgram> {
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(Error::Corruption("bad bitcode magic".into()));
        }
        let mut at = 4usize;
        let n_regs = read_u16(buf, &mut at)?;
        let n_consts = read_u16(buf, &mut at)? as usize;
        let mut consts = Vec::with_capacity(n_consts);
        for _ in 0..n_consts {
            consts.push(decode_value(buf, &mut at)?);
        }
        let n_instrs = read_u16(buf, &mut at)? as usize;
        let mut instrs = Vec::with_capacity(n_instrs);
        for _ in 0..n_instrs {
            instrs.push(decode_instr(buf, &mut at)?);
        }
        let prog = IrProgram {
            instrs,
            consts,
            n_regs,
        };
        prog.validate()?;
        Ok(prog)
    }

    /// Structural validation: register / const / branch-target bounds.
    /// Run on the Page Store before JIT — descriptors cross a trust
    /// boundary in the real system.
    pub fn validate(&self) -> Result<()> {
        let nr = self.n_regs;
        let nc = self.consts.len() as u16;
        let ni = self.instrs.len() as u16;
        let reg = |r: Reg| -> Result<()> {
            if r >= nr {
                return Err(Error::Corruption(format!("register r{r} out of range")));
            }
            Ok(())
        };
        let cst = |i: u16| -> Result<()> {
            if i >= nc {
                return Err(Error::Corruption(format!("const {i} out of range")));
            }
            Ok(())
        };
        let tgt = |t: u16| -> Result<()> {
            if t > ni {
                return Err(Error::Corruption(format!("branch target {t} out of range")));
            }
            Ok(())
        };
        for ins in &self.instrs {
            match *ins {
                IrInstr::LoadCol { dst, .. } => reg(dst)?,
                IrInstr::LoadConst { dst, idx } => {
                    reg(dst)?;
                    cst(idx)?;
                }
                IrInstr::Mov { dst, src } => {
                    reg(dst)?;
                    reg(src)?;
                }
                IrInstr::Cmp { dst, a, b, .. }
                | IrInstr::And { dst, a, b }
                | IrInstr::Or { dst, a, b }
                | IrInstr::Arith { dst, a, b, .. } => {
                    reg(dst)?;
                    reg(a)?;
                    reg(b)?;
                }
                IrInstr::Not { dst, a }
                | IrInstr::Neg { dst, a }
                | IrInstr::IsNull { dst, a, .. }
                | IrInstr::ExtractYear { dst, a }
                | IrInstr::Substr { dst, a, .. } => {
                    reg(dst)?;
                    reg(a)?;
                }
                IrInstr::Like {
                    dst, a, pattern, ..
                } => {
                    reg(dst)?;
                    reg(a)?;
                    cst(pattern)?;
                }
                IrInstr::InList {
                    dst,
                    a,
                    first,
                    count,
                    ..
                } => {
                    reg(dst)?;
                    reg(a)?;
                    if count == 0 || first as u32 + count as u32 > nc as u32 {
                        return Err(Error::Corruption("IN list out of const range".into()));
                    }
                }
                IrInstr::BrFalse { cond, target } | IrInstr::BrTrue { cond, target } => {
                    reg(cond)?;
                    tgt(target)?;
                }
                IrInstr::Jmp { target } => tgt(target)?,
                IrInstr::Ret { src } => reg(src)?,
            }
        }
        match self.instrs.last() {
            Some(IrInstr::Ret { .. }) => Ok(()),
            _ => Err(Error::Corruption("program must end with Ret".into())),
        }
    }
}

fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from(code: u8) -> Result<CmpOp> {
    Ok(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return Err(Error::Corruption(format!("bad cmp code {other}"))),
    })
}

fn arith_code(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
    }
}

fn arith_from(code: u8) -> Result<ArithOp> {
    Ok(match code {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        3 => ArithOp::Div,
        other => return Err(Error::Corruption(format!("bad arith code {other}"))),
    })
}

fn encode_instr(ins: &IrInstr, out: &mut Vec<u8>) {
    match *ins {
        IrInstr::LoadCol { dst, col } => {
            out.push(0);
            push_u16(out, dst);
            push_u16(out, col);
        }
        IrInstr::LoadConst { dst, idx } => {
            out.push(1);
            push_u16(out, dst);
            push_u16(out, idx);
        }
        IrInstr::Mov { dst, src } => {
            out.push(2);
            push_u16(out, dst);
            push_u16(out, src);
        }
        IrInstr::Cmp { op, dst, a, b } => {
            out.push(3);
            out.push(cmp_code(op));
            push_u16(out, dst);
            push_u16(out, a);
            push_u16(out, b);
        }
        IrInstr::And { dst, a, b } => {
            out.push(4);
            push_u16(out, dst);
            push_u16(out, a);
            push_u16(out, b);
        }
        IrInstr::Or { dst, a, b } => {
            out.push(5);
            push_u16(out, dst);
            push_u16(out, a);
            push_u16(out, b);
        }
        IrInstr::Not { dst, a } => {
            out.push(6);
            push_u16(out, dst);
            push_u16(out, a);
        }
        IrInstr::Arith { op, dst, a, b } => {
            out.push(7);
            out.push(arith_code(op));
            push_u16(out, dst);
            push_u16(out, a);
            push_u16(out, b);
        }
        IrInstr::Neg { dst, a } => {
            out.push(8);
            push_u16(out, dst);
            push_u16(out, a);
        }
        IrInstr::IsNull { dst, a, negated } => {
            out.push(9);
            out.push(negated as u8);
            push_u16(out, dst);
            push_u16(out, a);
        }
        IrInstr::Like {
            dst,
            a,
            pattern,
            negated,
        } => {
            out.push(10);
            out.push(negated as u8);
            push_u16(out, dst);
            push_u16(out, a);
            push_u16(out, pattern);
        }
        IrInstr::InList {
            dst,
            a,
            first,
            count,
            negated,
        } => {
            out.push(11);
            out.push(negated as u8);
            push_u16(out, dst);
            push_u16(out, a);
            push_u16(out, first);
            push_u16(out, count);
        }
        IrInstr::ExtractYear { dst, a } => {
            out.push(12);
            push_u16(out, dst);
            push_u16(out, a);
        }
        IrInstr::Substr { dst, a, from, len } => {
            out.push(13);
            push_u16(out, dst);
            push_u16(out, a);
            push_u16(out, from);
            push_u16(out, len);
        }
        IrInstr::BrFalse { cond, target } => {
            out.push(14);
            push_u16(out, cond);
            push_u16(out, target);
        }
        IrInstr::BrTrue { cond, target } => {
            out.push(15);
            push_u16(out, cond);
            push_u16(out, target);
        }
        IrInstr::Jmp { target } => {
            out.push(16);
            push_u16(out, target);
        }
        IrInstr::Ret { src } => {
            out.push(17);
            push_u16(out, src);
        }
    }
}

fn decode_instr(buf: &[u8], at: &mut usize) -> Result<IrInstr> {
    let err = || Error::Corruption("truncated bitcode instr".into());
    let op = *buf.get(*at).ok_or_else(err)?;
    *at += 1;
    let mut flag = 0u8;
    if matches!(op, 3 | 7 | 9 | 10 | 11) {
        flag = *buf.get(*at).ok_or_else(err)?;
        *at += 1;
    }
    Ok(match op {
        0 => IrInstr::LoadCol {
            dst: read_u16(buf, at)?,
            col: read_u16(buf, at)?,
        },
        1 => IrInstr::LoadConst {
            dst: read_u16(buf, at)?,
            idx: read_u16(buf, at)?,
        },
        2 => IrInstr::Mov {
            dst: read_u16(buf, at)?,
            src: read_u16(buf, at)?,
        },
        3 => IrInstr::Cmp {
            op: cmp_from(flag)?,
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
            b: read_u16(buf, at)?,
        },
        4 => IrInstr::And {
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
            b: read_u16(buf, at)?,
        },
        5 => IrInstr::Or {
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
            b: read_u16(buf, at)?,
        },
        6 => IrInstr::Not {
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
        },
        7 => IrInstr::Arith {
            op: arith_from(flag)?,
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
            b: read_u16(buf, at)?,
        },
        8 => IrInstr::Neg {
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
        },
        9 => IrInstr::IsNull {
            negated: flag != 0,
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
        },
        10 => IrInstr::Like {
            negated: flag != 0,
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
            pattern: read_u16(buf, at)?,
        },
        11 => IrInstr::InList {
            negated: flag != 0,
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
            first: read_u16(buf, at)?,
            count: read_u16(buf, at)?,
        },
        12 => IrInstr::ExtractYear {
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
        },
        13 => IrInstr::Substr {
            dst: read_u16(buf, at)?,
            a: read_u16(buf, at)?,
            from: read_u16(buf, at)?,
            len: read_u16(buf, at)?,
        },
        14 => IrInstr::BrFalse {
            cond: read_u16(buf, at)?,
            target: read_u16(buf, at)?,
        },
        15 => IrInstr::BrTrue {
            cond: read_u16(buf, at)?,
            target: read_u16(buf, at)?,
        },
        16 => IrInstr::Jmp {
            target: read_u16(buf, at)?,
        },
        17 => IrInstr::Ret {
            src: read_u16(buf, at)?,
        },
        other => return Err(Error::Corruption(format!("bad opcode {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> IrProgram {
        // col0 > 1 ? (short-circuit) col1 >= 2 : ret false  — Listing 4 shape.
        IrProgram {
            instrs: vec![
                IrInstr::LoadCol { dst: 0, col: 0 },
                IrInstr::LoadConst { dst: 1, idx: 0 },
                IrInstr::Cmp {
                    op: CmpOp::Gt,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
                IrInstr::BrFalse { cond: 2, target: 7 },
                IrInstr::LoadCol { dst: 3, col: 1 },
                IrInstr::LoadConst { dst: 4, idx: 1 },
                IrInstr::Cmp {
                    op: CmpOp::Ge,
                    dst: 5,
                    a: 3,
                    b: 4,
                },
                IrInstr::Ret { src: 5 },
            ],
            consts: vec![Value::Int(1), Value::Int(2)],
            n_regs: 6,
        }
    }

    #[test]
    fn bitcode_roundtrip() {
        let p = sample_program();
        let bytes = p.encode_bitcode();
        let back = IrProgram::decode_bitcode(&bytes).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn value_encoding_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Int(-7),
            Value::Decimal(Dec::parse("123.45").unwrap()),
            Value::Date(Date32::parse("1994-01-01").unwrap()),
            Value::str("FOB"),
            Value::Double(2.5),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            encode_value(v, &mut buf);
        }
        let mut at = 0;
        for v in &vals {
            assert_eq!(&decode_value(&buf, &mut at).unwrap(), v);
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn validate_rejects_bad_programs() {
        let mut p = sample_program();
        p.instrs[0] = IrInstr::LoadCol { dst: 99, col: 0 };
        assert!(p.validate().is_err());

        let mut p = sample_program();
        p.instrs[1] = IrInstr::LoadConst { dst: 1, idx: 9 };
        assert!(p.validate().is_err());

        let mut p = sample_program();
        p.instrs[3] = IrInstr::BrFalse {
            cond: 2,
            target: 200,
        };
        assert!(p.validate().is_err());

        let mut p = sample_program();
        p.instrs.pop(); // no Ret
        assert!(p.validate().is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(IrProgram::decode_bitcode(b"XXXX").is_err());
        assert!(IrProgram::decode_bitcode(b"NDP1").is_err());
        let mut bytes = sample_program().encode_bitcode();
        bytes.truncate(bytes.len() - 3);
        assert!(IrProgram::decode_bitcode(&bytes).is_err());
    }

    #[test]
    fn columns_used_deduplicates() {
        let p = sample_program();
        assert_eq!(p.columns_used(), vec![0, 1]);
    }
}
