//! Aggregation functions and partial-aggregation state (§V-C).
//!
//! NDP aggregation is *partial*: Page Stores fold visible rows into an
//! [`AggState`] attached to the group's last surviving record (the paper's
//! `((5,2), 9)` example), and the compute node merges partials — including
//! across PQ workers, where "AVG is computed by keeping SUM and COUNT
//! values per thread" (§III). AVG therefore never ships as a state of its
//! own: the planner decomposes it into SUM + COUNT and divides at finalize.
//! States serialize into the aggregate-record payload using the same value
//! encoding as the descriptor bitcode.

use taurus_common::{DataType, Dec, Error, Result, Value};

use crate::ir::{decode_value, encode_value};

/// Aggregate functions a descriptor can request. (AVG is decomposed by the
/// optimizer before it reaches a descriptor.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum AggFunc {
    /// COUNT(*) — counts rows, NULLs included.
    CountStar = 0,
    /// COUNT(col) — counts non-NULL inputs.
    Count = 1,
    Sum = 2,
    Min = 3,
    Max = 4,
}

impl AggFunc {
    pub fn from_u8(v: u8) -> Result<AggFunc> {
        Ok(match v {
            0 => AggFunc::CountStar,
            1 => AggFunc::Count,
            2 => AggFunc::Sum,
            3 => AggFunc::Min,
            4 => AggFunc::Max,
            other => return Err(Error::Corruption(format!("bad agg func {other}"))),
        })
    }

    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate requested over a table access: the function and its input
/// column (a *table* column index; `None` only for COUNT(*)).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AggSpec {
    pub func: AggFunc,
    pub col: Option<u16>,
}

impl AggSpec {
    pub fn count_star() -> AggSpec {
        AggSpec {
            func: AggFunc::CountStar,
            col: None,
        }
    }

    pub fn sum(col: u16) -> AggSpec {
        AggSpec {
            func: AggFunc::Sum,
            col: Some(col),
        }
    }

    pub fn min(col: u16) -> AggSpec {
        AggSpec {
            func: AggFunc::Min,
            col: Some(col),
        }
    }

    pub fn max(col: u16) -> AggSpec {
        AggSpec {
            func: AggFunc::Max,
            col: Some(col),
        }
    }

    pub fn count(col: u16) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            col: Some(col),
        }
    }

    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.func as u8);
        match self.col {
            Some(c) => out.extend_from_slice(&c.to_le_bytes()),
            None => out.extend_from_slice(&u16::MAX.to_le_bytes()),
        }
    }

    pub fn decode(buf: &[u8], at: &mut usize) -> Result<AggSpec> {
        let err = || Error::Corruption("truncated agg spec".into());
        let func = AggFunc::from_u8(*buf.get(*at).ok_or_else(err)?)?;
        *at += 1;
        let raw = u16::from_le_bytes(buf.get(*at..*at + 2).ok_or_else(err)?.try_into().unwrap());
        *at += 2;
        let col = if raw == u16::MAX { None } else { Some(raw) };
        if col.is_none() && func != AggFunc::CountStar {
            return Err(Error::Corruption(
                "non-COUNT(*) aggregate without column".into(),
            ));
        }
        Ok(AggSpec { func, col })
    }
}

/// Running state of one aggregate. Sums over integers and decimals share a
/// scaled-i128 representation so partial aggregation can never produce a
/// different result than compute-side aggregation (§V-B2's bit-match rule).
#[derive(Clone, Debug, PartialEq)]
pub enum AggState {
    Count(i64),
    SumDec { raw: i128, scale: u8, seen: bool },
    SumF64 { sum: f64, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    /// Fresh state for `spec` over an input column of type `dtype`
    /// (`None` for COUNT(*)).
    pub fn new(spec: &AggSpec, dtype: Option<DataType>) -> AggState {
        match spec.func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match dtype {
                Some(DataType::Double) => AggState::SumF64 {
                    sum: 0.0,
                    seen: false,
                },
                Some(DataType::Decimal { scale, .. }) => AggState::SumDec {
                    raw: 0,
                    scale,
                    seen: false,
                },
                _ => AggState::SumDec {
                    raw: 0,
                    scale: 0,
                    seen: false,
                },
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    /// Fold one input value in. For COUNT(*) callers pass `Value::Int(1)`.
    pub fn update(&mut self, v: &Value) {
        match self {
            AggState::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::SumDec { raw, scale, seen } => {
                if let Ok(d) = v.as_dec() {
                    // Adopt a finer scale on first contact (generic
                    // executor aggregates start at scale 0).
                    if d.scale > *scale {
                        *raw = Dec {
                            raw: *raw,
                            scale: *scale,
                        }
                        .rescale(d.scale)
                        .raw;
                        *scale = d.scale;
                    }
                    *raw += d.rescale(*scale).raw;
                    *seen = true;
                }
            }
            AggState::SumF64 { sum, seen } => {
                if let Ok(x) = v.as_f64() {
                    *sum += x;
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                if !v.is_null()
                    && cur
                        .as_ref()
                        .map(|c| v.cmp_sql(c) == Some(std::cmp::Ordering::Less))
                        .unwrap_or(true)
                {
                    *cur = Some(v.clone());
                }
            }
            AggState::Max(cur) => {
                if !v.is_null()
                    && cur
                        .as_ref()
                        .map(|c| v.cmp_sql(c) == Some(std::cmp::Ordering::Greater))
                        .unwrap_or(true)
                {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    /// Merge another partial state (Page Store partial, PQ worker partial).
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::SumDec {
                    raw: a,
                    scale: sa,
                    seen: za,
                },
                AggState::SumDec {
                    raw: b,
                    scale: sb,
                    seen: zb,
                },
            ) => {
                // Align scales (PQ workers may have seen different inputs).
                if *sb > *sa {
                    *a = Dec {
                        raw: *a,
                        scale: *sa,
                    }
                    .rescale(*sb)
                    .raw;
                    *sa = *sb;
                }
                let b_aligned = Dec {
                    raw: *b,
                    scale: *sb,
                }
                .rescale(*sa)
                .raw;
                *a += b_aligned;
                *za |= zb;
            }
            (AggState::SumF64 { sum: a, seen: za }, AggState::SumF64 { sum: b, seen: zb }) => {
                *a += b;
                *za |= zb;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .map(|c| v.cmp_sql(c) == Some(std::cmp::Ordering::Less))
                        .unwrap_or(true)
                    {
                        *a = Some(v.clone());
                    }
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(v) = b {
                    if a.as_ref()
                        .map(|c| v.cmp_sql(c) == Some(std::cmp::Ordering::Greater))
                        .unwrap_or(true)
                    {
                        *a = Some(v.clone());
                    }
                }
            }
            (a, b) => {
                return Err(Error::Internal(format!(
                    "merging mismatched aggregate states {a:?} vs {b:?}"
                )))
            }
        }
        Ok(())
    }

    /// Final SQL value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(*n),
            AggState::SumDec { raw, scale, seen } => {
                if *seen {
                    if *scale == 0 && i64::try_from(*raw).is_ok() {
                        Value::Int(*raw as i64)
                    } else {
                        Value::Decimal(Dec {
                            raw: *raw,
                            scale: *scale,
                        })
                    }
                } else {
                    Value::Null
                }
            }
            AggState::SumF64 { sum, seen } => {
                if *seen {
                    Value::Double(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }

    // --- payload serialization (aggregate-record suffix) -------------------

    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AggState::Count(n) => {
                out.push(0);
                out.extend_from_slice(&n.to_le_bytes());
            }
            AggState::SumDec { raw, scale, seen } => {
                out.push(1);
                out.extend_from_slice(&raw.to_le_bytes());
                out.push(*scale);
                out.push(*seen as u8);
            }
            AggState::SumF64 { sum, seen } => {
                out.push(2);
                out.extend_from_slice(&sum.to_bits().to_le_bytes());
                out.push(*seen as u8);
            }
            AggState::Min(v) => {
                out.push(3);
                encode_value(&v.clone().unwrap_or(Value::Null), out);
            }
            AggState::Max(v) => {
                out.push(4);
                encode_value(&v.clone().unwrap_or(Value::Null), out);
            }
        }
    }

    pub fn decode(buf: &[u8], at: &mut usize) -> Result<AggState> {
        let err = || Error::Corruption("truncated agg state".into());
        let tag = *buf.get(*at).ok_or_else(err)?;
        *at += 1;
        Ok(match tag {
            0 => {
                let n =
                    i64::from_le_bytes(buf.get(*at..*at + 8).ok_or_else(err)?.try_into().unwrap());
                *at += 8;
                AggState::Count(n)
            }
            1 => {
                let raw = i128::from_le_bytes(
                    buf.get(*at..*at + 16).ok_or_else(err)?.try_into().unwrap(),
                );
                *at += 16;
                let scale = *buf.get(*at).ok_or_else(err)?;
                let seen = *buf.get(*at + 1).ok_or_else(err)? != 0;
                *at += 2;
                AggState::SumDec { raw, scale, seen }
            }
            2 => {
                let bits =
                    u64::from_le_bytes(buf.get(*at..*at + 8).ok_or_else(err)?.try_into().unwrap());
                *at += 8;
                let seen = *buf.get(*at).ok_or_else(err)? != 0;
                *at += 1;
                AggState::SumF64 {
                    sum: f64::from_bits(bits),
                    seen,
                }
            }
            3 => {
                let v = decode_value(buf, at)?;
                AggState::Min(if v.is_null() { None } else { Some(v) })
            }
            4 => {
                let v = decode_value(buf, at)?;
                AggState::Max(if v.is_null() { None } else { Some(v) })
            }
            other => return Err(Error::Corruption(format!("bad agg state tag {other}"))),
        })
    }
}

/// Serialize a full set of partial states (one aggregate record payload).
pub fn encode_states(states: &[AggState]) -> Vec<u8> {
    let mut out = Vec::with_capacity(states.len() * 12 + 1);
    out.push(states.len() as u8);
    for s in states {
        s.encode(&mut out);
    }
    out
}

/// Decode a payload written by [`encode_states`].
pub fn decode_states(buf: &[u8]) -> Result<Vec<AggState>> {
    let err = || Error::Corruption("truncated agg payload".into());
    let n = *buf.first().ok_or_else(err)? as usize;
    let mut at = 1usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(AggState::decode(buf, &mut at)?);
    }
    if at != buf.len() {
        return Err(Error::Corruption("trailing bytes in agg payload".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Value {
        Value::Decimal(Dec::parse(s).unwrap())
    }

    #[test]
    fn paper_example_page_p1() {
        // §V-C: P1 = {(1,2),(2,10)?,(3,7),(4,8)?,(5,2)}; visible rows
        // 2 + 7 + 2, with the sum attached to the last visible record.
        let spec = AggSpec::sum(1);
        let mut st = AggState::new(&spec, Some(DataType::BigInt));
        for v in [2i64, 7, 2] {
            st.update(&Value::Int(v));
        }
        // Paper folds all-but-last then attaches to the last record; the
        // arithmetic is the same either way: 2 + 7 + 2 = 11... the paper's
        // "9" excludes the carrier record's own value (2), which is added
        // when the carrier row itself is consumed. Both conventions agree
        // on the final result; we fold everything into the payload.
        assert_eq!(st.finalize(), Value::Int(11));
    }

    #[test]
    fn cross_page_merge_matches_paper_numbers() {
        // §V-C cross-page example: NDP(P1) partial = 2+7+2 = 11,
        // NDP(P2) partial = 10+5+9 = 24, total visible sum = 35.
        let spec = AggSpec::sum(1);
        let mut p1 = AggState::new(&spec, Some(DataType::BigInt));
        for v in [2i64, 7, 2] {
            p1.update(&Value::Int(v));
        }
        let mut p2 = AggState::new(&spec, Some(DataType::BigInt));
        for v in [10i64, 5, 9] {
            p2.update(&Value::Int(v));
        }
        p1.merge(&p2).unwrap();
        assert_eq!(p1.finalize(), Value::Int(35));
    }

    #[test]
    fn count_star_vs_count_nulls() {
        let mut star = AggState::new(&AggSpec::count_star(), None);
        let mut cnt = AggState::new(&AggSpec::count(0), Some(DataType::Int));
        for v in [Value::Int(1), Value::Null, Value::Int(3)] {
            star.update(&Value::Int(1)); // row counter
            cnt.update(&v);
        }
        assert_eq!(star.finalize(), Value::Int(3));
        assert_eq!(cnt.finalize(), Value::Int(2));
    }

    #[test]
    fn sum_decimal_scale_preserved() {
        let spec = AggSpec::sum(0);
        let mut st = AggState::new(
            &spec,
            Some(DataType::Decimal {
                precision: 15,
                scale: 2,
            }),
        );
        st.update(&dec("1.25"));
        st.update(&dec("2.50"));
        st.update(&Value::Null);
        assert_eq!(st.finalize(), dec("3.75"));
    }

    #[test]
    fn sum_of_nothing_is_null() {
        let spec = AggSpec::sum(0);
        let st = AggState::new(
            &spec,
            Some(DataType::Decimal {
                precision: 15,
                scale: 2,
            }),
        );
        assert_eq!(st.finalize(), Value::Null);
    }

    #[test]
    fn min_max_with_merge() {
        let mut mn = AggState::new(&AggSpec::min(0), Some(DataType::Varchar(10)));
        let mut mx = AggState::new(&AggSpec::max(0), Some(DataType::Varchar(10)));
        for s in ["pear", "apple", "melon"] {
            mn.update(&Value::str(s));
            mx.update(&Value::str(s));
        }
        let mut mn2 = AggState::new(&AggSpec::min(0), Some(DataType::Varchar(10)));
        mn2.update(&Value::str("aardvark"));
        mn.merge(&mn2).unwrap();
        assert_eq!(mn.finalize(), Value::str("aardvark"));
        assert_eq!(mx.finalize(), Value::str("pear"));
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = AggState::Count(1);
        let b = AggState::Min(None);
        assert!(a.merge(&b).is_err());
        // Different scales now align instead of erroring.
        let mut s1 = AggState::SumDec {
            raw: 150,
            scale: 2,
            seen: true,
        };
        let s2 = AggState::SumDec {
            raw: 25000,
            scale: 4,
            seen: true,
        };
        s1.merge(&s2).unwrap();
        assert_eq!(s1.finalize(), Value::Decimal(Dec::parse("4.0000").unwrap()));
    }

    #[test]
    fn payload_roundtrip() {
        let states = vec![
            AggState::Count(42),
            AggState::SumDec {
                raw: 123456,
                scale: 2,
                seen: true,
            },
            AggState::SumF64 {
                sum: 2.5,
                seen: true,
            },
            AggState::Min(Some(Value::str("ACME"))),
            AggState::Max(None),
        ];
        let buf = encode_states(&states);
        assert_eq!(decode_states(&buf).unwrap(), states);
        assert!(decode_states(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn agg_spec_roundtrip() {
        let specs = [
            AggSpec::count_star(),
            AggSpec::sum(5),
            AggSpec::min(0),
            AggSpec::max(9),
            AggSpec::count(2),
        ];
        let mut buf = Vec::new();
        for s in &specs {
            s.encode(&mut buf);
        }
        let mut at = 0;
        for s in &specs {
            assert_eq!(&AggSpec::decode(&buf, &mut at).unwrap(), s);
        }
    }
}
