//! Expression trees.
//!
//! Column references are positions into the *table* schema; the executor
//! and the NDP descriptor rebind them to physical record positions when
//! needed. The node set covers everything the TPC-H predicates and
//! projections require, plus the paper's worked examples.

use std::fmt;

use taurus_common::{DataType, Error, Result, Value};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// An expression over one input row.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Column reference (position in the table schema).
    Col(usize),
    Lit(Value),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// Searched CASE: first branch whose condition is TRUE wins.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_: Box<Expr>,
    },
    /// EXTRACT(YEAR FROM date).
    ExtractYear(Box<Expr>),
    /// SUBSTRING(expr FROM `from` FOR `len`) — 1-based, byte semantics.
    Substr {
        expr: Box<Expr>,
        from: usize,
        len: usize,
    },
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    pub fn str(s: &str) -> Expr {
        Expr::Lit(Value::str(s))
    }

    pub fn dec(s: &str) -> Expr {
        Expr::Lit(Value::Decimal(
            taurus_common::Dec::parse(s).expect("literal decimal"),
        ))
    }

    pub fn date(s: &str) -> Expr {
        Expr::Lit(Value::Date(
            taurus_common::Date32::parse(s).expect("literal date"),
        ))
    }

    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, a, b)
    }

    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, a, b)
    }

    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, a, b)
    }

    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, a, b)
    }

    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, a, b)
    }

    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, a, b)
    }

    pub fn and(parts: Vec<Expr>) -> Expr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Expr::And(xs) => flat.extend(xs),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else {
            Expr::And(flat)
        }
    }

    pub fn or(parts: Vec<Expr>) -> Expr {
        if parts.len() == 1 {
            return parts.into_iter().next().unwrap();
        }
        Expr::Or(parts)
    }

    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(a), Box::new(b))
    }

    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(a), Box::new(b))
    }

    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(a), Box::new(b))
    }

    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(a), Box::new(b))
    }

    pub fn like(e: Expr, pattern: &str) -> Expr {
        Expr::Like {
            expr: Box::new(e),
            pattern: pattern.to_string(),
            negated: false,
        }
    }

    pub fn not_like(e: Expr, pattern: &str) -> Expr {
        Expr::Like {
            expr: Box::new(e),
            pattern: pattern.to_string(),
            negated: true,
        }
    }

    pub fn in_list(e: Expr, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(e),
            list,
            negated: false,
        }
    }

    pub fn between(e: Expr, lo: Expr, hi: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(e),
            lo: Box::new(lo),
            hi: Box::new(hi),
        }
    }

    /// Collect all referenced column positions (sorted, deduplicated).
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Col(i) = e {
                out.push(*i);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Pre-order traversal.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Col(_) | Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::And(xs) | Expr::Or(xs) => {
                for x in xs {
                    x.walk(f);
                }
            }
            Expr::Not(a) | Expr::Neg(a) | Expr::ExtractYear(a) => a.walk(f),
            Expr::Like { expr, .. }
            | Expr::InList { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Substr { expr, .. } => expr.walk(f),
            Expr::Between { expr, lo, hi } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::Case { branches, else_ } => {
                for (c, v) in branches {
                    c.walk(f);
                    v.walk(f);
                }
                else_.walk(f);
            }
        }
    }

    /// Rewrite column references through `map` (old position -> new).
    pub fn remap_columns(&self, map: &impl Fn(usize) -> usize) -> Expr {
        let rebox = |e: &Expr| Box::new(e.remap_columns(map));
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(*op, rebox(a), rebox(b)),
            Expr::And(xs) => Expr::And(xs.iter().map(|x| x.remap_columns(map)).collect()),
            Expr::Or(xs) => Expr::Or(xs.iter().map(|x| x.remap_columns(map)).collect()),
            Expr::Not(a) => Expr::Not(rebox(a)),
            Expr::Arith(op, a, b) => Expr::Arith(*op, rebox(a), rebox(b)),
            Expr::Neg(a) => Expr::Neg(rebox(a)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: rebox(expr),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: rebox(expr),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Between { expr, lo, hi } => Expr::Between {
                expr: rebox(expr),
                lo: rebox(lo),
                hi: rebox(hi),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: rebox(expr),
                negated: *negated,
            },
            Expr::Case { branches, else_ } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.remap_columns(map), v.remap_columns(map)))
                    .collect(),
                else_: rebox(else_),
            },
            Expr::ExtractYear(a) => Expr::ExtractYear(rebox(a)),
            Expr::Substr { expr, from, len } => Expr::Substr {
                expr: rebox(expr),
                from: *from,
                len: *len,
            },
        }
    }

    /// Result type of this expression over `input` column types.
    pub fn dtype(&self, input: &[DataType]) -> Result<DataType> {
        let boolean = DataType::Int;
        Ok(match self {
            Expr::Col(i) => *input
                .get(*i)
                .ok_or_else(|| Error::Internal(format!("column {i} out of range")))?,
            Expr::Lit(v) => match v {
                Value::Null => DataType::Int,
                Value::Int(_) => DataType::BigInt,
                Value::Decimal(d) => DataType::Decimal {
                    precision: 30,
                    scale: d.scale,
                },
                Value::Date(_) => DataType::Date,
                Value::Str(s) => DataType::Varchar(s.len() as u16),
                Value::Double(_) => DataType::Double,
            },
            Expr::Cmp(..)
            | Expr::And(_)
            | Expr::Or(_)
            | Expr::Not(_)
            | Expr::Like { .. }
            | Expr::InList { .. }
            | Expr::Between { .. }
            | Expr::IsNull { .. } => boolean,
            Expr::Arith(op, a, b) => {
                let (ta, tb) = (a.dtype(input)?, b.dtype(input)?);
                match (ta, tb) {
                    (DataType::Double, _) | (_, DataType::Double) => DataType::Double,
                    (DataType::Decimal { scale: s1, .. }, DataType::Decimal { scale: s2, .. }) => {
                        let scale = match op {
                            ArithOp::Add | ArithOp::Sub => s1.max(s2),
                            ArithOp::Mul => s1 + s2,
                            ArithOp::Div => s1 + 4,
                        };
                        DataType::Decimal {
                            precision: 30,
                            scale,
                        }
                    }
                    (DataType::Decimal { scale, .. }, _) | (_, DataType::Decimal { scale, .. }) => {
                        let scale = match op {
                            ArithOp::Add | ArithOp::Sub | ArithOp::Mul => scale,
                            ArithOp::Div => scale + 4,
                        };
                        DataType::Decimal {
                            precision: 30,
                            scale,
                        }
                    }
                    (DataType::Date, _) | (_, DataType::Date) => DataType::Date,
                    _ => {
                        if *op == ArithOp::Div {
                            DataType::Decimal {
                                precision: 30,
                                scale: 4,
                            }
                        } else {
                            DataType::BigInt
                        }
                    }
                }
            }
            Expr::Neg(a) => a.dtype(input)?,
            Expr::Case { branches, else_ } => {
                if let Some((_, v)) = branches.first() {
                    v.dtype(input)?
                } else {
                    else_.dtype(input)?
                }
            }
            Expr::ExtractYear(_) => DataType::BigInt,
            Expr::Substr { len, .. } => DataType::Varchar(*len as u16),
        })
    }

    /// Can this predicate be evaluated by the Page Store LLVM engine?
    /// The optimizer "maintains explicit lists of allowed data types,
    /// operators, and functions" (§V-B1); this is that list. CASE and
    /// arbitrary arithmetic on the storage side are excluded, mirroring the
    /// paper's conservative stance (user-defined functions are the paper's
    /// example; we exclude the constructs our VM does not implement).
    pub fn is_ndp_supported(&self, input: &[DataType]) -> bool {
        match self {
            Expr::Col(i) => input.get(*i).is_some(),
            Expr::Lit(_) => true,
            Expr::Cmp(_, a, b) => a.is_ndp_supported(input) && b.is_ndp_supported(input),
            Expr::And(xs) | Expr::Or(xs) => xs.iter().all(|x| x.is_ndp_supported(input)),
            Expr::Not(a) | Expr::Neg(a) => a.is_ndp_supported(input),
            Expr::Arith(_, a, b) => a.is_ndp_supported(input) && b.is_ndp_supported(input),
            Expr::Like { expr, .. } => expr.is_ndp_supported(input),
            Expr::InList { expr, .. } => expr.is_ndp_supported(input),
            Expr::Between { expr, lo, hi } => {
                expr.is_ndp_supported(input)
                    && lo.is_ndp_supported(input)
                    && hi.is_ndp_supported(input)
            }
            Expr::IsNull { expr, .. } => expr.is_ndp_supported(input),
            Expr::ExtractYear(a) => a.is_ndp_supported(input),
            Expr::Substr { expr, .. } => expr.is_ndp_supported(input),
            // Not on the allow-list: evaluated by the SQL executor only.
            Expr::Case { .. } => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "col{i}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                Value::Date(d) => write!(f, "DATE'{d}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write!(
                    f,
                    "({expr} {}LIKE '{pattern}')",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::Between { expr, lo, hi } => write!(f, "({expr} BETWEEN {lo} AND {hi})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Case { branches, else_ } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                write!(f, " ELSE {else_} END")
            }
            Expr::ExtractYear(a) => write!(f, "EXTRACT(YEAR FROM {a})"),
            Expr::Substr { expr, from, len } => {
                write!(f, "SUBSTRING({expr} FROM {from} FOR {len})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_collects_sorted_unique() {
        let e = Expr::and(vec![
            Expr::gt(Expr::col(4), Expr::int(1)),
            Expr::lt(Expr::col(2), Expr::col(4)),
        ]);
        assert_eq!(e.columns(), vec![2, 4]);
    }

    #[test]
    fn and_flattens_nested() {
        let e = Expr::and(vec![
            Expr::and(vec![Expr::int(1), Expr::int(2)]),
            Expr::int(3),
        ]);
        match e {
            Expr::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn remap_columns_rewrites_refs() {
        let e = Expr::gt(Expr::col(10), Expr::col(11));
        let r = e.remap_columns(&|c| c - 10);
        assert_eq!(r.columns(), vec![0, 1]);
    }

    #[test]
    fn dtype_decimal_arithmetic_scales() {
        let input = [
            DataType::Decimal {
                precision: 15,
                scale: 2,
            },
            DataType::Decimal {
                precision: 15,
                scale: 2,
            },
        ];
        let e = Expr::mul(Expr::col(0), Expr::sub(Expr::int(1), Expr::col(1)));
        match e.dtype(&input).unwrap() {
            DataType::Decimal { scale, .. } => assert_eq!(scale, 4),
            other => panic!("expected decimal, got {other:?}"),
        }
    }

    #[test]
    fn case_is_not_ndp_supported() {
        let input = [DataType::Int];
        let c = Expr::Case {
            branches: vec![(Expr::eq(Expr::col(0), Expr::int(1)), Expr::int(1))],
            else_: Box::new(Expr::int(0)),
        };
        assert!(!c.is_ndp_supported(&input));
        assert!(Expr::gt(Expr::col(0), Expr::int(3)).is_ndp_supported(&input));
    }

    #[test]
    fn display_matches_paper_style() {
        // The paper's Listing 2 shape: (joindate >= DATE'2010-01-01').
        let e = Expr::ge(Expr::col(0), Expr::date("2010-01-01"));
        assert_eq!(e.to_string(), "(col0 >= DATE'2010-01-01')");
    }
}
