//! The classical tree-walking interpreter.
//!
//! This is the paper's "Classical (non-LLVM) MySQL predicate evaluation
//! [that] proceeds by traversing a tree of various expression nodes"
//! (§V-B2) — used by the SQL executor for residual predicates, projection
//! expressions and for completing NDP work on the compute node. It is the
//! semantic reference the compiled VM must agree with.

use std::cmp::Ordering;

use taurus_common::{Dec, Error, Result, Value};

use crate::ast::{ArithOp, CmpOp, Expr};
use crate::util;

/// Evaluate an expression against a row. SQL three-valued logic: boolean
/// results are `Value::Int(0|1)` or `Value::Null`.
pub fn eval(expr: &Expr, row: &[Value]) -> Result<Value> {
    Ok(match expr {
        Expr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("column {i} out of row range")))?,
        Expr::Lit(v) => v.clone(),
        Expr::Cmp(op, a, b) => {
            let (va, vb) = (eval(a, row)?, eval(b, row)?);
            match va.cmp_sql(&vb) {
                None => Value::Null,
                Some(ord) => bool_val(cmp_holds(*op, ord)),
            }
        }
        Expr::And(xs) => {
            let mut saw_null = false;
            for x in xs {
                match eval_pred(x, row)? {
                    Some(false) => return Ok(bool_val(false)),
                    None => saw_null = true,
                    Some(true) => {}
                }
            }
            if saw_null {
                Value::Null
            } else {
                bool_val(true)
            }
        }
        Expr::Or(xs) => {
            let mut saw_null = false;
            for x in xs {
                match eval_pred(x, row)? {
                    Some(true) => return Ok(bool_val(true)),
                    None => saw_null = true,
                    Some(false) => {}
                }
            }
            if saw_null {
                Value::Null
            } else {
                bool_val(false)
            }
        }
        Expr::Not(a) => match eval_pred(a, row)? {
            None => Value::Null,
            Some(b) => bool_val(!b),
        },
        Expr::Arith(op, a, b) => {
            let (va, vb) = (eval(a, row)?, eval(b, row)?);
            arith(*op, &va, &vb)?
        }
        Expr::Neg(a) => match eval(a, row)? {
            Value::Null => Value::Null,
            Value::Int(v) => Value::Int(-v),
            Value::Decimal(d) => Value::Decimal(d.neg()),
            Value::Double(d) => Value::Double(-d),
            other => return Err(Error::Type(format!("cannot negate {other:?}"))),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => match eval(expr, row)? {
            Value::Null => Value::Null,
            Value::Str(s) => {
                let m = util::like_match(s.as_bytes(), pattern.as_bytes());
                bool_val(m != *negated)
            }
            other => return Err(Error::Type(format!("LIKE on {other:?}"))),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            let mut found = false;
            for item in list {
                match v.cmp_sql(item) {
                    Some(Ordering::Equal) => {
                        found = true;
                        break;
                    }
                    None if item.is_null() => saw_null = true,
                    _ => {}
                }
            }
            if found {
                bool_val(!*negated)
            } else if saw_null {
                Value::Null
            } else {
                bool_val(*negated)
            }
        }
        Expr::Between { expr, lo, hi } => {
            let v = eval(expr, row)?;
            let l = eval(lo, row)?;
            let h = eval(hi, row)?;
            match (v.cmp_sql(&l), v.cmp_sql(&h)) {
                (Some(a), Some(b)) => bool_val(a != Ordering::Less && b != Ordering::Greater),
                _ => Value::Null,
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, row)?;
            bool_val(v.is_null() != *negated)
        }
        Expr::Case { branches, else_ } => {
            for (cond, val) in branches {
                if eval_pred(cond, row)? == Some(true) {
                    return eval(val, row);
                }
            }
            eval(else_, row)?
        }
        Expr::ExtractYear(a) => match eval(a, row)? {
            Value::Null => Value::Null,
            Value::Date(d) => Value::Int(util::extract_year(d.0)),
            other => return Err(Error::Type(format!("EXTRACT(YEAR) on {other:?}"))),
        },
        Expr::Substr { expr, from, len } => match eval(expr, row)? {
            Value::Null => Value::Null,
            Value::Str(s) => {
                let b = util::substr(s.as_bytes(), *from, *len);
                Value::str(std::str::from_utf8(b).unwrap_or(""))
            }
            other => return Err(Error::Type(format!("SUBSTRING on {other:?}"))),
        },
    })
}

/// Evaluate as a predicate: `Some(bool)` or `None` for NULL.
pub fn eval_pred(expr: &Expr, row: &[Value]) -> Result<Option<bool>> {
    Ok(match eval(expr, row)? {
        Value::Null => None,
        Value::Int(v) => Some(v != 0),
        other => return Err(Error::Type(format!("predicate produced {other:?}"))),
    })
}

fn bool_val(b: bool) -> Value {
    Value::Int(b as i64)
}

fn cmp_holds(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// Typed arithmetic with SQL NULL propagation. Numeric pairs promote:
/// double > decimal > int. `date ± int` means day arithmetic.
pub fn arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    Ok(match (a, b) {
        (Double(_), _) | (_, Double(_)) => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            Double(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => {
                    if y == 0.0 {
                        return Err(Error::Arithmetic("division by zero".into()));
                    }
                    x / y
                }
            })
        }
        (Date(d), Int(n)) => match op {
            ArithOp::Add => Date(d.add_days(*n as i32)),
            ArithOp::Sub => Date(d.add_days(-(*n as i32))),
            _ => return Err(Error::Type("date arithmetic supports +/- days".into())),
        },
        (Int(x), Int(y)) if matches!(op, ArithOp::Add | ArithOp::Sub | ArithOp::Mul) => {
            let r = match op {
                ArithOp::Add => x.checked_add(*y),
                ArithOp::Sub => x.checked_sub(*y),
                ArithOp::Mul => x.checked_mul(*y),
                ArithOp::Div => unreachable!(),
            };
            Int(r.ok_or_else(|| Error::Arithmetic("integer overflow".into()))?)
        }
        _ => {
            let (x, y) = (a.as_dec()?, b.as_dec()?);
            Decimal(match op {
                ArithOp::Add => x.add(y),
                ArithOp::Sub => x.sub(y),
                ArithOp::Mul => x.mul(y),
                ArithOp::Div => x.div(y)?,
            })
        }
    })
}

/// Convenience: decimal helper used in tests.
pub fn dec(s: &str) -> Dec {
    Dec::parse(s).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::Date32;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(35),                                    // 0: age
            Value::Date(Date32::parse("2010-06-15").unwrap()), // 1: joindate
            Value::Decimal(dec("5500.00")),                    // 2: salary
            Value::str("MAIL"),                                // 3: shipmode
            Value::Null,                                       // 4: always null
        ]
    }

    #[test]
    fn paper_listing_1_predicate() {
        // age < 40 AND joindate >= DATE'2010-01-01'
        //            AND joindate < DATE'2010-01-01' + INTERVAL 1 YEAR
        let start = Date32::parse("2010-01-01").unwrap();
        let p = Expr::and(vec![
            Expr::lt(Expr::col(0), Expr::int(40)),
            Expr::ge(Expr::col(1), Expr::lit(Value::Date(start))),
            Expr::lt(Expr::col(1), Expr::lit(Value::Date(start.add_years(1)))),
        ]);
        assert_eq!(eval_pred(&p, &row()).unwrap(), Some(true));
        let mut r2 = row();
        r2[0] = Value::Int(41);
        assert_eq!(eval_pred(&p, &r2).unwrap(), Some(false));
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND false = false; NULL AND true = NULL; NULL OR true = true.
        let null_cmp = Expr::eq(Expr::col(4), Expr::int(1));
        let t = Expr::eq(Expr::int(1), Expr::int(1));
        let f = Expr::eq(Expr::int(1), Expr::int(2));
        let r = row();
        assert_eq!(
            eval_pred(&Expr::and(vec![null_cmp.clone(), f.clone()]), &r).unwrap(),
            Some(false)
        );
        assert_eq!(
            eval_pred(&Expr::and(vec![null_cmp.clone(), t.clone()]), &r).unwrap(),
            None
        );
        assert_eq!(
            eval_pred(&Expr::or(vec![null_cmp.clone(), t]), &r).unwrap(),
            Some(true)
        );
        assert_eq!(
            eval_pred(&Expr::or(vec![null_cmp.clone(), f]), &r).unwrap(),
            None
        );
        assert_eq!(eval_pred(&Expr::not(null_cmp), &r).unwrap(), None);
    }

    #[test]
    fn in_list_and_between() {
        let r = row();
        let e = Expr::in_list(Expr::col(3), vec![Value::str("MAIL"), Value::str("SHIP")]);
        assert_eq!(eval_pred(&e, &r).unwrap(), Some(true));
        let e2 = Expr::in_list(Expr::col(3), vec![Value::str("AIR")]);
        assert_eq!(eval_pred(&e2, &r).unwrap(), Some(false));
        let b = Expr::between(Expr::col(0), Expr::int(30), Expr::int(40));
        assert_eq!(eval_pred(&b, &r).unwrap(), Some(true));
        let b2 = Expr::between(Expr::col(0), Expr::int(36), Expr::int(40));
        assert_eq!(eval_pred(&b2, &r).unwrap(), Some(false));
    }

    #[test]
    fn q6_style_decimal_between() {
        // l_discount BETWEEN 0.05 AND 0.07 on a decimal column.
        let row = vec![Value::Decimal(dec("0.06"))];
        let p = Expr::between(Expr::col(0), Expr::dec("0.05"), Expr::dec("0.07"));
        assert_eq!(eval_pred(&p, &row).unwrap(), Some(true));
        let row2 = vec![Value::Decimal(dec("0.08"))];
        assert_eq!(eval_pred(&p, &row2).unwrap(), Some(false));
    }

    #[test]
    fn case_expression() {
        // Q12 shape: CASE WHEN shipmode IN ('MAIL','SHIP') THEN 1 ELSE 0 END.
        let e = Expr::Case {
            branches: vec![(
                Expr::in_list(Expr::col(3), vec![Value::str("MAIL"), Value::str("SHIP")]),
                Expr::int(1),
            )],
            else_: Box::new(Expr::int(0)),
        };
        assert_eq!(eval(&e, &row()).unwrap(), Value::Int(1));
    }

    #[test]
    fn projection_arithmetic_q1_shape() {
        // price * (1 - disc) * (1 + tax)
        let r = vec![
            Value::Decimal(dec("901.00")),
            Value::Decimal(dec("0.05")),
            Value::Decimal(dec("0.02")),
        ];
        let e = Expr::mul(
            Expr::mul(Expr::col(0), Expr::sub(Expr::int(1), Expr::col(1))),
            Expr::add(Expr::int(1), Expr::col(2)),
        );
        assert_eq!(eval(&e, &r).unwrap(), Value::Decimal(dec("873.069000")));
    }

    #[test]
    fn extract_year_and_substr() {
        let r = row();
        assert_eq!(
            eval(&Expr::ExtractYear(Box::new(Expr::col(1))), &r).unwrap(),
            Value::Int(2010)
        );
        let s = Expr::Substr {
            expr: Box::new(Expr::col(3)),
            from: 1,
            len: 2,
        };
        assert_eq!(eval(&s, &r).unwrap(), Value::str("MA"));
    }

    #[test]
    fn date_day_arithmetic() {
        let r = row();
        let e = Expr::sub(Expr::col(1), Expr::int(90));
        assert_eq!(
            eval(&e, &r).unwrap(),
            Value::Date(Date32::parse("2010-03-17").unwrap())
        );
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(eval(&Expr::div(Expr::int(1), Expr::int(0)), &[]).is_err());
    }
}
