//! The NDP descriptor (§IV-C1): everything a Page Store needs to process
//! pages on behalf of one table access.
//!
//! Contents mirror the paper's list: "the number and data types of the
//! index columns and the lengths of the fixed-length columns; the columns
//! to be projected, if any; the encoded filtering predicates in the LLVM IR
//! format, if any; the aggregation functions to call and the GROUP BY
//! columns, if any; a transaction ID that represents an MVCC read-view low
//! watermark."
//!
//! All column references are *record positions* (the compute node resolves
//! table columns to physical positions when building the descriptor), so
//! the Page Store plugin needs no table schema. The descriptor crosses the
//! network as "a type-less byte stream" that the DBMS-specific plugin
//! interprets; [`NdpDescriptor::encode`]/[`NdpDescriptor::decode`] define
//! the InnoDB plugin's interpretation, and [`fnv64`] provides the
//! descriptor-cache key (§IV-D1).

use taurus_common::{DataType, Error, Result, TrxId};

use crate::agg::AggSpec;

/// Aggregation request within a descriptor.
#[derive(Clone, Debug, PartialEq)]
pub struct NdpAggSpec {
    /// Aggregates to maintain; `col` fields are record positions.
    pub specs: Vec<AggSpec>,
    /// GROUP BY columns as record positions. Must be a prefix of the index
    /// key (§V-C: "the index access chosen must satisfy the grouping
    /// column requirement"). Empty = scalar aggregation, which also enables
    /// cross-page aggregation within a batch request.
    pub group_cols: Vec<u16>,
}

/// The descriptor shipped with every NDP batch read.
#[derive(Clone, Debug, PartialEq)]
pub struct NdpDescriptor {
    /// Index identity (sanity check against the page header).
    pub index_id: u64,
    /// Data types of the columns stored in leaf records, in record order.
    pub record_dtypes: Vec<DataType>,
    /// Record positions of the index key columns, in key order. Projection
    /// always retains these (InnoDB needs them for cursor re-positioning,
    /// §V-A).
    pub key_positions: Vec<u16>,
    /// Record positions to keep, ascending, superset of `key_positions`;
    /// `None` = no NDP column projection.
    pub projection: Option<Vec<u16>>,
    /// Serialized predicate IR (see `crate::ir`); `None` = no NDP filtering.
    pub predicate_bitcode: Option<Vec<u8>>,
    /// Aggregation request; `None` = no NDP aggregation.
    pub aggregation: Option<NdpAggSpec>,
    /// MVCC low watermark: records with `trx_id <` this are visible;
    /// the rest are ambiguous and returned unmodified.
    pub low_watermark: TrxId,
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u16(buf: &[u8], at: &mut usize) -> Result<u16> {
    let s = buf
        .get(*at..*at + 2)
        .ok_or_else(|| Error::Corruption("truncated descriptor".into()))?;
    *at += 2;
    Ok(u16::from_le_bytes(s.try_into().unwrap()))
}

fn encode_dtype(dt: &DataType, out: &mut Vec<u8>) {
    out.push(dt.tag());
    match dt {
        DataType::Decimal { precision, scale } => {
            out.push(*precision);
            out.push(*scale);
        }
        DataType::Char(n) | DataType::Varchar(n) => push_u16(out, *n),
        _ => {}
    }
}

fn decode_dtype(buf: &[u8], at: &mut usize) -> Result<DataType> {
    let err = || Error::Corruption("truncated descriptor dtype".into());
    let tag = *buf.get(*at).ok_or_else(err)?;
    *at += 1;
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::BigInt,
        2 => {
            let precision = *buf.get(*at).ok_or_else(err)?;
            let scale = *buf.get(*at + 1).ok_or_else(err)?;
            *at += 2;
            DataType::Decimal { precision, scale }
        }
        3 => DataType::Date,
        4 => DataType::Char(read_u16(buf, at)?),
        5 => DataType::Varchar(read_u16(buf, at)?),
        6 => DataType::Double,
        other => return Err(Error::Corruption(format!("bad dtype tag {other}"))),
    })
}

impl NdpDescriptor {
    /// Does this descriptor request any NDP work at all?
    pub fn requests_work(&self) -> bool {
        self.projection.is_some() || self.predicate_bitcode.is_some() || self.aggregation.is_some()
    }

    /// Serialize to the type-less byte stream carried by batch reads.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(b"DESC");
        out.extend_from_slice(&self.index_id.to_le_bytes());
        out.extend_from_slice(&self.low_watermark.to_le_bytes());
        push_u16(&mut out, self.record_dtypes.len() as u16);
        for dt in &self.record_dtypes {
            encode_dtype(dt, &mut out);
        }
        push_u16(&mut out, self.key_positions.len() as u16);
        for k in &self.key_positions {
            push_u16(&mut out, *k);
        }
        match &self.projection {
            None => out.push(0),
            Some(keep) => {
                out.push(1);
                push_u16(&mut out, keep.len() as u16);
                for k in keep {
                    push_u16(&mut out, *k);
                }
            }
        }
        match &self.predicate_bitcode {
            None => out.push(0),
            Some(bc) => {
                out.push(1);
                push_u16(&mut out, bc.len() as u16);
                out.extend_from_slice(bc);
            }
        }
        match &self.aggregation {
            None => out.push(0),
            Some(agg) => {
                out.push(1);
                push_u16(&mut out, agg.specs.len() as u16);
                for s in &agg.specs {
                    s.encode(&mut out);
                }
                push_u16(&mut out, agg.group_cols.len() as u16);
                for g in &agg.group_cols {
                    push_u16(&mut out, *g);
                }
            }
        }
        out
    }

    /// Decode and structurally validate a descriptor byte stream.
    pub fn decode(buf: &[u8]) -> Result<NdpDescriptor> {
        let err = || Error::Corruption("truncated descriptor".into());
        if buf.len() < 20 || &buf[..4] != b"DESC" {
            return Err(Error::Corruption("bad descriptor magic".into()));
        }
        let index_id = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let low_watermark = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let mut at = 20usize;
        let n_cols = read_u16(buf, &mut at)? as usize;
        let mut record_dtypes = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            record_dtypes.push(decode_dtype(buf, &mut at)?);
        }
        let n_keys = read_u16(buf, &mut at)? as usize;
        let mut key_positions = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            key_positions.push(read_u16(buf, &mut at)?);
        }
        let has_proj = *buf.get(at).ok_or_else(err)? != 0;
        at += 1;
        let projection = if has_proj {
            let n = read_u16(buf, &mut at)? as usize;
            let mut keep = Vec::with_capacity(n);
            for _ in 0..n {
                keep.push(read_u16(buf, &mut at)?);
            }
            Some(keep)
        } else {
            None
        };
        let has_pred = *buf.get(at).ok_or_else(err)? != 0;
        at += 1;
        let predicate_bitcode = if has_pred {
            let n = read_u16(buf, &mut at)? as usize;
            let bc = buf.get(at..at + n).ok_or_else(err)?.to_vec();
            at += n;
            Some(bc)
        } else {
            None
        };
        let has_agg = *buf.get(at).ok_or_else(err)? != 0;
        at += 1;
        let aggregation = if has_agg {
            let n = read_u16(buf, &mut at)? as usize;
            let mut specs = Vec::with_capacity(n);
            for _ in 0..n {
                specs.push(AggSpec::decode(buf, &mut at)?);
            }
            let ng = read_u16(buf, &mut at)? as usize;
            let mut group_cols = Vec::with_capacity(ng);
            for _ in 0..ng {
                group_cols.push(read_u16(buf, &mut at)?);
            }
            Some(NdpAggSpec { specs, group_cols })
        } else {
            None
        };
        let d = NdpDescriptor {
            index_id,
            record_dtypes,
            key_positions,
            projection,
            predicate_bitcode,
            aggregation,
            low_watermark,
        };
        d.validate()?;
        Ok(d)
    }

    /// Cross-field validation (the plugin's defensive checks).
    pub fn validate(&self) -> Result<()> {
        let n = self.record_dtypes.len() as u16;
        let in_range = |c: u16| -> Result<()> {
            if c >= n {
                return Err(Error::Corruption(format!(
                    "descriptor column {c} out of record range {n}"
                )));
            }
            Ok(())
        };
        for &k in &self.key_positions {
            in_range(k)?;
        }
        if let Some(keep) = &self.projection {
            if keep.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Error::Corruption(
                    "projection not strictly ascending".into(),
                ));
            }
            for &k in keep {
                in_range(k)?;
            }
            for &k in &self.key_positions {
                if !keep.contains(&k) {
                    return Err(Error::Corruption(format!(
                        "projection drops key column {k} (cursor repositioning needs it)"
                    )));
                }
            }
        }
        if let Some(agg) = &self.aggregation {
            for s in &agg.specs {
                if let Some(c) = s.col {
                    in_range(c)?;
                    // Aggregated columns must survive projection: the
                    // carrier record's own values feed the executor.
                    if let Some(keep) = &self.projection {
                        if !keep.contains(&c) {
                            return Err(Error::Corruption(format!(
                                "aggregate input {c} dropped by projection"
                            )));
                        }
                    }
                }
            }
            for (i, &g) in agg.group_cols.iter().enumerate() {
                in_range(g)?;
                // GROUP BY must be an index-key prefix.
                if self.key_positions.get(i) != Some(&g) {
                    return Err(Error::Corruption(
                        "GROUP BY columns are not an index-key prefix".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// FNV-1a over the descriptor bytes — the Page Store descriptor-cache key
/// ("computed by applying a hash function to the NDP descriptor fields",
/// §IV-D1).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::compile::lower;

    fn sample() -> NdpDescriptor {
        let pred = lower(&Expr::and(vec![
            Expr::ge(Expr::col(2), Expr::date("1994-01-01")),
            Expr::lt(Expr::col(2), Expr::date("1995-01-01")),
        ]))
        .unwrap();
        NdpDescriptor {
            index_id: 42,
            record_dtypes: vec![
                DataType::BigInt,
                DataType::Int,
                DataType::Date,
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
                DataType::Varchar(44),
            ],
            key_positions: vec![0, 1],
            projection: Some(vec![0, 1, 2, 3]),
            predicate_bitcode: Some(pred.encode_bitcode()),
            aggregation: Some(NdpAggSpec {
                specs: vec![AggSpec::sum(3), AggSpec::count_star()],
                group_cols: vec![],
            }),
            low_watermark: 17,
        }
    }

    #[test]
    fn roundtrip_full() {
        let d = sample();
        let bytes = d.encode();
        let back = NdpDescriptor::decode(&bytes).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn roundtrip_minimal() {
        let d = NdpDescriptor {
            index_id: 1,
            record_dtypes: vec![DataType::Int],
            key_positions: vec![0],
            projection: None,
            predicate_bitcode: None,
            aggregation: None,
            low_watermark: 2,
        };
        assert_eq!(NdpDescriptor::decode(&d.encode()).unwrap(), d);
        assert!(!d.requests_work());
        assert!(sample().requests_work());
    }

    #[test]
    fn validation_catches_dropped_key_column() {
        let mut d = sample();
        d.projection = Some(vec![0, 2, 3]); // drops key col 1
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_catches_group_by_non_prefix() {
        let mut d = sample();
        d.aggregation = Some(NdpAggSpec {
            specs: vec![AggSpec::count_star()],
            group_cols: vec![2],
        });
        assert!(d.validate().is_err());
        // A proper key prefix passes.
        d.aggregation = Some(NdpAggSpec {
            specs: vec![AggSpec::count_star()],
            group_cols: vec![0],
        });
        d.validate().unwrap();
    }

    #[test]
    fn validation_catches_aggregate_dropped_by_projection() {
        let mut d = sample();
        d.aggregation = Some(NdpAggSpec {
            specs: vec![AggSpec::sum(4)],
            group_cols: vec![],
        });
        assert!(d.validate().is_err(), "col 4 is not in the projection");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(NdpDescriptor::decode(b"????????").is_err());
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() / 2);
        assert!(NdpDescriptor::decode(&bytes).is_err());
    }

    #[test]
    fn fnv_hash_distinguishes_descriptors() {
        let a = sample();
        let mut b = sample();
        b.low_watermark += 1;
        assert_ne!(fnv64(&a.encode()), fnv64(&b.encode()));
        assert_eq!(fnv64(&a.encode()), fnv64(&sample().encode()));
    }
}
