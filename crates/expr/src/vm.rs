//! The Page Store execution engine — this reproduction's LLVM JIT (§V-B2,
//! steps 3–4).
//!
//! A Page Store receives IR bitcode inside an NDP descriptor, validates it,
//! and *compiles* it against the concrete record layout of the index being
//! scanned: column references become resolved `(record position, type)`
//! field loads, constants are pre-decoded, and branch targets are checked.
//! The resulting [`CompiledPredicate`] runs directly over raw record bytes
//! — no row materialization — calling the pre-compiled utility library for
//! LIKE/SUBSTR/EXTRACT, which is the performance-relevant property of the
//! paper's native-code generation. Compilation cost is deliberately
//! non-trivial, which is what makes the descriptor cache (§IV-D1) matter;
//! see `taurus-pagestore::descriptor_cache`.

use taurus_common::{DataType, Dec, Error, Result};
use taurus_page::{RecordLayout, RecordView};

use crate::ast::{ArithOp, CmpOp};
use crate::compile::MAX_REGS;
use crate::ir::{IrInstr, IrProgram};
use crate::util;

/// Predicate outcome over one record: the Page Store may discard only
/// definite `False` rows of visible records (§V-B1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TriBool {
    True,
    False,
    /// NULL-valued predicate result.
    Unknown,
}

/// A register value during evaluation. String registers borrow directly
/// from the record bytes or the program's constant pool — the "no row
/// materialization" property.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Slot<'a> {
    Null,
    Int(i64),
    Dec(Dec),
    Date(i32),
    Bytes(&'a [u8]),
    F64(f64),
}

/// A constant pre-decoded at JIT time.
#[derive(Clone, Debug)]
pub(crate) enum ConstSlot {
    Null,
    Int(i64),
    Dec(Dec),
    Date(i32),
    Bytes(Box<[u8]>),
    F64(f64),
}

impl ConstSlot {
    pub(crate) fn from_value(v: &taurus_common::Value) -> ConstSlot {
        use taurus_common::Value::*;
        match v {
            Null => ConstSlot::Null,
            Int(x) => ConstSlot::Int(*x),
            Decimal(d) => ConstSlot::Dec(*d),
            Date(d) => ConstSlot::Date(d.0),
            Str(s) => ConstSlot::Bytes(s.as_bytes().into()),
            Double(x) => ConstSlot::F64(*x),
        }
    }

    pub(crate) fn as_slot(&self) -> Slot<'_> {
        match self {
            ConstSlot::Null => Slot::Null,
            ConstSlot::Int(x) => Slot::Int(*x),
            ConstSlot::Dec(d) => Slot::Dec(*d),
            ConstSlot::Date(d) => Slot::Date(*d),
            ConstSlot::Bytes(b) => Slot::Bytes(b),
            ConstSlot::F64(x) => Slot::F64(*x),
        }
    }
}

/// Post-"JIT" instruction: like [`IrInstr`] but with column references
/// resolved to concrete record positions and types.
#[derive(Clone, Copy, Debug)]
enum Op {
    LoadField {
        dst: u16,
        pos: u16,
        dtype: DataType,
    },
    LoadConst {
        dst: u16,
        idx: u16,
    },
    Mov {
        dst: u16,
        src: u16,
    },
    Cmp {
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    And {
        dst: u16,
        a: u16,
        b: u16,
    },
    Or {
        dst: u16,
        a: u16,
        b: u16,
    },
    Not {
        dst: u16,
        a: u16,
    },
    Arith {
        op: ArithOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    Neg {
        dst: u16,
        a: u16,
    },
    IsNull {
        dst: u16,
        a: u16,
        negated: bool,
    },
    Like {
        dst: u16,
        a: u16,
        pattern: u16,
        negated: bool,
    },
    InList {
        dst: u16,
        a: u16,
        first: u16,
        count: u16,
        negated: bool,
    },
    ExtractYear {
        dst: u16,
        a: u16,
    },
    Substr {
        dst: u16,
        a: u16,
        from: u16,
        len: u16,
    },
    BrFalse {
        cond: u16,
        target: u16,
    },
    BrTrue {
        cond: u16,
        target: u16,
    },
    Jmp {
        target: u16,
    },
    Ret {
        src: u16,
    },
}

/// A predicate compiled against one record layout.
pub struct CompiledPredicate {
    ops: Box<[Op]>,
    consts: Box<[ConstSlot]>,
    /// Register count (bounded by [`MAX_REGS`]); kept for introspection.
    pub n_regs: usize,
}

impl CompiledPredicate {
    /// "JIT-compile" validated IR for records shaped by `layout`.
    ///
    /// `col_map[i]` gives, for table column `i`, its position within the
    /// record (`u16::MAX` = not stored, which is a descriptor bug).
    pub fn compile(
        ir: &IrProgram,
        layout: &RecordLayout,
        col_map: &[u16],
    ) -> Result<CompiledPredicate> {
        ir.validate()?;
        if ir.n_regs as usize > MAX_REGS {
            return Err(Error::InvalidState(format!(
                "program uses {} registers, max {MAX_REGS}",
                ir.n_regs
            )));
        }
        let mut ops = Vec::with_capacity(ir.instrs.len());
        for (i, ins) in ir.instrs.iter().enumerate() {
            let op = match *ins {
                IrInstr::LoadCol { dst, col } => {
                    let pos = *col_map.get(col as usize).ok_or_else(|| {
                        Error::InvalidState(format!("descriptor col {col} unmapped"))
                    })?;
                    if pos == u16::MAX || pos as usize >= layout.n_cols() {
                        return Err(Error::InvalidState(format!(
                            "descriptor col {col} not present in record layout"
                        )));
                    }
                    Op::LoadField {
                        dst,
                        pos,
                        dtype: layout.dtypes[pos as usize],
                    }
                }
                IrInstr::LoadConst { dst, idx } => Op::LoadConst { dst, idx },
                IrInstr::Mov { dst, src } => Op::Mov { dst, src },
                IrInstr::Cmp { op, dst, a, b } => Op::Cmp { op, dst, a, b },
                IrInstr::And { dst, a, b } => Op::And { dst, a, b },
                IrInstr::Or { dst, a, b } => Op::Or { dst, a, b },
                IrInstr::Not { dst, a } => Op::Not { dst, a },
                IrInstr::Arith { op, dst, a, b } => Op::Arith { op, dst, a, b },
                IrInstr::Neg { dst, a } => Op::Neg { dst, a },
                IrInstr::IsNull { dst, a, negated } => Op::IsNull { dst, a, negated },
                IrInstr::Like {
                    dst,
                    a,
                    pattern,
                    negated,
                } => Op::Like {
                    dst,
                    a,
                    pattern,
                    negated,
                },
                IrInstr::InList {
                    dst,
                    a,
                    first,
                    count,
                    negated,
                } => Op::InList {
                    dst,
                    a,
                    first,
                    count,
                    negated,
                },
                IrInstr::ExtractYear { dst, a } => Op::ExtractYear { dst, a },
                IrInstr::Substr { dst, a, from, len } => Op::Substr { dst, a, from, len },
                IrInstr::BrFalse { cond, target } => {
                    forward_only(i, target)?;
                    Op::BrFalse { cond, target }
                }
                IrInstr::BrTrue { cond, target } => {
                    forward_only(i, target)?;
                    Op::BrTrue { cond, target }
                }
                IrInstr::Jmp { target } => {
                    forward_only(i, target)?;
                    Op::Jmp { target }
                }
                IrInstr::Ret { src } => Op::Ret { src },
            };
            ops.push(op);
        }
        Ok(CompiledPredicate {
            ops: ops.into_boxed_slice(),
            consts: ir.consts.iter().map(ConstSlot::from_value).collect(),
            n_regs: ir.n_regs as usize,
        })
    }

    /// Evaluate over raw record bytes. `offsets` is a reusable scratch
    /// buffer (filled with the record's field offsets once per record).
    pub fn eval_record(&self, rec: &RecordView<'_>, offsets: &mut Vec<u32>) -> Result<TriBool> {
        rec.fill_offsets(offsets);
        let mut regs: [Slot<'_>; MAX_REGS] = [Slot::Null; MAX_REGS];
        let mut pc = 0usize;
        loop {
            let op = self.ops[pc];
            pc += 1;
            match op {
                Op::LoadField { dst, pos, dtype } => {
                    regs[dst as usize] = if rec.is_null(pos as usize) {
                        Slot::Null
                    } else {
                        let s = offsets[pos as usize] as usize;
                        let e = offsets[pos as usize + 1] as usize;
                        load_field(&rec.backing()[s..e], dtype)
                    };
                }
                Op::LoadConst { dst, idx } => {
                    regs[dst as usize] = self.consts[idx as usize].as_slot();
                }
                Op::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
                Op::Cmp { op, dst, a, b } => {
                    regs[dst as usize] = match slot_cmp(&regs[a as usize], &regs[b as usize])? {
                        None => Slot::Null,
                        Some(ord) => bool_slot(cmp_holds(op, ord)),
                    };
                }
                Op::And { dst, a, b } => {
                    regs[dst as usize] =
                        tri_and(slot_bool(&regs[a as usize])?, slot_bool(&regs[b as usize])?);
                }
                Op::Or { dst, a, b } => {
                    regs[dst as usize] =
                        tri_or(slot_bool(&regs[a as usize])?, slot_bool(&regs[b as usize])?);
                }
                Op::Not { dst, a } => {
                    regs[dst as usize] = match slot_bool(&regs[a as usize])? {
                        None => Slot::Null,
                        Some(v) => bool_slot(!v),
                    };
                }
                Op::Arith { op, dst, a, b } => {
                    regs[dst as usize] = slot_arith(op, &regs[a as usize], &regs[b as usize])?;
                }
                Op::Neg { dst, a } => {
                    regs[dst as usize] = match regs[a as usize] {
                        Slot::Null => Slot::Null,
                        Slot::Int(v) => Slot::Int(-v),
                        Slot::Dec(d) => Slot::Dec(d.neg()),
                        Slot::F64(v) => Slot::F64(-v),
                        other => return Err(Error::Type(format!("cannot negate {other:?}"))),
                    };
                }
                Op::IsNull { dst, a, negated } => {
                    let isn = matches!(regs[a as usize], Slot::Null);
                    regs[dst as usize] = bool_slot(isn != negated);
                }
                Op::Like {
                    dst,
                    a,
                    pattern,
                    negated,
                } => {
                    regs[dst as usize] = match regs[a as usize] {
                        Slot::Null => Slot::Null,
                        Slot::Bytes(text) => {
                            let pat = match &self.consts[pattern as usize] {
                                ConstSlot::Bytes(b) => &b[..],
                                other => {
                                    return Err(Error::Internal(format!(
                                        "LIKE pattern const is {other:?}"
                                    )))
                                }
                            };
                            bool_slot(util::like_match(text, pat) != negated)
                        }
                        other => return Err(Error::Type(format!("LIKE on {other:?}"))),
                    };
                }
                Op::InList {
                    dst,
                    a,
                    first,
                    count,
                    negated,
                } => {
                    let v = regs[a as usize];
                    regs[dst as usize] = if matches!(v, Slot::Null) {
                        Slot::Null
                    } else {
                        let mut found = false;
                        for i in first..first + count {
                            let c = self.consts[i as usize].as_slot();
                            if slot_cmp(&v, &c)? == Some(std::cmp::Ordering::Equal) {
                                found = true;
                                break;
                            }
                        }
                        bool_slot(found != negated)
                    };
                }
                Op::ExtractYear { dst, a } => {
                    regs[dst as usize] = match regs[a as usize] {
                        Slot::Null => Slot::Null,
                        Slot::Date(d) => Slot::Int(util::extract_year(d)),
                        other => return Err(Error::Type(format!("EXTRACT(YEAR) on {other:?}"))),
                    };
                }
                Op::Substr { dst, a, from, len } => {
                    regs[dst as usize] = match regs[a as usize] {
                        Slot::Null => Slot::Null,
                        Slot::Bytes(b) => Slot::Bytes(util::substr(b, from as usize, len as usize)),
                        other => return Err(Error::Type(format!("SUBSTR on {other:?}"))),
                    };
                }
                Op::BrFalse { cond, target } => {
                    if slot_bool(&regs[cond as usize])? == Some(false) {
                        pc = target as usize;
                    }
                }
                Op::BrTrue { cond, target } => {
                    if slot_bool(&regs[cond as usize])? == Some(true) {
                        pc = target as usize;
                    }
                }
                Op::Jmp { target } => pc = target as usize,
                Op::Ret { src } => {
                    return Ok(match slot_bool(&regs[src as usize])? {
                        None => TriBool::Unknown,
                        Some(true) => TriBool::True,
                        Some(false) => TriBool::False,
                    });
                }
            }
        }
    }
}

fn forward_only(at: usize, target: u16) -> Result<()> {
    if (target as usize) <= at {
        return Err(Error::Corruption(format!(
            "backward branch at {at} -> {target}: rejected (non-terminating)"
        )));
    }
    Ok(())
}

pub(crate) fn load_field<'a>(bytes: &'a [u8], dtype: DataType) -> Slot<'a> {
    match dtype {
        DataType::Int => Slot::Int(i32::from_le_bytes(bytes[..4].try_into().unwrap()) as i64),
        DataType::BigInt => Slot::Int(i64::from_le_bytes(bytes[..8].try_into().unwrap())),
        DataType::Decimal { scale, .. } => Slot::Dec(Dec {
            raw: i64::from_le_bytes(bytes[..8].try_into().unwrap()) as i128,
            scale,
        }),
        DataType::Date => Slot::Date(i32::from_le_bytes(bytes[..4].try_into().unwrap())),
        // CHAR pad-space: strip trailing blanks at load, matching the
        // compute node's decode path.
        DataType::Char(_) => Slot::Bytes(util::trim_pad(bytes)),
        DataType::Varchar(_) => Slot::Bytes(bytes),
        DataType::Double => Slot::F64(f64::from_le_bytes(bytes[..8].try_into().unwrap())),
    }
}

pub(crate) fn bool_slot<'a>(b: bool) -> Slot<'a> {
    Slot::Int(b as i64)
}

pub(crate) fn slot_bool(s: &Slot<'_>) -> Result<Option<bool>> {
    match s {
        Slot::Null => Ok(None),
        Slot::Int(v) => Ok(Some(*v != 0)),
        other => Err(Error::Type(format!(
            "non-boolean predicate register {other:?}"
        ))),
    }
}

fn tri_and<'a>(a: Option<bool>, b: Option<bool>) -> Slot<'a> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => bool_slot(false),
        (Some(true), Some(true)) => bool_slot(true),
        _ => Slot::Null,
    }
}

fn tri_or<'a>(a: Option<bool>, b: Option<bool>) -> Slot<'a> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => bool_slot(true),
        (Some(false), Some(false)) => bool_slot(false),
        _ => Slot::Null,
    }
}

pub(crate) fn cmp_holds(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

pub(crate) fn slot_cmp(a: &Slot<'_>, b: &Slot<'_>) -> Result<Option<std::cmp::Ordering>> {
    use Slot::*;
    Ok(match (a, b) {
        (Null, _) | (_, Null) => None,
        (Int(x), Int(y)) => Some(x.cmp(y)),
        (Dec(x), Dec(y)) => Some(util::decimal_cmp(*x, *y)),
        (Int(x), Dec(y)) => Some(util::decimal_cmp(taurus_common::Dec::from_int(*x), *y)),
        (Dec(x), Int(y)) => Some(util::decimal_cmp(*x, taurus_common::Dec::from_int(*y))),
        (Date(x), Date(y)) => Some(x.cmp(y)),
        (Bytes(x), Bytes(y)) => Some(util::trim_pad(x).cmp(util::trim_pad(y))),
        (F64(x), F64(y)) => x.partial_cmp(y),
        (F64(x), Int(y)) => x.partial_cmp(&(*y as f64)),
        (Int(x), F64(y)) => (*x as f64).partial_cmp(y),
        (F64(x), Dec(y)) => x.partial_cmp(&y.to_f64()),
        (Dec(x), F64(y)) => x.to_f64().partial_cmp(y),
        (x, y) => return Err(Error::Type(format!("cannot compare {x:?} and {y:?}"))),
    })
}

pub(crate) fn slot_arith<'a>(op: ArithOp, a: &Slot<'a>, b: &Slot<'a>) -> Result<Slot<'a>> {
    use Slot::*;
    if matches!(a, Null) || matches!(b, Null) {
        return Ok(Null);
    }
    Ok(match (a, b) {
        (F64(_), _) | (_, F64(_)) => {
            let x = slot_f64(a)?;
            let y = slot_f64(b)?;
            F64(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => {
                    if y == 0.0 {
                        return Err(Error::Arithmetic("division by zero".into()));
                    }
                    x / y
                }
            })
        }
        (Date(d), Int(n)) => match op {
            ArithOp::Add => Date(d + *n as i32),
            ArithOp::Sub => Date(d - *n as i32),
            _ => return Err(Error::Type("date arithmetic supports +/- days".into())),
        },
        (Int(x), Int(y)) if matches!(op, ArithOp::Add | ArithOp::Sub | ArithOp::Mul) => {
            let r = match op {
                ArithOp::Add => x.checked_add(*y),
                ArithOp::Sub => x.checked_sub(*y),
                ArithOp::Mul => x.checked_mul(*y),
                ArithOp::Div => unreachable!(),
            };
            Int(r.ok_or_else(|| Error::Arithmetic("integer overflow".into()))?)
        }
        _ => {
            let x = slot_dec(a)?;
            let y = slot_dec(b)?;
            Dec(match op {
                ArithOp::Add => x.add(y),
                ArithOp::Sub => x.sub(y),
                ArithOp::Mul => x.mul(y),
                ArithOp::Div => x.div(y)?,
            })
        }
    })
}

fn slot_f64(s: &Slot<'_>) -> Result<f64> {
    match s {
        Slot::F64(x) => Ok(*x),
        Slot::Int(x) => Ok(*x as f64),
        Slot::Dec(d) => Ok(d.to_f64()),
        other => Err(Error::Type(format!("expected numeric, got {other:?}"))),
    }
}

fn slot_dec(s: &Slot<'_>) -> Result<Dec> {
    match s {
        Slot::Dec(d) => Ok(*d),
        Slot::Int(x) => Ok(Dec::from_int(*x)),
        other => Err(Error::Type(format!("expected numeric, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::compile::lower;
    use crate::eval::{eval, eval_pred};
    use taurus_common::{Date32, Value};
    use taurus_page::{encode_record, RecordMeta};

    fn layout() -> RecordLayout {
        RecordLayout::new(vec![
            DataType::Int, // 0 quantity
            DataType::Decimal {
                precision: 15,
                scale: 2,
            }, // 1 discount
            DataType::Date, // 2 shipdate
            DataType::Char(10), // 3 shipmode
            DataType::Varchar(25), // 4 type
        ])
    }

    fn record(vals: &[Value]) -> Vec<u8> {
        let mut b = Vec::new();
        encode_record(&layout(), vals, RecordMeta::ordinary(1), None, &mut b).unwrap();
        b
    }

    fn identity_map(n: usize) -> Vec<u16> {
        (0..n as u16).collect()
    }

    fn run(e: &Expr, vals: &[Value]) -> TriBool {
        let ir = lower(e).unwrap();
        let l = layout();
        let p = CompiledPredicate::compile(&ir, &l, &identity_map(5)).unwrap();
        let bytes = record(vals);
        let view = RecordView::new(&bytes, &l);
        let mut offsets = Vec::new();
        p.eval_record(&view, &mut offsets).unwrap()
    }

    fn sample_rows() -> Vec<Vec<Value>> {
        vec![
            vec![
                Value::Int(24),
                Value::Decimal(Dec::parse("0.06").unwrap()),
                Value::Date(Date32::parse("1994-03-15").unwrap()),
                Value::str("MAIL"),
                Value::str("PROMO BURNISHED COPPER"),
            ],
            vec![
                Value::Int(25),
                Value::Decimal(Dec::parse("0.01").unwrap()),
                Value::Date(Date32::parse("1995-03-15").unwrap()),
                Value::str("AIR"),
                Value::str("SMALL PLATED BRASS"),
            ],
            vec![
                Value::Null,
                Value::Decimal(Dec::parse("0.07").unwrap()),
                Value::Date(Date32::parse("1994-01-01").unwrap()),
                Value::str("SHIP"),
                Value::str("STANDARD ANODIZED TIN"),
            ],
        ]
    }

    fn predicates() -> Vec<Expr> {
        vec![
            // TPC-H Q6 shape.
            Expr::and(vec![
                Expr::ge(Expr::col(2), Expr::date("1994-01-01")),
                Expr::lt(Expr::col(2), Expr::date("1995-01-01")),
                Expr::between(Expr::col(1), Expr::dec("0.05"), Expr::dec("0.07")),
                Expr::lt(Expr::col(0), Expr::int(25)),
            ]),
            // Listing 4 shape.
            Expr::or(vec![
                Expr::and(vec![
                    Expr::gt(Expr::col(0), Expr::int(1)),
                    Expr::gt(Expr::col(1), Expr::dec("0.02")),
                ]),
                Expr::ge(Expr::col(2), Expr::date("1995-01-01")),
            ]),
            Expr::like(Expr::col(4), "PROMO%"),
            Expr::not_like(Expr::col(4), "%BRASS"),
            Expr::in_list(Expr::col(3), vec![Value::str("MAIL"), Value::str("SHIP")]),
            Expr::eq(Expr::ExtractYear(Box::new(Expr::col(2))), Expr::int(1994)),
            Expr::IsNull {
                expr: Box::new(Expr::col(0)),
                negated: false,
            },
            Expr::gt(Expr::mul(Expr::col(1), Expr::int(100)), Expr::int(5)),
            Expr::eq(
                Expr::Substr {
                    expr: Box::new(Expr::col(4)),
                    from: 1,
                    len: 5,
                },
                Expr::str("PROMO"),
            ),
        ]
    }

    /// The §V-B2 correctness requirement: storage-side (VM) evaluation must
    /// equal compute-side (interpreter) evaluation on every row.
    #[test]
    fn vm_agrees_with_interpreter() {
        for (pi, p) in predicates().iter().enumerate() {
            for (ri, row) in sample_rows().iter().enumerate() {
                let expect = match eval_pred(p, row).unwrap() {
                    Some(true) => TriBool::True,
                    Some(false) => TriBool::False,
                    None => TriBool::Unknown,
                };
                let got = run(p, row);
                assert_eq!(got, expect, "predicate #{pi} row #{ri}: {p}");
            }
        }
    }

    #[test]
    fn shortcut_false_wins_over_null() {
        // col0 IS NULL in row 2 -> (col0 < 25) is Unknown, but AND with a
        // definite false must still be False.
        let p = Expr::and(vec![
            Expr::lt(Expr::col(0), Expr::int(25)),
            Expr::eq(Expr::col(3), Expr::str("NOPE")),
        ]);
        assert_eq!(run(&p, &sample_rows()[2]), TriBool::False);
    }

    #[test]
    fn projection_expression_arithmetic_matches() {
        // Not just predicates: arithmetic results agree too (via a cmp).
        let e = Expr::gt(
            Expr::mul(Expr::col(1), Expr::sub(Expr::int(1), Expr::col(1))),
            Expr::dec("0.05"),
        );
        for row in sample_rows() {
            let expect = eval(&e, &row).unwrap();
            let got = run(&e, &row);
            let expect_tri = match expect {
                Value::Null => TriBool::Unknown,
                Value::Int(0) => TriBool::False,
                Value::Int(_) => TriBool::True,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(got, expect_tri);
        }
    }

    #[test]
    fn compile_rejects_unmapped_columns() {
        let ir = lower(&Expr::gt(Expr::col(3), Expr::int(0))).unwrap();
        let l = layout();
        // col 3 not stored in this (projected) record.
        let mut map = identity_map(5);
        map[3] = u16::MAX;
        assert!(CompiledPredicate::compile(&ir, &l, &map).is_err());
    }

    #[test]
    fn compile_rejects_backward_branches() {
        let ir = IrProgram {
            instrs: vec![
                IrInstr::LoadConst { dst: 0, idx: 0 },
                IrInstr::Jmp { target: 0 },
                IrInstr::Ret { src: 0 },
            ],
            consts: vec![Value::Int(1)],
            n_regs: 1,
        };
        let l = layout();
        assert!(CompiledPredicate::compile(&ir, &l, &identity_map(5)).is_err());
    }

    /// Randomized differential test: VM == interpreter on random rows for a
    /// set of structurally varied predicates.
    #[test]
    fn differential_random_rows() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xDB_CAFE);
        let modes = ["MAIL", "SHIP", "AIR", "RAIL", "TRUCK"];
        let types = ["PROMO X", "SMALL Y", "STANDARD Z", "PROMO BRASS"];
        for _ in 0..500 {
            let row = vec![
                if rng.gen_bool(0.1) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..60))
                },
                Value::Decimal(Dec {
                    raw: rng.gen_range(0..11),
                    scale: 2,
                }),
                Value::Date(Date32(rng.gen_range(8766..10592))),
                Value::str(modes[rng.gen_range(0..modes.len())]),
                Value::str(types[rng.gen_range(0..types.len())]),
            ];
            for p in predicates() {
                let expect = match eval_pred(&p, &row) {
                    Ok(Some(true)) => TriBool::True,
                    Ok(Some(false)) => TriBool::False,
                    Ok(None) => TriBool::Unknown,
                    Err(_) => continue,
                };
                assert_eq!(run(&p, &row), expect, "{p} on {row:?}");
            }
        }
    }
}
