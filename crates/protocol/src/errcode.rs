//! The stable error-code table: `taurus_common::Error` ⇄ wire codes.
//!
//! One table, one exhaustive `match` per direction — adding an `Error`
//! variant fails **this crate's build** (non-exhaustive match), never a
//! deployed client. Only the variant's *inner message* crosses the wire
//! (the same text `Display` shows); `Debug` renderings, which leak Rust
//! type structure and are not a stable format, never do.

use taurus_common::Error;

/// The wire code for an error variant. Codes are a published contract:
/// append-only, never renumbered.
pub fn error_code(e: &Error) -> u16 {
    match e {
        Error::Parse(_) => 1,
        Error::Type(_) => 2,
        Error::Arithmetic(_) => 3,
        Error::Corruption(_) => 4,
        Error::NotFound(_) => 5,
        Error::InvalidState(_) => 6,
        Error::NameResolution(_) => 7,
        Error::Unsupported(_) => 8,
        Error::Internal(_) => 9,
        Error::Overloaded(_) => 10,
        Error::DeadlineExceeded(_) => 11,
        Error::Verify(_) => 12,
    }
}

/// Is a wire code worth an automatic client retry? `Overloaded` (10) and
/// `DeadlineExceeded` (11) both mean "nothing committed, capacity/time
/// ran out" — a fresh attempt is safe and often succeeds once load or
/// the brownout passes. Everything else is deterministic: retrying a
/// parse error or a missing table yields the same failure.
pub fn is_retryable(code: u16) -> bool {
    matches!(code, 10 | 11)
}

/// Split an error into `(code, client-safe message)` for an error frame.
pub fn encode_error(e: &Error) -> (u16, String) {
    let m = match e {
        Error::Parse(m)
        | Error::Type(m)
        | Error::Arithmetic(m)
        | Error::Corruption(m)
        | Error::NotFound(m)
        | Error::InvalidState(m)
        | Error::NameResolution(m)
        | Error::Unsupported(m)
        | Error::Internal(m)
        | Error::Overloaded(m)
        | Error::DeadlineExceeded(m)
        | Error::Verify(m) => m.clone(),
    };
    (error_code(e), m)
}

/// Rebuild a structured error from a wire `(code, message)` pair, so
/// client-side `matches!(err, Error::NotFound(_))` works exactly like
/// in-process. Unknown codes (a newer server) degrade to
/// [`Error::Internal`] with the code preserved in the message.
pub fn decode_error(code: u16, message: String) -> Error {
    match code {
        1 => Error::Parse(message),
        2 => Error::Type(message),
        3 => Error::Arithmetic(message),
        4 => Error::Corruption(message),
        5 => Error::NotFound(message),
        6 => Error::InvalidState(message),
        7 => Error::NameResolution(message),
        8 => Error::Unsupported(message),
        9 => Error::Internal(message),
        10 => Error::Overloaded(message),
        11 => Error::DeadlineExceeded(message),
        12 => Error::Verify(message),
        _ => Error::Internal(format!("unknown wire error code {code}: {message}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Error> {
        // One instance per variant; `error_code`'s exhaustive match is
        // what guarantees a new variant cannot be forgotten here without
        // the compiler flagging the table first.
        vec![
            Error::Parse("p".into()),
            Error::Type("t".into()),
            Error::Arithmetic("a".into()),
            Error::Corruption("c".into()),
            Error::NotFound("n".into()),
            Error::InvalidState("i".into()),
            Error::NameResolution("r".into()),
            Error::Unsupported("u".into()),
            Error::Internal("x".into()),
            Error::Overloaded("o".into()),
            Error::DeadlineExceeded("d".into()),
            Error::Verify("v".into()),
        ]
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes: Vec<u16> = all_variants().iter().map(error_code).collect();
        // Published contract — these exact numbers, in declaration order.
        // Append-only: codes 1–9 predate the governance variants and must
        // never shift under them.
        assert_eq!(codes[..9], [1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
    }

    #[test]
    fn only_governance_codes_are_retryable() {
        for e in all_variants() {
            let code = error_code(&e);
            let expect = matches!(e, Error::Overloaded(_) | Error::DeadlineExceeded(_));
            assert_eq!(is_retryable(code), expect, "{e:?}");
        }
        assert!(!is_retryable(999));
    }

    #[test]
    fn every_variant_roundtrips() {
        for e in all_variants() {
            let (code, msg) = encode_error(&e);
            assert_eq!(decode_error(code, msg), e, "{e:?}");
        }
    }

    #[test]
    fn no_debug_leakage() {
        let e = Error::InvalidState("replica lag 12 exceeds max 4".into());
        let (_, msg) = encode_error(&e);
        // The message is the inner text, not `InvalidState("...")`.
        assert_eq!(msg, "replica lag 12 exceeds max 4");
        assert!(!msg.contains("InvalidState"));
        // And the client-side rendering matches in-process Display.
        let (code, msg) = encode_error(&e);
        assert_eq!(decode_error(code, msg).to_string(), e.to_string());
    }

    #[test]
    fn unknown_code_degrades_to_internal() {
        match decode_error(999, "future".into()) {
            Error::Internal(m) => assert!(m.contains("999") && m.contains("future")),
            other => panic!("{other:?}"),
        }
    }
}
