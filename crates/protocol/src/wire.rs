//! Primitive wire codecs: little-endian scalars, strings and
//! [`Value`]s, plus a bounds-checked [`Cursor`] for decoding.
//!
//! Decoding never trusts the peer: every read is length-checked and a
//! short buffer surfaces as [`Error::Corruption`] naming the offset, so
//! a truncated or malicious frame can neither panic the server nor read
//! out of bounds.

use taurus_common::value::{Date32, Dec};
use taurus_common::{Error, Result, Value};

/// Value tags. Stable wire contract — append-only, never renumber.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DECIMAL: u8 = 2;
const TAG_DATE: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_DOUBLE: u8 = 5;

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i128(buf: &mut Vec<u8>, v: i128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// `u32` length + UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Tagged value: `u8` tag + fixed-width or length-prefixed payload.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, TAG_NULL),
        Value::Int(i) => {
            put_u8(buf, TAG_INT);
            put_i64(buf, *i);
        }
        Value::Decimal(d) => {
            put_u8(buf, TAG_DECIMAL);
            put_i128(buf, d.raw);
            put_u8(buf, d.scale);
        }
        Value::Date(d) => {
            put_u8(buf, TAG_DATE);
            put_i32(buf, d.0);
        }
        Value::Str(s) => {
            put_u8(buf, TAG_STR);
            put_str(buf, s);
        }
        Value::Double(x) => {
            put_u8(buf, TAG_DOUBLE);
            put_f64(buf, *x);
        }
    }
}

/// A bounds-checked reader over one frame's payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corruption(format!(
                "wire: truncated frame (need {n} bytes at offset {}, have {})",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    // lint:allow(panic) notes: each `try_into().unwrap()` below converts
    // a slice `take(N)?` just produced with exactly N bytes — infallible.
    pub fn u16(&mut self) -> Result<u16> {
        // lint:allow(panic): take(2) returned exactly 2 bytes
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32> {
        // lint:allow(panic): take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        // lint:allow(panic): take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32> {
        // lint:allow(panic): take(4) returned exactly 4 bytes
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        // lint:allow(panic): take(8) returned exactly 8 bytes
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i128(&mut self) -> Result<i128> {
        // lint:allow(panic): take(16) returned exactly 16 bytes
        Ok(i128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corruption("wire: invalid UTF-8 in string".into()))
    }

    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(self.i64()?),
            TAG_DECIMAL => {
                let raw = self.i128()?;
                let scale = self.u8()?;
                Value::Decimal(Dec::new(raw, scale))
            }
            TAG_DATE => Value::Date(Date32(self.i32()?)),
            TAG_STR => Value::str(self.str()?),
            TAG_DOUBLE => Value::Double(self.f64()?),
            t => {
                return Err(Error::Corruption(format!(
                    "wire: unknown value tag {t} at offset {}",
                    self.pos - 1
                )))
            }
        })
    }

    /// Assert the whole payload was consumed — trailing garbage means
    /// encoder/decoder disagreement, which must not pass silently.
    pub fn done(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(Error::Corruption(format!(
                "wire: {} trailing bytes after frame payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        put_value(&mut buf, v);
        let mut cur = Cursor::new(&buf);
        let out = cur.value().unwrap();
        cur.done().unwrap();
        out
    }

    #[test]
    fn value_roundtrips() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Decimal(Dec::new(-123456789012345678901234567890i128, 7)),
            Value::Decimal(Dec::new(0, 0)),
            Value::Date(Date32(-719468)),
            Value::Str(std::sync::Arc::from("")),
            Value::str("héllo wörld ✓"),
            Value::Double(-0.0),
            Value::Double(f64::MAX),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
        // NaN round-trips bit-exactly even though NaN != NaN.
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Double(f64::NAN));
        match Cursor::new(&buf).value().unwrap() {
            Value::Double(x) => assert!(x.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_is_corruption_not_panic() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::str("abcdef"));
        for cut in 0..buf.len() {
            let err = Cursor::new(&buf[..cut]).value().unwrap_err();
            assert!(matches!(err, Error::Corruption(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_rejected() {
        let err = Cursor::new(&[99]).value().unwrap_err();
        assert!(err.to_string().contains("unknown value tag"), "{err}");
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Null);
        buf.push(0);
        let mut cur = Cursor::new(&buf);
        cur.value().unwrap();
        assert!(cur.done().is_err());
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 4); // TAG_STR
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = Cursor::new(&buf).value().unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }
}
