//! The Taurus wire protocol: what a compute front end speaks to its
//! clients.
//!
//! The paper's architecture exists to serve many concurrent clients
//! from shared storage; this crate is the client-facing half of that
//! contract, deliberately engine-free: it depends only on
//! `taurus-common` (values, batches, errors) so thin clients never link
//! the storage engine.
//!
//! ## Frame layout
//!
//! Every message is one length-prefixed frame:
//!
//! ```text
//! u32 LE  frame length (bytes after this prefix; includes ver+opcode)
//! u8      protocol version (PROTOCOL_VERSION)
//! u8      opcode
//! ...     opcode-specific payload
//! ```
//!
//! The length prefix is capped at [`MAX_FRAME`] so a corrupt or hostile
//! peer cannot make the receiver allocate unboundedly. Result rows
//! travel as [`Opcode::RowBatch`] frames encoded *straight from* the
//! executor's [`taurus_common::RowBatch`] — one frame per batch, no
//! per-row rematerialization on the serving path — and a stream is
//! terminated by exactly one [`Opcode::EndOfStream`] (with row/batch
//! counts and the id of the node that served it) or one
//! [`Opcode::Error`] frame.
//!
//! Errors cross the wire as stable numeric codes plus the client-safe
//! *message* of the [`taurus_common::Error`] variant (see [`errcode`]):
//! never `Debug` renderings, and the code table is an exhaustive match
//! so adding an error variant fails this crate's build instead of a
//! deployed client.

pub mod errcode;
pub mod message;
pub mod wire;

pub use errcode::{decode_error, encode_error, error_code, is_retryable};
pub use message::{
    decode_message, encode_row_batch, read_frame, write_frame, BuilderSpec, ColSel, DmlRequest,
    Message, Opcode, QueryRequest, WireAggFunc, WireExpr, MASTER_NODE, MAX_FRAME, PROTOCOL_VERSION,
};
