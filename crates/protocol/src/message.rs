//! Frame I/O and typed messages.
//!
//! Frame I/O ([`read_frame`]/[`write_frame`]) speaks `std::io` — an I/O
//! error there means the *connection* failed (peer gone, timeout).
//! Payload decoding ([`decode_message`]) speaks `taurus_common::Result`
//! — an error there means the bytes were bad, which a server answers
//! with an [`Message::Error`] frame rather than a hangup. Keeping the
//! two layers' error channels apart is what lets a session distinguish
//! "client disconnected" from "client sent garbage".

use std::io::{self, Read, Write};

use taurus_common::schema::Row;
use taurus_common::{Error, Result, RowBatch, Value};

use crate::wire::{put_str, put_u16, put_u32, put_u64, put_u8, put_value, Cursor};

/// Bumped only on incompatible layout changes; a mismatch is refused at
/// frame level, before any payload is interpreted.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on one frame's payload (64 MiB): a hostile length prefix
/// must not drive the receiver's allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Node id `0` is always the master; replica `i` serves as node `i + 1`.
/// Carried in [`Message::EndOfStream`] so clients (and the routing
/// tests) can observe where a read actually ran.
pub const MASTER_NODE: u32 = 0;

/// Frame opcodes. Stable wire contract — append-only, never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Client → server, first frame: `client_name: str, tenant: u32`.
    /// The tenant id scopes the session's NDP admission quota and
    /// per-tenant metrics (`0` = the anonymous default tenant).
    Hello = 1,
    /// Server → client handshake reply: `server_name: str, nodes: u32`.
    Welcome = 2,
    /// Client → server: a [`QueryRequest`].
    Query = 3,
    /// Server → client: one result batch (`width: u32, rows: u32`,
    /// row-major values).
    RowBatch = 4,
    /// Server → client: end of a result stream
    /// (`rows: u64, batches: u64, node: u32`).
    EndOfStream = 5,
    /// Either direction: `code: u16, message: str` (see [`crate::errcode`]).
    Error = 6,
    /// Client → server: request the metrics scrape (empty payload).
    Stats = 7,
    /// Server → client: the scrape text (`text: str`).
    StatsText = 8,
    /// Client → server: a [`DmlRequest`].
    Dml = 9,
    /// Server → client: DML committed (`commit_lsn: u64`).
    DmlOk = 10,
}

impl Opcode {
    pub fn from_u8(b: u8) -> Result<Opcode> {
        Ok(match b {
            1 => Opcode::Hello,
            2 => Opcode::Welcome,
            3 => Opcode::Query,
            4 => Opcode::RowBatch,
            5 => Opcode::EndOfStream,
            6 => Opcode::Error,
            7 => Opcode::Stats,
            8 => Opcode::StatsText,
            9 => Opcode::Dml,
            10 => Opcode::DmlOk,
            _ => return Err(Error::Corruption(format!("wire: unknown opcode {b}"))),
        })
    }
}

/// Write one frame: length prefix, version, opcode, payload.
pub fn write_frame(w: &mut impl Write, op: Opcode, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let len = (payload.len() + 2) as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[PROTOCOL_VERSION, op as u8])?;
    w.write_all(payload)
}

/// Read one frame, returning `(opcode_byte, payload)`. Length and
/// version are validated here; an unknown opcode byte is left for
/// [`decode_message`] so the server can answer it with an error frame
/// instead of dropping the connection.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u8, Vec<u8>)> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr) as usize;
    if !(2..=MAX_FRAME + 2).contains(&len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wire: frame length {len} out of bounds"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    if body[0] != PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "wire: protocol version {} (expected {PROTOCOL_VERSION})",
                body[0]
            ),
        ));
    }
    let op = body[1];
    body.drain(..2);
    Ok((op, body))
}

/// Aggregate functions on the wire, mirroring the builder's `Agg`
/// constructors. Stable numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum WireAggFunc {
    CountStar = 0,
    Count = 1,
    Sum = 2,
    Min = 3,
    Max = 4,
    Avg = 5,
}

impl WireAggFunc {
    fn from_u8(b: u8) -> Result<WireAggFunc> {
        Ok(match b {
            0 => WireAggFunc::CountStar,
            1 => WireAggFunc::Count,
            2 => WireAggFunc::Sum,
            3 => WireAggFunc::Min,
            4 => WireAggFunc::Max,
            5 => WireAggFunc::Avg,
            _ => {
                return Err(Error::Corruption(format!(
                    "wire: unknown aggregate function {b}"
                )))
            }
        })
    }
}

/// A serialized query-builder expression: the 1:1 wire mirror of the
/// executor facade's `QExpr` (column names resolve server-side, against
/// the target table's schema).
#[derive(Clone, Debug, PartialEq)]
pub enum WireExpr {
    Col(String),
    Nth(u32),
    Lit(Value),
    /// Comparison: op ∈ {0 Eq, 1 Ne, 2 Lt, 3 Le, 4 Gt, 5 Ge}.
    Cmp(u8, Box<WireExpr>, Box<WireExpr>),
    And(Vec<WireExpr>),
    Or(Vec<WireExpr>),
    Not(Box<WireExpr>),
    /// Arithmetic: op ∈ {0 Add, 1 Sub, 2 Mul, 3 Div}.
    Arith(u8, Box<WireExpr>, Box<WireExpr>),
    Neg(Box<WireExpr>),
    Like {
        expr: Box<WireExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<WireExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        expr: Box<WireExpr>,
        lo: Box<WireExpr>,
        hi: Box<WireExpr>,
    },
    IsNull {
        expr: Box<WireExpr>,
        negated: bool,
    },
    ExtractYear(Box<WireExpr>),
}

/// Decode-side guard against stack exhaustion from hostile deep nesting.
const MAX_EXPR_DEPTH: u32 = 64;

fn put_expr(buf: &mut Vec<u8>, e: &WireExpr) {
    match e {
        WireExpr::Col(name) => {
            put_u8(buf, 1);
            put_str(buf, name);
        }
        WireExpr::Nth(i) => {
            put_u8(buf, 2);
            put_u32(buf, *i);
        }
        WireExpr::Lit(v) => {
            put_u8(buf, 3);
            put_value(buf, v);
        }
        WireExpr::Cmp(op, a, b) => {
            put_u8(buf, 4);
            put_u8(buf, *op);
            put_expr(buf, a);
            put_expr(buf, b);
        }
        WireExpr::And(xs) => {
            put_u8(buf, 5);
            put_u32(buf, xs.len() as u32);
            xs.iter().for_each(|x| put_expr(buf, x));
        }
        WireExpr::Or(xs) => {
            put_u8(buf, 6);
            put_u32(buf, xs.len() as u32);
            xs.iter().for_each(|x| put_expr(buf, x));
        }
        WireExpr::Not(a) => {
            put_u8(buf, 7);
            put_expr(buf, a);
        }
        WireExpr::Arith(op, a, b) => {
            put_u8(buf, 8);
            put_u8(buf, *op);
            put_expr(buf, a);
            put_expr(buf, b);
        }
        WireExpr::Neg(a) => {
            put_u8(buf, 9);
            put_expr(buf, a);
        }
        WireExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            put_u8(buf, 10);
            put_expr(buf, expr);
            put_str(buf, pattern);
            put_u8(buf, *negated as u8);
        }
        WireExpr::InList {
            expr,
            list,
            negated,
        } => {
            put_u8(buf, 11);
            put_expr(buf, expr);
            put_u32(buf, list.len() as u32);
            list.iter().for_each(|v| put_value(buf, v));
            put_u8(buf, *negated as u8);
        }
        WireExpr::Between { expr, lo, hi } => {
            put_u8(buf, 12);
            put_expr(buf, expr);
            put_expr(buf, lo);
            put_expr(buf, hi);
        }
        WireExpr::IsNull { expr, negated } => {
            put_u8(buf, 13);
            put_expr(buf, expr);
            put_u8(buf, *negated as u8);
        }
        WireExpr::ExtractYear(a) => {
            put_u8(buf, 14);
            put_expr(buf, a);
        }
    }
}

fn get_expr(cur: &mut Cursor<'_>, depth: u32) -> Result<WireExpr> {
    if depth > MAX_EXPR_DEPTH {
        return Err(Error::Corruption(format!(
            "wire: expression nesting exceeds {MAX_EXPR_DEPTH}"
        )));
    }
    let sub =
        |cur: &mut Cursor<'_>| -> Result<Box<WireExpr>> { Ok(Box::new(get_expr(cur, depth + 1)?)) };
    Ok(match cur.u8()? {
        1 => WireExpr::Col(cur.str()?),
        2 => WireExpr::Nth(cur.u32()?),
        3 => WireExpr::Lit(cur.value()?),
        4 => {
            let op = cur.u8()?;
            WireExpr::Cmp(op, sub(cur)?, sub(cur)?)
        }
        5 => {
            let n = cur.u32()?;
            WireExpr::And(get_expr_vec(cur, n, depth)?)
        }
        6 => {
            let n = cur.u32()?;
            WireExpr::Or(get_expr_vec(cur, n, depth)?)
        }
        7 => WireExpr::Not(sub(cur)?),
        8 => {
            let op = cur.u8()?;
            WireExpr::Arith(op, sub(cur)?, sub(cur)?)
        }
        9 => WireExpr::Neg(sub(cur)?),
        10 => WireExpr::Like {
            expr: sub(cur)?,
            pattern: cur.str()?,
            negated: cur.u8()? != 0,
        },
        11 => {
            let expr = sub(cur)?;
            let n = cur.u32()?;
            let mut list = Vec::new();
            for _ in 0..n {
                list.push(cur.value()?);
            }
            WireExpr::InList {
                expr,
                list,
                negated: cur.u8()? != 0,
            }
        }
        12 => WireExpr::Between {
            expr: sub(cur)?,
            lo: sub(cur)?,
            hi: sub(cur)?,
        },
        13 => WireExpr::IsNull {
            expr: sub(cur)?,
            negated: cur.u8()? != 0,
        },
        14 => WireExpr::ExtractYear(sub(cur)?),
        t => return Err(Error::Corruption(format!("wire: unknown expr tag {t}"))),
    })
}

fn get_expr_vec(cur: &mut Cursor<'_>, n: u32, depth: u32) -> Result<Vec<WireExpr>> {
    let mut xs = Vec::new();
    for _ in 0..n {
        xs.push(get_expr(cur, depth + 1)?);
    }
    Ok(xs)
}

/// A column reference by name or schema position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColSel {
    Name(String),
    Pos(u32),
}

fn put_colsel(buf: &mut Vec<u8>, c: &ColSel) {
    match c {
        ColSel::Name(n) => {
            put_u8(buf, 0);
            put_str(buf, n);
        }
        ColSel::Pos(p) => {
            put_u8(buf, 1);
            put_u32(buf, *p);
        }
    }
}

fn get_colsel(cur: &mut Cursor<'_>) -> Result<ColSel> {
    Ok(match cur.u8()? {
        0 => ColSel::Name(cur.str()?),
        1 => ColSel::Pos(cur.u32()?),
        t => {
            return Err(Error::Corruption(format!(
                "wire: unknown column selector tag {t}"
            )))
        }
    })
}

/// A serialized query-builder chain: the wire mirror of
/// `Session::query(table)` plus the fluent calls. Resolution (names,
/// index coverage, group-prefix checks) happens server-side, exactly as
/// it would in-process.
#[derive(Clone, Debug, PartialEq)]
pub struct BuilderSpec {
    pub table: String,
    pub via_index: Option<String>,
    /// AND-combined predicate conjuncts.
    pub filters: Vec<WireExpr>,
    /// Output columns (empty = builder default: all columns, or
    /// `group ++ aggs` for aggregates).
    pub select: Vec<ColSel>,
    pub group: Vec<ColSel>,
    pub aggs: Vec<(WireAggFunc, Option<WireExpr>)>,
    /// `(result position, descending)`.
    pub order: Vec<(u32, bool)>,
    pub limit: Option<u64>,
    /// Parallel-query degree.
    pub parallel: Option<u32>,
    /// Session NDP switch for this query.
    pub ndp: bool,
}

impl BuilderSpec {
    /// A plain full-table request; callers then fill in the fluent
    /// fields they need.
    pub fn table(name: &str) -> BuilderSpec {
        BuilderSpec {
            table: name.to_string(),
            via_index: None,
            filters: Vec::new(),
            select: Vec::new(),
            group: Vec::new(),
            aggs: Vec::new(),
            order: Vec::new(),
            limit: None,
            parallel: None,
            ndp: true,
        }
    }
}

/// A read request.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryRequest {
    /// Execute a plan registered under `name` on the serving node (the
    /// TPC-H suite is pre-registered by `taurus-server`), optionally
    /// with a parallel-query degree.
    Named { name: String, pq: Option<u32> },
    /// Execute a serialized builder chain.
    Builder(BuilderSpec),
    /// MVCC point lookup by primary key.
    Lookup { table: String, pk: Vec<Value> },
    /// SQL text, parsed and bound on the serving node (`taurus-sql`).
    /// `ndp` mirrors `BuilderSpec::ndp`: whether the binder may apply
    /// NDP pushdown decisions. Parse/bind failures come back as wire
    /// error code 1 (Parse) with the positioned diagnostic.
    Sql { text: String, ndp: bool },
}

/// A write request. Always routed to the master; one request = one
/// transaction (begin/apply/commit), answered by `DmlOk { commit_lsn }`
/// which advances the connection's read-your-LSN stickiness bound.
#[derive(Clone, Debug, PartialEq)]
pub enum DmlRequest {
    Insert { table: String, row: Row },
    Update { table: String, row: Row },
    Delete { table: String, pk: Vec<Value> },
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    Hello { client: String, tenant: u32 },
    Welcome { server: String, nodes: u32 },
    Query(QueryRequest),
    RowBatch(RowBatch),
    EndOfStream { rows: u64, batches: u64, node: u32 },
    Error { code: u16, message: String },
    Stats,
    StatsText(String),
    Dml(DmlRequest),
    DmlOk { commit_lsn: u64 },
}

/// Encode a [`RowBatch`] payload straight from the executor's batch —
/// the serving path calls this on each `RowStream::next_batch` result,
/// so rows go scan pipeline → batch → socket with no intermediate
/// per-row representation.
pub fn encode_row_batch(b: &RowBatch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + b.len() * (b.width() * 9 + 1));
    put_u32(&mut buf, b.width() as u32);
    put_u32(&mut buf, b.len() as u32);
    for row in b.rows() {
        for v in row {
            put_value(&mut buf, v);
        }
    }
    buf
}

fn decode_row_batch(cur: &mut Cursor<'_>) -> Result<RowBatch> {
    let width = cur.u32()? as usize;
    let rows = cur.u32()? as usize;
    // Cheap sanity bound: even all-Null rows cost one byte per value.
    if width.saturating_mul(rows) > cur.remaining().saturating_mul(2).max(1) {
        return Err(Error::Corruption(format!(
            "wire: row batch claims {rows} x {width} values in {} bytes",
            cur.remaining()
        )));
    }
    let mut b = RowBatch::with_capacity(width, rows.max(1));
    let mut row = Vec::with_capacity(width);
    for _ in 0..rows {
        row.clear();
        for _ in 0..width {
            row.push(cur.value()?);
        }
        b.push_row(row.drain(..));
    }
    Ok(b)
}

impl Message {
    pub fn opcode(&self) -> Opcode {
        match self {
            Message::Hello { .. } => Opcode::Hello,
            Message::Welcome { .. } => Opcode::Welcome,
            Message::Query(_) => Opcode::Query,
            Message::RowBatch(_) => Opcode::RowBatch,
            Message::EndOfStream { .. } => Opcode::EndOfStream,
            Message::Error { .. } => Opcode::Error,
            Message::Stats => Opcode::Stats,
            Message::StatsText(_) => Opcode::StatsText,
            Message::Dml(_) => Opcode::Dml,
            Message::DmlOk { .. } => Opcode::DmlOk,
        }
    }

    /// Encode this message's payload (everything after the opcode).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Message::Hello { client, tenant } => {
                put_str(&mut buf, client);
                put_u32(&mut buf, *tenant);
            }
            Message::Welcome { server, nodes } => {
                put_str(&mut buf, server);
                put_u32(&mut buf, *nodes);
            }
            Message::Query(q) => put_query(&mut buf, q),
            Message::RowBatch(b) => buf = encode_row_batch(b),
            Message::EndOfStream {
                rows,
                batches,
                node,
            } => {
                put_u64(&mut buf, *rows);
                put_u64(&mut buf, *batches);
                put_u32(&mut buf, *node);
            }
            Message::Error { code, message } => {
                put_u16(&mut buf, *code);
                put_str(&mut buf, message);
            }
            Message::Stats => {}
            Message::StatsText(text) => put_str(&mut buf, text),
            Message::Dml(d) => put_dml(&mut buf, d),
            Message::DmlOk { commit_lsn } => put_u64(&mut buf, *commit_lsn),
        }
        buf
    }

    /// Encode and write this message as one frame.
    pub fn write(&self, w: &mut impl Write) -> io::Result<()> {
        write_frame(w, self.opcode(), &self.encode_payload())
    }

    /// Read one frame and decode it (see the module docs for which
    /// errors mean "connection dead" vs "bad bytes").
    pub fn read(r: &mut impl Read) -> io::Result<Message> {
        let (op, payload) = read_frame(r)?;
        decode_message(op, &payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

fn put_query(buf: &mut Vec<u8>, q: &QueryRequest) {
    match q {
        QueryRequest::Named { name, pq } => {
            put_u8(buf, 1);
            put_str(buf, name);
            match pq {
                None => put_u8(buf, 0),
                Some(d) => {
                    put_u8(buf, 1);
                    put_u32(buf, *d);
                }
            }
        }
        QueryRequest::Builder(s) => {
            put_u8(buf, 2);
            put_str(buf, &s.table);
            match &s.via_index {
                None => put_u8(buf, 0),
                Some(ix) => {
                    put_u8(buf, 1);
                    put_str(buf, ix);
                }
            }
            put_u32(buf, s.filters.len() as u32);
            s.filters.iter().for_each(|f| put_expr(buf, f));
            put_u32(buf, s.select.len() as u32);
            s.select.iter().for_each(|c| put_colsel(buf, c));
            put_u32(buf, s.group.len() as u32);
            s.group.iter().for_each(|c| put_colsel(buf, c));
            put_u32(buf, s.aggs.len() as u32);
            for (f, input) in &s.aggs {
                put_u8(buf, *f as u8);
                match input {
                    None => put_u8(buf, 0),
                    Some(e) => {
                        put_u8(buf, 1);
                        put_expr(buf, e);
                    }
                }
            }
            put_u32(buf, s.order.len() as u32);
            for (pos, desc) in &s.order {
                put_u32(buf, *pos);
                put_u8(buf, *desc as u8);
            }
            match s.limit {
                None => put_u8(buf, 0),
                Some(n) => {
                    put_u8(buf, 1);
                    put_u64(buf, n);
                }
            }
            match s.parallel {
                None => put_u8(buf, 0),
                Some(d) => {
                    put_u8(buf, 1);
                    put_u32(buf, d);
                }
            }
            put_u8(buf, s.ndp as u8);
        }
        QueryRequest::Lookup { table, pk } => {
            put_u8(buf, 3);
            put_str(buf, table);
            put_u32(buf, pk.len() as u32);
            pk.iter().for_each(|v| put_value(buf, v));
        }
        QueryRequest::Sql { text, ndp } => {
            put_u8(buf, 4);
            put_str(buf, text);
            put_u8(buf, *ndp as u8);
        }
    }
}

fn get_values(cur: &mut Cursor<'_>) -> Result<Vec<Value>> {
    let n = cur.u32()?;
    let mut vs = Vec::new();
    for _ in 0..n {
        vs.push(cur.value()?);
    }
    Ok(vs)
}

/// Decode the tag-2 builder-chain payload (`QueryRequest::Builder`).
fn get_builder(cur: &mut Cursor<'_>) -> Result<BuilderSpec> {
    let table = cur.str()?;
    let via_index = match cur.u8()? {
        0 => None,
        _ => Some(cur.str()?),
    };
    let filters = {
        let n = cur.u32()?;
        get_expr_vec(cur, n, 0)?
    };
    let mut select = Vec::new();
    for _ in 0..cur.u32()? {
        select.push(get_colsel(cur)?);
    }
    let mut group = Vec::new();
    for _ in 0..cur.u32()? {
        group.push(get_colsel(cur)?);
    }
    let mut aggs = Vec::new();
    for _ in 0..cur.u32()? {
        let f = WireAggFunc::from_u8(cur.u8()?)?;
        let input = match cur.u8()? {
            0 => None,
            _ => Some(get_expr(cur, 0)?),
        };
        aggs.push((f, input));
    }
    let mut order = Vec::new();
    for _ in 0..cur.u32()? {
        let pos = cur.u32()?;
        order.push((pos, cur.u8()? != 0));
    }
    let limit = match cur.u8()? {
        0 => None,
        _ => Some(cur.u64()?),
    };
    let parallel = match cur.u8()? {
        0 => None,
        _ => Some(cur.u32()?),
    };
    let ndp = cur.u8()? != 0;
    Ok(BuilderSpec {
        table,
        via_index,
        filters,
        select,
        group,
        aggs,
        order,
        limit,
        parallel,
        ndp,
    })
}

/// Decode a [`QueryRequest`] payload. The leading tag byte is an
/// append-only published table (`crates/xtask/manifests/query_tags.txt`).
fn get_query(cur: &mut Cursor<'_>) -> Result<QueryRequest> {
    Ok(match cur.u8()? {
        1 => QueryRequest::Named {
            name: cur.str()?,
            pq: match cur.u8()? {
                0 => None,
                _ => Some(cur.u32()?),
            },
        },
        2 => QueryRequest::Builder(get_builder(cur)?),
        3 => QueryRequest::Lookup {
            table: cur.str()?,
            pk: get_values(cur)?,
        },
        4 => QueryRequest::Sql {
            text: cur.str()?,
            ndp: cur.u8()? != 0,
        },
        t => {
            return Err(Error::Corruption(format!(
                "wire: unknown query request tag {t}"
            )))
        }
    })
}

fn put_dml(buf: &mut Vec<u8>, d: &DmlRequest) {
    let (tag, table, values) = match d {
        DmlRequest::Insert { table, row } => (1u8, table, row),
        DmlRequest::Update { table, row } => (2u8, table, row),
        DmlRequest::Delete { table, pk } => (3u8, table, pk),
    };
    put_u8(buf, tag);
    put_str(buf, table);
    put_u32(buf, values.len() as u32);
    values.iter().for_each(|v| put_value(buf, v));
}

fn get_dml(cur: &mut Cursor<'_>) -> Result<DmlRequest> {
    let tag = cur.u8()?;
    let table = cur.str()?;
    let values = get_values(cur)?;
    Ok(match tag {
        1 => DmlRequest::Insert { table, row: values },
        2 => DmlRequest::Update { table, row: values },
        3 => DmlRequest::Delete { table, pk: values },
        t => return Err(Error::Corruption(format!("wire: unknown DML tag {t}"))),
    })
}

/// Decode one frame's payload into a typed [`Message`]. The whole
/// payload must be consumed — trailing bytes are rejected.
pub fn decode_message(op: u8, payload: &[u8]) -> Result<Message> {
    let mut cur = Cursor::new(payload);
    let msg = match Opcode::from_u8(op)? {
        Opcode::Hello => Message::Hello {
            client: cur.str()?,
            tenant: cur.u32()?,
        },
        Opcode::Welcome => Message::Welcome {
            server: cur.str()?,
            nodes: cur.u32()?,
        },
        Opcode::Query => Message::Query(get_query(&mut cur)?),
        Opcode::RowBatch => Message::RowBatch(decode_row_batch(&mut cur)?),
        Opcode::EndOfStream => Message::EndOfStream {
            rows: cur.u64()?,
            batches: cur.u64()?,
            node: cur.u32()?,
        },
        Opcode::Error => Message::Error {
            code: cur.u16()?,
            message: cur.str()?,
        },
        Opcode::Stats => Message::Stats,
        Opcode::StatsText => Message::StatsText(cur.str()?),
        Opcode::Dml => Message::Dml(get_dml(&mut cur)?),
        Opcode::DmlOk => Message::DmlOk {
            commit_lsn: cur.u64()?,
        },
    };
    cur.done()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::value::Dec;

    fn roundtrip(m: &Message) -> Message {
        let mut buf = Vec::new();
        m.write(&mut buf).unwrap();
        let mut r = io::Cursor::new(buf);
        let out = Message::read(&mut r).unwrap();
        assert_eq!(r.position() as usize, r.get_ref().len(), "consumed fully");
        out
    }

    fn sample_batch() -> RowBatch {
        let mut b = RowBatch::with_capacity(3, 4);
        b.push_row([Value::Int(1), Value::str("a"), Value::Null]);
        b.push_row([
            Value::Int(-2),
            Value::str("bb"),
            Value::Decimal(Dec::new(-505, 2)),
        ]);
        b
    }

    #[test]
    fn control_messages_roundtrip() {
        for m in [
            Message::Hello {
                client: "t".into(),
                tenant: 12,
            },
            Message::Welcome {
                server: "taurus-server/0.1.0".into(),
                nodes: 3,
            },
            Message::EndOfStream {
                rows: u64::MAX,
                batches: 7,
                node: 2,
            },
            Message::Error {
                code: 6,
                message: "busy".into(),
            },
            Message::Stats,
            Message::StatsText("a 1\nb 2\n".into()),
            Message::DmlOk { commit_lsn: 99 },
        ] {
            assert_eq!(roundtrip(&m), m, "{m:?}");
        }
    }

    /// Batch frames carry width + rows, not the sender's buffer
    /// capacity — compare contents, the wire-visible part.
    fn assert_same_rows(m: Message, want: &RowBatch) {
        match m {
            Message::RowBatch(got) => {
                assert_eq!(got.width(), want.width());
                assert_eq!(got.to_rows(), want.to_rows());
            }
            other => panic!("expected RowBatch, got {other:?}"),
        }
    }

    #[test]
    fn row_batch_roundtrips_without_rematerialization() {
        let b = sample_batch();
        let payload = encode_row_batch(&b);
        assert_same_rows(
            decode_message(Opcode::RowBatch as u8, &payload).unwrap(),
            &b,
        );
        // Zero-width COUNT(*)-style rows survive too.
        let mut zw = RowBatch::with_capacity(0, 2);
        zw.push_row([]);
        zw.push_row([]);
        assert_same_rows(roundtrip(&Message::RowBatch(zw.clone())), &zw);
    }

    #[test]
    fn query_requests_roundtrip() {
        let named = QueryRequest::Named {
            name: "Q6".into(),
            pq: Some(4),
        };
        let mut spec = BuilderSpec::table("lineitem");
        spec.via_index = Some("l_shipdate_idx".into());
        spec.filters = vec![
            WireExpr::Cmp(
                2,
                Box::new(WireExpr::Col("l_quantity".into())),
                Box::new(WireExpr::Lit(Value::Decimal(Dec::new(2400, 2)))),
            ),
            WireExpr::And(vec![
                WireExpr::IsNull {
                    expr: Box::new(WireExpr::Nth(3)),
                    negated: true,
                },
                WireExpr::Like {
                    expr: Box::new(WireExpr::Col("l_comment".into())),
                    pattern: "%care%".into(),
                    negated: false,
                },
                WireExpr::Between {
                    expr: Box::new(WireExpr::ExtractYear(Box::new(WireExpr::Col(
                        "l_shipdate".into(),
                    )))),
                    lo: Box::new(WireExpr::Lit(Value::Int(1994))),
                    hi: Box::new(WireExpr::Lit(Value::Int(1995))),
                },
                WireExpr::InList {
                    expr: Box::new(WireExpr::Col("l_returnflag".into())),
                    list: vec![Value::str("A"), Value::str("R")],
                    negated: true,
                },
                WireExpr::Not(Box::new(WireExpr::Or(vec![WireExpr::Neg(Box::new(
                    WireExpr::Arith(
                        2,
                        Box::new(WireExpr::Col("l_tax".into())),
                        Box::new(WireExpr::Lit(Value::Double(2.0))),
                    ),
                ))]))),
            ]),
        ];
        spec.select = vec![ColSel::Name("l_orderkey".into()), ColSel::Pos(5)];
        spec.order = vec![(1, true), (0, false)];
        spec.limit = Some(10);
        spec.parallel = Some(2);
        spec.ndp = false;
        let agg = {
            let mut s = BuilderSpec::table("orders");
            s.group = vec![ColSel::Name("o_orderpriority".into())];
            s.aggs = vec![
                (WireAggFunc::CountStar, None),
                (WireAggFunc::Sum, Some(WireExpr::Col("o_totalprice".into()))),
            ];
            s
        };
        for q in [
            named,
            QueryRequest::Builder(spec),
            QueryRequest::Builder(agg),
            QueryRequest::Lookup {
                table: "orders".into(),
                pk: vec![Value::Int(42)],
            },
            QueryRequest::Sql {
                text: "select count(*) from lineitem where l_quantity < 24".into(),
                ndp: true,
            },
            QueryRequest::Sql {
                text: String::new(),
                ndp: false,
            },
        ] {
            let m = Message::Query(q);
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn dml_roundtrips() {
        for d in [
            DmlRequest::Insert {
                table: "acct".into(),
                row: vec![Value::Int(1), Value::Int(100)],
            },
            DmlRequest::Update {
                table: "acct".into(),
                row: vec![Value::Int(1), Value::Int(99)],
            },
            DmlRequest::Delete {
                table: "acct".into(),
                pk: vec![Value::Int(1)],
            },
        ] {
            let m = Message::Dml(d);
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn version_mismatch_and_oversize_refused() {
        let mut buf = Vec::new();
        Message::Stats.write(&mut buf).unwrap();
        buf[4] = PROTOCOL_VERSION + 1; // version byte
        let err = Message::read(&mut io::Cursor::new(buf)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        let mut oversize = Vec::new();
        oversize.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = Message::read(&mut io::Cursor::new(oversize)).unwrap_err();
        assert!(err.to_string().contains("length"), "{err}");
    }

    #[test]
    fn deep_expr_nesting_refused() {
        let mut e = WireExpr::Lit(Value::Int(1));
        for _ in 0..200 {
            e = WireExpr::Not(Box::new(e));
        }
        let mut spec = BuilderSpec::table("t");
        spec.filters = vec![e];
        let payload = Message::Query(QueryRequest::Builder(spec)).encode_payload();
        let err = decode_message(Opcode::Query as u8, &payload).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn truncated_frames_are_clean_errors() {
        let mut buf = Vec::new();
        Message::Query(QueryRequest::Named {
            name: "Q1".into(),
            pq: None,
        })
        .write(&mut buf)
        .unwrap();
        for cut in 0..buf.len() {
            assert!(
                Message::read(&mut io::Cursor::new(buf[..cut].to_vec())).is_err(),
                "cut {cut} should not decode"
            );
        }
    }
}
