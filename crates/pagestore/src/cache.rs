//! The NDP descriptor cache (§IV-D1).
//!
//! "Initial performance tests revealed that NDP descriptor decoding caused
//! a bottleneck in Page Store CPU — a few milliseconds per decoding on
//! average … Instead of decoding descriptors and converting LLVM bitcode
//! for each NDP request, the first request caches the result which is
//! reused subsequently. (The cache key is computed by applying a hash
//! function to the NDP descriptor fields.) This optimization dramatically
//! reduced the average decoding time to less than 5 microseconds."
//!
//! Here the expensive step is [`CachedDescriptor::prepare`]: descriptor
//! decode + IR validation + VM compilation against the record layout. The
//! cache maps `fnv64(descriptor bytes)` to the prepared entry; collisions
//! are detected by byte comparison and treated as misses.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use taurus_common::{Metrics, Result};
use taurus_expr::descriptor::{fnv64, NdpDescriptor};
use taurus_expr::vector::VectorProgram;
use taurus_expr::vm::CompiledPredicate;
use taurus_page::RecordLayout;

/// A descriptor after the expensive decode + JIT step, ready for record
/// processing.
pub struct CachedDescriptor {
    pub desc: NdpDescriptor,
    /// Layout of the source (full) leaf records.
    pub layout: RecordLayout,
    /// Layout of projected records, if projection was requested.
    pub proj_layout: Option<RecordLayout>,
    /// Compiled predicate, if filtering was requested.
    pub predicate: Option<CompiledPredicate>,
    /// Column-at-a-time form of the same predicate, when its IR
    /// vectorizes (canonical compiler output always does; hand-built
    /// descriptors may not). `None` simply means record-at-a-time.
    pub vector: Option<VectorProgram>,
    /// The raw bytes (collision detection + diagnostics).
    pub bytes: Vec<u8>,
}

impl CachedDescriptor {
    /// The expensive path: decode, validate, and JIT-compile.
    pub fn prepare(bytes: &[u8]) -> Result<CachedDescriptor> {
        let desc = NdpDescriptor::decode(bytes)?;
        let layout = RecordLayout::new(desc.record_dtypes.clone());
        let proj_layout = desc
            .projection
            .as_ref()
            .map(|keep| layout.project(&keep.iter().map(|&k| k as usize).collect::<Vec<_>>()));
        let (predicate, vector) = match &desc.predicate_bitcode {
            Some(bc) => {
                let ir = taurus_expr::ir::IrProgram::decode_bitcode(bc)?;
                // Descriptor column references are already record
                // positions: identity map.
                let identity: Vec<u16> = (0..layout.n_cols() as u16).collect();
                let scalar = CompiledPredicate::compile(&ir, &layout, &identity)?;
                // Vectorization is best-effort: a descriptor whose IR is
                // valid but non-canonical still serves, record-at-a-time.
                let vector = VectorProgram::from_ir(&ir, &layout, &identity).ok();
                (Some(scalar), vector)
            }
            None => (None, None),
        };
        Ok(CachedDescriptor {
            desc,
            layout,
            proj_layout,
            predicate,
            vector,
            bytes: bytes.to_vec(),
        })
    }
}

/// The per-Page-Store descriptor cache.
pub struct DescriptorCache {
    enabled: bool,
    map: Mutex<HashMap<u64, Arc<CachedDescriptor>>>,
    metrics: Arc<Metrics>,
}

impl DescriptorCache {
    pub fn new(enabled: bool, metrics: Arc<Metrics>) -> DescriptorCache {
        DescriptorCache {
            enabled,
            map: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    /// Look up (or prepare and insert) the descriptor. Decode/compile time
    /// is metered into `ps_desc_decode_ns` so the §IV-D1 "ms → <5 µs"
    /// effect is measurable.
    pub fn get_or_prepare(&self, bytes: &[u8]) -> Result<Arc<CachedDescriptor>> {
        let key = fnv64(bytes);
        if self.enabled {
            if let Some(hit) = self.map.lock().get(&key) {
                if hit.bytes == bytes {
                    self.metrics.add(|m| &m.ps_desc_cache_hits, 1);
                    return Ok(hit.clone());
                }
            }
        }
        self.metrics.add(|m| &m.ps_desc_cache_misses, 1);
        let t0 = std::time::Instant::now();
        let prepared = Arc::new(CachedDescriptor::prepare(bytes)?);
        self.metrics
            .add(|m| &m.ps_desc_decode_ns, t0.elapsed().as_nanos() as u64);
        if self.enabled {
            self.map.lock().insert(key, prepared.clone());
        }
        Ok(prepared)
    }

    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::DataType;
    use taurus_expr::ast::Expr;
    use taurus_expr::compile::lower;

    fn descriptor_bytes(watermark: u64) -> Vec<u8> {
        let pred = lower(&Expr::gt(Expr::col(1), Expr::int(5))).unwrap();
        NdpDescriptor {
            index_id: 3,
            record_dtypes: vec![DataType::BigInt, DataType::Int],
            key_positions: vec![0],
            projection: Some(vec![0, 1]),
            predicate_bitcode: Some(pred.encode_bitcode()),
            aggregation: None,
            low_watermark: watermark,
        }
        .encode()
    }

    #[test]
    fn second_lookup_hits() {
        let m = Metrics::shared();
        let c = DescriptorCache::new(true, m.clone());
        let bytes = descriptor_bytes(10);
        let a = c.get_or_prepare(&bytes).unwrap();
        let b = c.get_or_prepare(&bytes).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = m.snapshot();
        assert_eq!((s.ps_desc_cache_hits, s.ps_desc_cache_misses), (1, 1));
        assert!(s.ps_desc_decode_ns > 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn different_descriptors_get_distinct_entries() {
        let c = DescriptorCache::new(true, Metrics::shared());
        let a = c.get_or_prepare(&descriptor_bytes(10)).unwrap();
        let b = c.get_or_prepare(&descriptor_bytes(11)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disabled_cache_always_prepares() {
        let m = Metrics::shared();
        let c = DescriptorCache::new(false, m.clone());
        let bytes = descriptor_bytes(10);
        c.get_or_prepare(&bytes).unwrap();
        c.get_or_prepare(&bytes).unwrap();
        let s = m.snapshot();
        assert_eq!(s.ps_desc_cache_hits, 0);
        assert_eq!(s.ps_desc_cache_misses, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn prepared_entry_has_compiled_pieces() {
        let c = DescriptorCache::new(true, Metrics::shared());
        let cd = c.get_or_prepare(&descriptor_bytes(10)).unwrap();
        assert!(cd.predicate.is_some());
        // Compiler-emitted bitcode is always canonical → vectorizable.
        assert!(cd.vector.is_some());
        assert!(cd.proj_layout.is_some());
        assert_eq!(cd.layout.n_cols(), 2);
    }

    #[test]
    fn garbage_descriptor_is_error() {
        let c = DescriptorCache::new(true, Metrics::shared());
        assert!(c.get_or_prepare(b"not a descriptor").is_err());
    }
}
