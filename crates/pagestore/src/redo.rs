//! Redo log records.
//!
//! Taurus masters never write pages — only log records (§II). Page Stores
//! apply these records to keep pages up to date; every application creates
//! a new page *version* stamped with the record's LSN, which is what lets
//! NDP batch reads request "page versions matching the LSN value"
//! (§IV-C4) while the B+ tree keeps changing.

use taurus_common::{Error, Lsn, PageNo, Result, SliceId, SpaceId, TrxId};
use taurus_page::Page;

/// Physical redo operations. Record-level bodies keep log volume small;
/// `NewPage` carries a full image (page creation, bulk load, splits).
///
/// The `Sys*` variants are **system records**: they target no page and are
/// never distributed to Page Stores — they exist because the log is the
/// only cross-node channel the architecture allows, and read replicas need
/// more than page deltas to serve queries: the catalog (`SysCatalog`,
/// `SysLoaded`, `SysShape`), the undo images that make replica MVCC exact
/// (`SysUndo`), and the transaction boundaries that gate visible-LSN
/// advancement (`SysTrxEnd`). Payload encodings for the catalog records
/// live with the engine (`taurus-ndp::replication`); this layer treats
/// them as bytes.
#[derive(Clone, Debug, PartialEq)]
pub enum RedoBody {
    /// Install a complete page image.
    NewPage(Vec<u8>),
    /// Insert an encoded record at the given slot position.
    InsertRecord {
        slot_idx: u16,
        rec: Vec<u8>,
    },
    /// Set or clear the delete mark of the record at `rec_at`.
    SetDeleteMark {
        rec_at: u16,
        mark: bool,
    },
    /// Overwrite bytes at an offset (update-in-place of fixed-width
    /// columns and header fields).
    WriteBytes {
        at: u16,
        bytes: Vec<u8>,
    },
    /// Update the leaf chain neighbour pointers.
    SetNext(PageNo),
    SetPrev(PageNo),
    /// Drop the page (space deallocation).
    FreePage,
    /// DDL: a table was created (opaque schema + index-definition payload;
    /// `space`/`page_no` on the record are 0).
    SysCatalog(Vec<u8>),
    /// Bulk-load completion: table statistics + per-index tree shapes
    /// (opaque payload). Doubles as a transaction-consistent boundary.
    SysLoaded(Vec<u8>),
    /// Write-ahead undo: the previous image of the row at `key` (record
    /// `space` = the index's space), pushed *before* the corresponding
    /// tree redo so a replica that has applied a write has always already
    /// applied its undo. `prev = None` marks an insertion.
    SysUndo {
        key: Vec<u8>,
        writer: TrxId,
        prev: Option<Vec<u8>>,
    },
    /// Commit watermark: transaction `trx` ended (committed, or rolled
    /// back with `aborted`). The LSN of this record is a
    /// transaction-consistent boundary replicas may advance their visible
    /// LSN to. It carries the master's read-view ingredients at that
    /// boundary — the still-active transaction ids and the id allocation
    /// cursor — so a replica's boundary view is an *exact* master view:
    /// tracking writers only by their replicated undo would miss a
    /// low-id transaction that begins before a boundary but first writes
    /// after it (its id would fall below the inferred watermark and its
    /// uncommitted writes would leak).
    SysTrxEnd {
        trx: TrxId,
        aborted: bool,
        /// Ids active on the master at this boundary (sorted, `trx`
        /// itself excluded) — invisible to replica readers.
        active: Vec<TrxId>,
        /// The master's next transaction id: everything at or above is
        /// invisible.
        low_limit: TrxId,
    },
    /// B+ tree shape change (root split / leaf count) for the index owning
    /// record `space`; replicas publish it at the next boundary.
    SysShape {
        root: PageNo,
        height: u32,
        n_leaves: u32,
    },
}

impl RedoBody {
    /// System records carry replication state, not page deltas: Log Stores
    /// persist them, Page Stores never see them.
    pub fn is_system(&self) -> bool {
        matches!(
            self,
            RedoBody::SysCatalog(_)
                | RedoBody::SysLoaded(_)
                | RedoBody::SysUndo { .. }
                | RedoBody::SysTrxEnd { .. }
                | RedoBody::SysShape { .. }
        )
    }
}

/// One redo record: target page + operation + LSN.
#[derive(Clone, Debug, PartialEq)]
pub struct RedoRecord {
    pub lsn: Lsn,
    pub space: SpaceId,
    pub page_no: PageNo,
    pub body: RedoBody,
}

impl RedoRecord {
    pub fn slice(&self, slice_pages: u32) -> SliceId {
        SliceId::of(self.space, self.page_no, slice_pages)
    }

    /// Apply to a page image, stamping the LSN. `None` result = page freed.
    /// System records must be filtered out by the caller.
    pub fn apply(&self, page: &mut Option<Page>) -> Result<()> {
        if self.body.is_system() {
            return Err(Error::Internal(format!(
                "system record {:?} applied to a page",
                self.body
            )));
        }
        match &self.body {
            RedoBody::NewPage(img) => {
                let mut p = Page::from_bytes(img.clone())?;
                p.set_lsn(self.lsn);
                *page = Some(p);
                return Ok(());
            }
            RedoBody::FreePage => {
                *page = None;
                return Ok(());
            }
            _ => {}
        }
        let p = page.as_mut().ok_or_else(|| {
            Error::Corruption(format!(
                "redo {:?} for missing page {:?}:{}",
                self.body, self.space, self.page_no
            ))
        })?;
        match &self.body {
            RedoBody::InsertRecord { slot_idx, rec } => {
                p.insert_at_slot(*slot_idx as usize, rec)?;
            }
            RedoBody::SetDeleteMark { rec_at, mark } => {
                taurus_page::record::set_delete_mark(p.raw_mut(), *rec_at as usize, *mark);
            }
            RedoBody::WriteBytes { at, bytes } => {
                let at = *at as usize;
                if at + bytes.len() > p.byte_len() {
                    return Err(Error::Corruption("WriteBytes out of page".into()));
                }
                p.raw_mut()[at..at + bytes.len()].copy_from_slice(bytes);
            }
            RedoBody::SetNext(n) => p.set_next(*n),
            RedoBody::SetPrev(n) => p.set_prev(*n),
            // lint:allow(panic): apply() matched those variants before dispatching here
            _ => unreachable!("NewPage/FreePage/system handled above"),
        }
        p.set_lsn(self.lsn);
        Ok(())
    }

    // --- wire encoding (for Log Stores and network byte accounting) -------

    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.space.0.to_le_bytes());
        out.extend_from_slice(&self.page_no.to_le_bytes());
        match &self.body {
            RedoBody::NewPage(img) => {
                out.push(0);
                out.extend_from_slice(&(img.len() as u32).to_le_bytes());
                out.extend_from_slice(img);
            }
            RedoBody::InsertRecord { slot_idx, rec } => {
                out.push(1);
                out.extend_from_slice(&slot_idx.to_le_bytes());
                out.extend_from_slice(&(rec.len() as u32).to_le_bytes());
                out.extend_from_slice(rec);
            }
            RedoBody::SetDeleteMark { rec_at, mark } => {
                out.push(2);
                out.extend_from_slice(&rec_at.to_le_bytes());
                out.push(*mark as u8);
            }
            RedoBody::WriteBytes { at, bytes } => {
                out.push(3);
                out.extend_from_slice(&at.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            RedoBody::SetNext(n) => {
                out.push(4);
                out.extend_from_slice(&n.to_le_bytes());
            }
            RedoBody::SetPrev(n) => {
                out.push(5);
                out.extend_from_slice(&n.to_le_bytes());
            }
            RedoBody::FreePage => out.push(6),
            RedoBody::SysCatalog(p) => {
                out.push(7);
                out.extend_from_slice(&(p.len() as u32).to_le_bytes());
                out.extend_from_slice(p);
            }
            RedoBody::SysLoaded(p) => {
                out.push(8);
                out.extend_from_slice(&(p.len() as u32).to_le_bytes());
                out.extend_from_slice(p);
            }
            RedoBody::SysUndo { key, writer, prev } => {
                out.push(9);
                out.extend_from_slice(&writer.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                match prev {
                    None => out.push(0),
                    Some(img) => {
                        out.push(1);
                        out.extend_from_slice(&(img.len() as u32).to_le_bytes());
                        out.extend_from_slice(img);
                    }
                }
            }
            RedoBody::SysTrxEnd {
                trx,
                aborted,
                active,
                low_limit,
            } => {
                out.push(10);
                out.extend_from_slice(&trx.to_le_bytes());
                out.push(*aborted as u8);
                out.extend_from_slice(&low_limit.to_le_bytes());
                out.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for a in active {
                    out.extend_from_slice(&a.to_le_bytes());
                }
            }
            RedoBody::SysShape {
                root,
                height,
                n_leaves,
            } => {
                out.push(11);
                out.extend_from_slice(&root.to_le_bytes());
                out.extend_from_slice(&height.to_le_bytes());
                out.extend_from_slice(&n_leaves.to_le_bytes());
            }
        }
    }

    pub fn decode(buf: &[u8], at: &mut usize) -> Result<RedoRecord> {
        let err = || Error::Corruption("truncated redo record".into());
        let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
            let s = buf.get(*at..*at + n).ok_or_else(err)?;
            *at += n;
            Ok(s)
        };
        // Fixed-width readers: `take(n)` sliced exactly n bytes, so the
        // array conversions below cannot fail.
        let r_u16 = |at: &mut usize| -> Result<u16> {
            // lint:allow(panic): take(2) returned exactly 2 bytes
            Ok(u16::from_le_bytes(take(at, 2)?.try_into().unwrap()))
        };
        let r_u32 = |at: &mut usize| -> Result<u32> {
            // lint:allow(panic): take(4) returned exactly 4 bytes
            Ok(u32::from_le_bytes(take(at, 4)?.try_into().unwrap()))
        };
        let r_u64 = |at: &mut usize| -> Result<u64> {
            // lint:allow(panic): take(8) returned exactly 8 bytes
            Ok(u64::from_le_bytes(take(at, 8)?.try_into().unwrap()))
        };
        let lsn = r_u64(at)?;
        let space = SpaceId(r_u32(at)?);
        let page_no = r_u32(at)?;
        let tag = take(at, 1)?[0];
        let body = match tag {
            0 => {
                let n = r_u32(at)? as usize;
                RedoBody::NewPage(take(at, n)?.to_vec())
            }
            1 => {
                let slot_idx = r_u16(at)?;
                let n = r_u32(at)? as usize;
                RedoBody::InsertRecord {
                    slot_idx,
                    rec: take(at, n)?.to_vec(),
                }
            }
            2 => {
                let rec_at = r_u16(at)?;
                let mark = take(at, 1)?[0] != 0;
                RedoBody::SetDeleteMark { rec_at, mark }
            }
            3 => {
                let a = r_u16(at)?;
                let n = r_u32(at)? as usize;
                RedoBody::WriteBytes {
                    at: a,
                    bytes: take(at, n)?.to_vec(),
                }
            }
            4 => RedoBody::SetNext(r_u32(at)?),
            5 => RedoBody::SetPrev(r_u32(at)?),
            6 => RedoBody::FreePage,
            7 => {
                let n = r_u32(at)? as usize;
                RedoBody::SysCatalog(take(at, n)?.to_vec())
            }
            8 => {
                let n = r_u32(at)? as usize;
                RedoBody::SysLoaded(take(at, n)?.to_vec())
            }
            9 => {
                let writer = r_u64(at)?;
                let kn = r_u32(at)? as usize;
                let key = take(at, kn)?.to_vec();
                let prev = match take(at, 1)?[0] {
                    0 => None,
                    _ => {
                        let pn = r_u32(at)? as usize;
                        Some(take(at, pn)?.to_vec())
                    }
                };
                RedoBody::SysUndo { key, writer, prev }
            }
            10 => {
                let trx = r_u64(at)?;
                let aborted = take(at, 1)?[0] != 0;
                let low_limit = r_u64(at)?;
                let n = r_u32(at)? as usize;
                let active = (0..n).map(|_| r_u64(at)).collect::<Result<_>>()?;
                RedoBody::SysTrxEnd {
                    trx,
                    aborted,
                    active,
                    low_limit,
                }
            }
            11 => {
                let root = r_u32(at)?;
                let height = r_u32(at)?;
                let n_leaves = r_u32(at)?;
                RedoBody::SysShape {
                    root,
                    height,
                    n_leaves,
                }
            }
            other => return Err(Error::Corruption(format!("bad redo tag {other}"))),
        };
        Ok(RedoRecord {
            lsn,
            space,
            page_no,
            body,
        })
    }

    /// Serialize a batch (one Log Store append / one SAL distribution).
    pub fn encode_batch(records: &[RedoRecord]) -> Vec<u8> {
        let mut out = Vec::with_capacity(records.len() * 32);
        out.extend_from_slice(&(records.len() as u32).to_le_bytes());
        for r in records {
            r.encode(&mut out);
        }
        out
    }

    pub fn decode_batch(buf: &[u8]) -> Result<Vec<RedoRecord>> {
        if buf.len() < 4 {
            return Err(Error::Corruption("truncated redo batch".into()));
        }
        // lint:allow(panic): length >= 4 checked above
        let n = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        let mut at = 4usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(RedoRecord::decode(buf, &mut at)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{DataType, Value};
    use taurus_page::{encode_record, RecordLayout, RecordMeta};

    fn rec(k: i64) -> Vec<u8> {
        let l = RecordLayout::new(vec![DataType::BigInt]);
        let mut b = Vec::new();
        encode_record(&l, &[Value::Int(k)], RecordMeta::ordinary(1), None, &mut b).unwrap();
        b
    }

    #[test]
    fn batch_roundtrip() {
        let records = vec![
            RedoRecord {
                lsn: 10,
                space: SpaceId(1),
                page_no: 5,
                body: RedoBody::NewPage(Page::new_index(1024, SpaceId(1), 5, 9, 0).into_bytes()),
            },
            RedoRecord {
                lsn: 11,
                space: SpaceId(1),
                page_no: 5,
                body: RedoBody::InsertRecord {
                    slot_idx: 0,
                    rec: rec(7),
                },
            },
            RedoRecord {
                lsn: 12,
                space: SpaceId(1),
                page_no: 5,
                body: RedoBody::SetDeleteMark {
                    rec_at: 48,
                    mark: true,
                },
            },
            RedoRecord {
                lsn: 13,
                space: SpaceId(1),
                page_no: 5,
                body: RedoBody::SetNext(6),
            },
            RedoRecord {
                lsn: 14,
                space: SpaceId(1),
                page_no: 9,
                body: RedoBody::FreePage,
            },
            RedoRecord {
                lsn: 15,
                space: SpaceId(0),
                page_no: 0,
                body: RedoBody::SysCatalog(vec![1, 2, 3]),
            },
            RedoRecord {
                lsn: 16,
                space: SpaceId(0),
                page_no: 0,
                body: RedoBody::SysLoaded(vec![9; 40]),
            },
            RedoRecord {
                lsn: 17,
                space: SpaceId(1),
                page_no: 0,
                body: RedoBody::SysUndo {
                    key: vec![1, 0, 0, 7],
                    writer: 42,
                    prev: Some(rec(3)),
                },
            },
            RedoRecord {
                lsn: 18,
                space: SpaceId(1),
                page_no: 0,
                body: RedoBody::SysUndo {
                    key: vec![1],
                    writer: 43,
                    prev: None,
                },
            },
            RedoRecord {
                lsn: 19,
                space: SpaceId(0),
                page_no: 0,
                body: RedoBody::SysTrxEnd {
                    trx: 42,
                    aborted: true,
                    active: vec![40, 44],
                    low_limit: 45,
                },
            },
            RedoRecord {
                lsn: 20,
                space: SpaceId(1),
                page_no: 0,
                body: RedoBody::SysShape {
                    root: 7,
                    height: 2,
                    n_leaves: 5,
                },
            },
        ];
        let bytes = RedoRecord::encode_batch(&records);
        assert_eq!(RedoRecord::decode_batch(&bytes).unwrap(), records);
        // System records are replication metadata, never page deltas.
        for r in &records {
            assert_eq!(r.body.is_system(), r.lsn >= 15);
            if r.body.is_system() {
                let mut page = None;
                assert!(r.apply(&mut page).is_err());
            }
        }
    }

    #[test]
    fn apply_sequence_builds_page() {
        let img = Page::new_index(1024, SpaceId(1), 5, 9, 0).into_bytes();
        let mut page: Option<Page> = None;
        RedoRecord {
            lsn: 1,
            space: SpaceId(1),
            page_no: 5,
            body: RedoBody::NewPage(img),
        }
        .apply(&mut page)
        .unwrap();
        RedoRecord {
            lsn: 2,
            space: SpaceId(1),
            page_no: 5,
            body: RedoBody::InsertRecord {
                slot_idx: 0,
                rec: rec(7),
            },
        }
        .apply(&mut page)
        .unwrap();
        RedoRecord {
            lsn: 3,
            space: SpaceId(1),
            page_no: 5,
            body: RedoBody::InsertRecord {
                slot_idx: 1,
                rec: rec(9),
            },
        }
        .apply(&mut page)
        .unwrap();
        let p = page.as_ref().unwrap();
        assert_eq!(p.n_recs(), 2);
        assert_eq!(p.lsn(), 3);
        RedoRecord {
            lsn: 4,
            space: SpaceId(1),
            page_no: 5,
            body: RedoBody::FreePage,
        }
        .apply(&mut page)
        .unwrap();
        assert!(page.is_none());
    }

    #[test]
    fn apply_to_missing_page_is_corruption() {
        let mut page: Option<Page> = None;
        let r = RedoRecord {
            lsn: 2,
            space: SpaceId(1),
            page_no: 5,
            body: RedoBody::SetNext(6),
        };
        assert!(matches!(r.apply(&mut page), Err(Error::Corruption(_))));
    }
}
