//! The Page Store NDP plugin framework and the InnoDB plugin (§IV-D, §V).
//!
//! "Because Page Stores are intended to support several frontend systems
//! … the NDP framework for Page Stores is DBMS-independent. DBMS-specific
//! shared libraries can be loaded as plugins … The Page Store NDP framework
//! accepts an NDP descriptor as a type-less byte stream, which an NDP
//! plugin interprets."
//!
//! [`InnodbNdpPlugin`] implements the paper's record semantics:
//!
//! * records with `trx_id >=` the descriptor watermark are **ambiguous**
//!   and pass through byte-identical (never projected — §V-A);
//! * visible delete-marked records are skipped;
//! * visible records are filtered by the compiled predicate — only definite
//!   survivors are kept (`False`/`Unknown` rows are what the compute node
//!   would discard too);
//! * survivors are projected and/or folded into per-group aggregation
//!   state, with the group's partial sum attached to its **last visible**
//!   record (the paper's `((5,2), 9)` carrier convention: the carrier's own
//!   values are *not* in the payload — they reach the executor as a regular
//!   row);
//! * with no GROUP BY, aggregation crosses pages *within one request*
//!   (§V-C case 2), the payload landing on the last page that has a
//!   visible row.

use std::sync::Arc;

use taurus_common::{Error, PageNo, Result, TrxId, Value};
use taurus_expr::agg::AggState;
use taurus_expr::vm::TriBool;
use taurus_page::{encode_record, NdpPageBuilder, Page, RecType, RecordMeta, RecordView};

use crate::cache::CachedDescriptor;

/// Per-page statistics reported by the plugin.
#[derive(Clone, Copy, Default, Debug, PartialEq)]
pub struct PluginStats {
    pub records_in: u64,
    pub records_filtered: u64,
    pub records_aggregated: u64,
    pub ambiguous: u64,
}

impl PluginStats {
    fn add(&mut self, o: &PluginStats) {
        self.records_in += o.records_in;
        self.records_filtered += o.records_filtered;
        self.records_aggregated += o.records_aggregated;
        self.ambiguous += o.ambiguous;
    }
}

/// DBMS-specific NDP processing, loaded into the Page Store framework.
pub trait NdpPlugin: Send + Sync {
    fn name(&self) -> &'static str;

    /// Process one page independently (used when the request carries no
    /// cross-page aggregation, so pages can be handled by concurrent
    /// workers in any order).
    fn process_page(&self, cd: &CachedDescriptor, page: &Page) -> Result<(Page, PluginStats)>;

    /// Process a whole sub-batch sequentially with cross-page aggregation
    /// (scalar aggregates only, §V-C).
    fn process_batch(
        &self,
        cd: &CachedDescriptor,
        pages: &[(PageNo, Arc<Page>)],
    ) -> Result<(Vec<(PageNo, Page)>, PluginStats)>;
}

/// The MySQL/InnoDB plugin.
pub struct InnodbNdpPlugin;

/// A survivor elected as the group's aggregation carrier.
struct Carrier {
    seq: usize,
    values: Vec<Value>,
    trx_id: TrxId,
    heap_no: u16,
}

impl InnodbNdpPlugin {
    fn is_visible(cd: &CachedDescriptor, trx_id: TrxId) -> bool {
        trx_id < cd.desc.low_watermark
    }

    /// Encode a surviving record for the NDP page.
    fn encode_survivor(
        cd: &CachedDescriptor,
        values: &[Value],
        trx_id: TrxId,
        heap_no: u16,
        payload: Option<&[u8]>,
    ) -> Result<Vec<u8>> {
        let (layout, kept): (_, Vec<Value>) = match (&cd.proj_layout, &cd.desc.projection) {
            (Some(pl), Some(keep)) => (
                pl,
                keep.iter().map(|&k| values[k as usize].clone()).collect(),
            ),
            _ => (&cd.layout, values.to_vec()),
        };
        let rec_type = match (payload.is_some(), cd.desc.projection.is_some()) {
            (true, _) => RecType::NdpAggregate,
            (false, true) => RecType::NdpProjection,
            // No projection, no aggregation — the record is only filtered,
            // and stays an ordinary record.
            (false, false) => RecType::Ordinary,
        };
        let meta = RecordMeta {
            rec_type,
            delete_mark: false,
            heap_no,
            trx_id,
        };
        let mut out = Vec::with_capacity(64);
        encode_record(layout, &kept, meta, payload, &mut out)?;
        Ok(out)
    }

    fn new_states(cd: &CachedDescriptor) -> Vec<AggState> {
        // lint:allow(panic): callers reach here only on descriptors with aggregation
        let agg = cd.desc.aggregation.as_ref().expect("aggregation requested");
        agg.specs
            .iter()
            .map(|s| {
                let dt = s.col.map(|c| cd.layout.dtypes[c as usize]);
                AggState::new(s, dt)
            })
            .collect()
    }

    /// Fold one row's aggregate inputs into the running states.
    fn fold(cd: &CachedDescriptor, states: &mut [AggState], values: &[Value]) {
        // lint:allow(panic): callers reach here only on descriptors with aggregation
        let agg = cd.desc.aggregation.as_ref().expect("aggregation requested");
        for (st, spec) in states.iter_mut().zip(&agg.specs) {
            match spec.col {
                Some(c) => st.update(&values[c as usize]),
                None => st.update(&Value::Int(1)),
            }
        }
    }

    fn group_key(cd: &CachedDescriptor, view: &RecordView<'_>) -> Vec<Value> {
        // lint:allow(panic): callers reach here only on descriptors with aggregation
        let agg = cd.desc.aggregation.as_ref().expect("aggregation requested");
        agg.group_cols
            .iter()
            .map(|&g| view.value(g as usize))
            .collect()
    }

    /// Column-at-a-time predicate pre-pass over one page: a single
    /// `eval_records` call replaces per-record VM dispatch — the same
    /// kernel (and speedup) as the executor's columnar Filter, applied to
    /// pushed-down predicates. `None` means no vector program or a lane
    /// error (eager evaluation can fault where the record-at-a-time VM
    /// short-circuits): the caller falls back to the scalar predicate,
    /// which remains authoritative.
    fn page_verdicts(cd: &CachedDescriptor, page: &Page) -> Option<Vec<bool>> {
        let vp = cd.vector.as_ref()?;
        let views: Vec<RecordView<'_>> = page
            .iter_chain()
            .map(|off| RecordView::new(page.record_at(off), &cd.layout))
            .collect();
        let verdicts = vp.eval_records(&views).ok()?;
        Some((0..views.len()).map(|i| verdicts.is_true(i)).collect())
    }
}

/// Accumulates one page's emissions in sequence order.
struct PageEmitter {
    /// (seq, encoded record)
    items: Vec<(usize, Vec<u8>)>,
}

impl PageEmitter {
    fn new() -> PageEmitter {
        PageEmitter { items: Vec::new() }
    }

    fn emit(&mut self, seq: usize, bytes: Vec<u8>) {
        self.items.push((seq, bytes));
    }

    fn finish(mut self, src: &Page) -> Page {
        // Records were produced group-by-group; restore global order.
        self.items.sort_by_key(|(seq, _)| *seq);
        let mut b = NdpPageBuilder::new(src);
        for (_, bytes) in &self.items {
            b.push_record(bytes);
        }
        b.finish(src.lsn())
    }
}

/// Group-scoped working state for the per-page path.
struct GroupAcc {
    key: Option<Vec<Value>>,
    states: Vec<AggState>,
    carrier: Option<Carrier>,
    /// Ambiguous records of the current group (seq, raw bytes).
    ambig: Vec<(usize, Vec<u8>)>,
}

impl GroupAcc {
    fn flush(
        &mut self,
        cd: &CachedDescriptor,
        out: &mut PageEmitter,
        stats: &mut PluginStats,
    ) -> Result<()> {
        for (seq, bytes) in self.ambig.drain(..) {
            out.emit(seq, bytes);
        }
        if let Some(c) = self.carrier.take() {
            let payload = taurus_expr::agg::encode_states(&self.states);
            let bytes = InnodbNdpPlugin::encode_survivor(
                cd,
                &c.values,
                c.trx_id,
                c.heap_no,
                Some(&payload),
            )?;
            out.emit(c.seq, bytes);
            stats.records_aggregated += 1;
        }
        self.states = InnodbNdpPlugin::new_states(cd);
        self.key = None;
        Ok(())
    }
}

impl NdpPlugin for InnodbNdpPlugin {
    fn name(&self) -> &'static str {
        "innodb"
    }

    fn process_page(&self, cd: &CachedDescriptor, page: &Page) -> Result<(Page, PluginStats)> {
        let mut stats = PluginStats::default();
        let mut out = PageEmitter::new();
        let grouped = cd.desc.aggregation.is_some();
        let mut acc = GroupAcc {
            key: None,
            states: if grouped {
                Self::new_states(cd)
            } else {
                Vec::new()
            },
            carrier: None,
            ambig: Vec::new(),
        };
        let mut offsets = Vec::new();
        let verdicts = cd
            .predicate
            .as_ref()
            .and_then(|_| Self::page_verdicts(cd, page));
        for (seq, off) in page.iter_chain().enumerate() {
            let view = RecordView::new(page.record_at(off), &cd.layout);
            if view.rec_type() != RecType::Ordinary {
                return Err(Error::Corruption(format!(
                    "NDP source page contains non-ordinary record {:?}",
                    view.rec_type()
                )));
            }
            stats.records_in += 1;
            if !Self::is_visible(cd, view.trx_id()) {
                stats.ambiguous += 1;
                if grouped {
                    let key = Self::group_key(cd, &view);
                    if acc.key.is_some() && acc.key.as_ref() != Some(&key) {
                        acc.flush(cd, &mut out, &mut stats)?;
                    }
                    acc.key = Some(key);
                    acc.ambig.push((seq, view.raw().to_vec()));
                } else {
                    out.emit(seq, view.raw().to_vec());
                }
                continue;
            }
            if view.delete_mark() {
                continue;
            }
            if let Some(pred) = &cd.predicate {
                let survives = match &verdicts {
                    Some(v) => v[seq],
                    None => pred.eval_record(&view, &mut offsets)? == TriBool::True,
                };
                if !survives {
                    stats.records_filtered += 1;
                    continue;
                }
            }
            let values = view.values();
            if grouped {
                // lint:allow(panic): grouped=true implies the descriptor aggregates
                let agg = cd.desc.aggregation.as_ref().unwrap();
                let key: Vec<Value> = agg
                    .group_cols
                    .iter()
                    .map(|&g| values[g as usize].clone())
                    .collect();
                if acc.key.is_some() && acc.key.as_ref() != Some(&key) {
                    acc.flush(cd, &mut out, &mut stats)?;
                }
                acc.key = Some(key);
                if let Some(old) = acc.carrier.replace(Carrier {
                    seq,
                    values,
                    trx_id: view.trx_id(),
                    heap_no: view.heap_no(),
                }) {
                    Self::fold(cd, &mut acc.states, &old.values);
                    stats.records_aggregated += 1;
                }
            } else {
                let bytes =
                    Self::encode_survivor(cd, &values, view.trx_id(), view.heap_no(), None)?;
                out.emit(seq, bytes);
            }
        }
        if grouped {
            acc.flush(cd, &mut out, &mut stats)?;
        }
        Ok((out.finish(page), stats))
    }

    fn process_batch(
        &self,
        cd: &CachedDescriptor,
        pages: &[(PageNo, Arc<Page>)],
    ) -> Result<(Vec<(PageNo, Page)>, PluginStats)> {
        let scalar = cd
            .desc
            .aggregation
            .as_ref()
            .map(|a| a.group_cols.is_empty())
            .unwrap_or(false);
        if !scalar {
            // No cross-page opportunity: process pages independently.
            let mut stats = PluginStats::default();
            let mut results = Vec::with_capacity(pages.len());
            for (no, p) in pages {
                let (out, s) = self.process_page(cd, p)?;
                stats.add(&s);
                results.push((*no, out));
            }
            return Ok((results, stats));
        }

        let mut stats = PluginStats::default();
        let mut results = Vec::with_capacity(pages.len());
        let mut states = Self::new_states(cd);
        // The page (by index into `pages`) currently holding the carrier,
        // kept open until we know no later page takes the carrier over.
        struct Pending {
            page_idx: usize,
            ambig: Vec<(usize, Vec<u8>)>,
        }
        let mut carrier: Option<Carrier> = None;
        let mut pending: Option<Pending> = None;
        let mut offsets = Vec::new();

        for (idx, (_no, page)) in pages.iter().enumerate() {
            let mut ambig: Vec<(usize, Vec<u8>)> = Vec::new();
            let mut carrier_here = false;
            let verdicts = cd
                .predicate
                .as_ref()
                .and_then(|_| Self::page_verdicts(cd, page));
            for (seq, off) in page.iter_chain().enumerate() {
                let view = RecordView::new(page.record_at(off), &cd.layout);
                stats.records_in += 1;
                if !Self::is_visible(cd, view.trx_id()) {
                    stats.ambiguous += 1;
                    ambig.push((seq, view.raw().to_vec()));
                    continue;
                }
                if view.delete_mark() {
                    continue;
                }
                if let Some(pred) = &cd.predicate {
                    let survives = match &verdicts {
                        Some(v) => v[seq],
                        None => pred.eval_record(&view, &mut offsets)? == TriBool::True,
                    };
                    if !survives {
                        stats.records_filtered += 1;
                        continue;
                    }
                }
                // New carrier: fold the previous one into the states; if it
                // lived in an earlier (pending) page, that page can now be
                // finished without a carrier.
                if let Some(old) = carrier.replace(Carrier {
                    seq,
                    values: view.values(),
                    trx_id: view.trx_id(),
                    heap_no: view.heap_no(),
                }) {
                    Self::fold(cd, &mut states, &old.values);
                    stats.records_aggregated += 1;
                }
                if !carrier_here {
                    if let Some(p) = pending.take() {
                        let mut out = PageEmitter::new();
                        for (s, b) in p.ambig {
                            out.emit(s, b);
                        }
                        let (no, src) = &pages[p.page_idx];
                        results.push((*no, out.finish(src)));
                    }
                }
                carrier_here = true;
            }
            if carrier_here {
                debug_assert!(pending.is_none());
                pending = Some(Pending {
                    page_idx: idx,
                    ambig,
                });
            } else {
                // No visible survivor on this page: emit its ambiguous
                // records right away.
                let mut out = PageEmitter::new();
                for (s, b) in ambig {
                    out.emit(s, b);
                }
                results.push((pages[idx].0, out.finish(page)));
            }
        }
        if let Some(p) = pending.take() {
            let mut out = PageEmitter::new();
            for (s, b) in p.ambig {
                out.emit(s, b);
            }
            // lint:allow(panic): a pending ambiguous page is only parked after a carrier row
            let c = carrier.take().expect("pending page implies a carrier");
            let payload = taurus_expr::agg::encode_states(&states);
            let bytes = Self::encode_survivor(cd, &c.values, c.trx_id, c.heap_no, Some(&payload))?;
            out.emit(c.seq, bytes);
            stats.records_aggregated += 1;
            let (no, src) = &pages[p.page_idx];
            results.push((*no, out.finish(src)));
        }
        Ok((results, stats))
    }
}
