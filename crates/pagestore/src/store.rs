//! The Page Store server (§II, §IV-D).
//!
//! A Page Store hosts *slices* from multiple tenants, applies redo records
//! to keep pages up to date, and serves page reads — plain or NDP. Pages
//! are kept as LSN-stamped version chains so an NDP batch read can request
//! "those page versions matching the LSN value" captured under the B-tree
//! latches (§IV-C4), shielding the batch from concurrent tree changes.
//!
//! NDP processing runs on the dedicated bounded pool ([`crate::resource`]);
//! any page that cannot be processed (queue full, injected skip, plugin
//! error) is returned **raw** and the compute node finishes the job.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::bounded;
use parking_lot::RwLock;
use taurus_common::{Error, Lsn, Metrics, PageNo, Result, SliceId, TenantId};
use taurus_page::Page;

use crate::cache::{CachedDescriptor, DescriptorCache};
use crate::plugin::{InnodbNdpPlugin, NdpPlugin};
use crate::redo::RedoRecord;
use crate::resource::{Admission, NdpPool, SkipPolicy};

/// Brownout fault injection: how a store misbehaves. Faults apply to the
/// store's *read* entry points only — redo application keeps working so a
/// faulted store stays consistent and can be revived (like a partitioned
/// but healthy replica). Generalizes the old binary "poisoned" switch.
#[derive(Clone, Debug, Default)]
pub enum FaultPolicy {
    /// Healthy.
    #[default]
    None,
    /// Brownout: every read request pays this much added latency before
    /// being served (a slow disk / overloaded peer, not a dead one).
    Latency(Duration),
    /// Probabilistic errors: each read fails with this percentage
    /// probability (0–100), from a deterministic per-store stream.
    ErrorRate(u32),
    /// Reads fail until the addressed slice has applied redo up to this
    /// LSN — a store that is alive but too far behind to serve.
    ErrorUntilLsn(Lsn),
    /// Full poison: every read fails (a crashed store).
    Poison,
}

/// Page Store tuning knobs (subset of the cluster config).
#[derive(Clone, Debug)]
pub struct PageStoreConfig {
    pub versions_retained: usize,
    pub ndp_threads: usize,
    pub ndp_queue: usize,
    /// Simulated per-page NDP service time in microseconds (0 = free);
    /// see `ClusterConfig::pagestore_ndp_service_us`.
    pub ndp_service_us: u64,
    pub descriptor_cache: bool,
    pub slice_pages: u32,
}

impl Default for PageStoreConfig {
    fn default() -> Self {
        PageStoreConfig {
            versions_retained: 8,
            ndp_threads: 4,
            ndp_queue: 64,
            ndp_service_us: 0,
            descriptor_cache: true,
            slice_pages: 256,
        }
    }
}

struct VersionChain {
    /// (lsn, page) pairs, oldest front, newest back. `None` page = freed.
    versions: VecDeque<(Lsn, Option<Arc<Page>>)>,
}

struct Slice {
    pages: HashMap<PageNo, VersionChain>,
    applied_lsn: Lsn,
}

/// One NDP batch read bound for one slice of one Page Store.
#[derive(Clone)]
pub struct NdpBatchRequest {
    pub slice: SliceId,
    pub pages: Vec<PageNo>,
    /// Serve page versions as of this LSN.
    pub read_lsn: Lsn,
    /// The type-less descriptor byte stream (§IV-D).
    pub descriptor: Arc<Vec<u8>>,
    /// Tenant the batch is billed to — drives fair admission and per-
    /// tenant quotas on the NDP pool.
    pub tenant: TenantId,
}

/// What came back for one page.
#[derive(Clone, Debug)]
pub enum PagePayload {
    /// NDP-processed (possibly the header-only empty marker).
    Ndp(Arc<Page>),
    /// Unprocessed page — NDP was skipped; InnoDB completes the work.
    Raw(Arc<Page>),
}

impl PagePayload {
    pub fn byte_len(&self) -> usize {
        match self {
            PagePayload::Ndp(p) | PagePayload::Raw(p) => p.byte_len(),
        }
    }
}

#[derive(Clone, Debug)]
pub struct PageResult {
    pub page_no: PageNo,
    pub payload: PagePayload,
}

/// A multi-tenant Page Store server.
pub struct PageStore {
    id: usize,
    cfg: PageStoreConfig,
    slices: RwLock<HashMap<SliceId, Slice>>,
    pool: Arc<NdpPool>,
    cache: DescriptorCache,
    plugin: Arc<dyn NdpPlugin>,
    metrics: Arc<Metrics>,
    skip_policy: RwLock<SkipPolicy>,
    skip_counter: AtomicU64,
    /// Fault injection: how (if at all) this store misbehaves on reads.
    fault: RwLock<FaultPolicy>,
    /// Deterministic stream for [`FaultPolicy::ErrorRate`].
    fault_rng: AtomicU64,
    /// Store-level shed switch: when set (operator override or sustained
    /// NDP queue saturation), whole batches degrade to raw page reads up
    /// front instead of racing per-page submissions against a full queue.
    force_shed: AtomicBool,
    /// Requests currently being served by this store and the high-water
    /// mark — per-request queue accounting so the compute/storage overlap
    /// of prefetching scans is observable on the storage side.
    active_requests: AtomicU64,
    active_requests_peak: AtomicU64,
}

/// RAII accounting for one in-flight request on one Page Store: charges
/// the store-local and cluster-wide in-flight gauges (+ peaks) for
/// exactly the serving duration, on every exit path.
struct RequestGuard<'a> {
    store: &'a PageStore,
}

impl<'a> RequestGuard<'a> {
    fn new(store: &'a PageStore) -> RequestGuard<'a> {
        let now = store.active_requests.fetch_add(1, Ordering::Relaxed) + 1;
        store.active_requests_peak.fetch_max(now, Ordering::Relaxed);
        store.metrics.gauge_inc(
            |m| &m.ps_requests_in_flight,
            |m| &m.ps_requests_in_flight_peak,
        );
        RequestGuard { store }
    }
}

impl Drop for RequestGuard<'_> {
    fn drop(&mut self) {
        self.store.active_requests.fetch_sub(1, Ordering::Relaxed);
        self.store.metrics.sub(|m| &m.ps_requests_in_flight, 1);
    }
}

impl PageStore {
    pub fn new(id: usize, cfg: PageStoreConfig, metrics: Arc<Metrics>) -> Arc<PageStore> {
        Arc::new(PageStore {
            id,
            pool: NdpPool::new(cfg.ndp_threads, cfg.ndp_queue),
            cache: DescriptorCache::new(cfg.descriptor_cache, metrics.clone()),
            cfg,
            slices: RwLock::new(HashMap::new()),
            plugin: Arc::new(InnodbNdpPlugin),
            metrics,
            skip_policy: RwLock::new(SkipPolicy::None),
            skip_counter: AtomicU64::new(0),
            fault: RwLock::new(FaultPolicy::None),
            fault_rng: AtomicU64::new(0x9E3779B97F4A7C15 ^ id as u64),
            force_shed: AtomicBool::new(false),
            active_requests: AtomicU64::new(0),
            active_requests_peak: AtomicU64::new(0),
        })
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Inject a deterministic skip pattern (tests, resource-control bench).
    pub fn set_skip_policy(&self, p: SkipPolicy) {
        *self.skip_policy.write() = p;
    }

    /// Install a fault policy (brownout injection). Takes effect on the
    /// next read; redo application is never faulted.
    pub fn set_fault(&self, f: FaultPolicy) {
        *self.fault.write() = f;
    }

    pub fn fault(&self) -> FaultPolicy {
        self.fault.read().clone()
    }

    /// Compatibility wrapper over [`PageStore::set_fault`]: the original
    /// binary fault switch. `true` installs [`FaultPolicy::Poison`],
    /// `false` clears any fault.
    pub fn set_poisoned(&self, poisoned: bool) {
        self.set_fault(if poisoned {
            FaultPolicy::Poison
        } else {
            FaultPolicy::None
        });
    }

    pub fn is_poisoned(&self) -> bool {
        matches!(&*self.fault.read(), FaultPolicy::Poison)
    }

    /// Force store-level shed: every NDP batch degrades to raw page
    /// reads (the compute node does the work) without touching the pool.
    pub fn set_force_shed(&self, shed: bool) {
        self.force_shed.store(shed, Ordering::SeqCst);
    }

    pub fn force_shed(&self) -> bool {
        self.force_shed.load(Ordering::SeqCst)
    }

    /// Per-tenant NDP admission quota on this store's pool (0 = unlimited).
    pub fn set_ndp_tenant_quota(&self, quota: usize) {
        self.pool.set_tenant_quota(quota);
    }

    /// Evaluate the installed fault policy at a read entry point.
    /// `slice` contextualizes [`FaultPolicy::ErrorUntilLsn`]. Called once
    /// per request (not per page) so injected latency models one slow
    /// round trip, not a per-page stall.
    fn check_fault(&self, slice: SliceId) -> Result<()> {
        let fault = self.fault.read().clone();
        match fault {
            FaultPolicy::None => Ok(()),
            FaultPolicy::Latency(d) => {
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
                Ok(())
            }
            FaultPolicy::ErrorRate(pct) => {
                // xorshift64: deterministic per-store error stream.
                let mut x = self.fault_rng.load(Ordering::Relaxed);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.fault_rng.store(x, Ordering::Relaxed);
                if (x % 100) < pct.min(100) as u64 {
                    Err(Error::InvalidState(format!(
                        "page store {} injected fault (error rate {pct}%)",
                        self.id
                    )))
                } else {
                    Ok(())
                }
            }
            FaultPolicy::ErrorUntilLsn(bound) => {
                let applied = self.applied_lsn(slice);
                if applied < bound {
                    Err(Error::InvalidState(format!(
                        "page store {} browned out until lsn {bound} \
                         (slice applied lsn {applied})",
                        self.id
                    )))
                } else {
                    Ok(())
                }
            }
            FaultPolicy::Poison => Err(Error::InvalidState(format!(
                "page store {} is down (poisoned)",
                self.id
            ))),
        }
    }

    /// Requests currently being served by this store.
    pub fn active_requests(&self) -> u64 {
        self.active_requests.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently-served requests since startup.
    pub fn active_requests_peak(&self) -> u64 {
        self.active_requests_peak.load(Ordering::Relaxed)
    }

    pub fn descriptor_cache_len(&self) -> usize {
        self.cache.len()
    }

    pub fn create_slice(&self, slice: SliceId) {
        self.slices.write().entry(slice).or_insert_with(|| Slice {
            pages: HashMap::new(),
            applied_lsn: 0,
        });
    }

    pub fn has_slice(&self, slice: SliceId) -> bool {
        self.slices.read().contains_key(&slice)
    }

    pub fn applied_lsn(&self, slice: SliceId) -> Lsn {
        self.slices
            .read()
            .get(&slice)
            .map(|s| s.applied_lsn)
            .unwrap_or(0)
    }

    /// Apply a batch of redo records addressed to this store's slices.
    /// Records must arrive in LSN order (the SAL guarantees this).
    /// System records (replication metadata) are not page deltas and are
    /// skipped — the SAL does not distribute them, but a store fed a raw
    /// log batch must not corrupt itself on them either.
    pub fn apply_redo(&self, records: &[RedoRecord]) -> Result<()> {
        let mut slices = self.slices.write();
        for r in records {
            if r.body.is_system() {
                continue;
            }
            let sid = r.slice(self.cfg.slice_pages);
            let slice = slices.get_mut(&sid).ok_or_else(|| {
                Error::NotFound(format!("slice {sid:?} on page store {}", self.id))
            })?;
            let chain = slice
                .pages
                .entry(r.page_no)
                .or_insert_with(|| VersionChain {
                    versions: VecDeque::new(),
                });
            let mut page: Option<Page> = chain
                .versions
                .back()
                .and_then(|(_, p)| p.as_ref().map(|a| (**a).clone()));
            r.apply(&mut page)?;
            chain.versions.push_back((r.lsn, page.map(Arc::new)));
            while chain.versions.len() > self.cfg.versions_retained {
                chain.versions.pop_front();
            }
            if r.lsn > slice.applied_lsn {
                slice.applied_lsn = r.lsn;
            }
        }
        Ok(())
    }

    /// Read the newest page version with `lsn <= at_lsn` (or the newest
    /// overall when `at_lsn` is `None`).
    pub fn read_page(
        &self,
        slice: SliceId,
        page_no: PageNo,
        at_lsn: Option<Lsn>,
    ) -> Result<Arc<Page>> {
        self.check_fault(slice)?;
        self.read_page_inner(slice, page_no, at_lsn)
    }

    /// The read path proper, past fault injection — batch serving calls
    /// this per page after paying the fault check once per request.
    fn read_page_inner(
        &self,
        slice: SliceId,
        page_no: PageNo,
        at_lsn: Option<Lsn>,
    ) -> Result<Arc<Page>> {
        let slices = self.slices.read();
        let s = slices
            .get(&slice)
            .ok_or_else(|| Error::NotFound(format!("slice {slice:?}")))?;
        let chain = s
            .pages
            .get(&page_no)
            .ok_or_else(|| Error::NotFound(format!("page {page_no} in {slice:?}")))?;
        let pick = match at_lsn {
            None => chain.versions.back(),
            Some(lsn) => chain.versions.iter().rev().find(|(l, _)| *l <= lsn),
        };
        match pick {
            Some((_, Some(p))) => Ok(p.clone()),
            Some((_, None)) => Err(Error::NotFound(format!("page {page_no} freed"))),
            None => {
                // Version-pin miss: the chain exists but its oldest
                // retained version is newer than the pin — a lagging
                // replica asking for a snapshot this store no longer
                // holds. Name the retention horizon so the caller can
                // tell "too stale" from "never existed".
                let oldest = chain.versions.front().map(|(l, _)| *l).unwrap_or(0);
                Err(Error::InvalidState(format!(
                    "page {page_no}: no version at or before lsn {at_lsn:?} retained \
                     (oldest retained lsn {oldest}; reader pinned below the \
                     retention horizon)"
                )))
            }
        }
    }

    /// Version-pin check: can this store serve `page_no` exactly as of
    /// `lsn`? `false` once retention trimmed every version at or below
    /// the pin. Diagnostic surface for operators/tests probing whether a
    /// lagging reader's pin is still inside the retention horizon; the
    /// read path itself signals the same condition through
    /// [`PageStore::read_page`]'s trimmed-version error.
    pub fn has_version_at(&self, slice: SliceId, page_no: PageNo, lsn: Lsn) -> bool {
        let slices = self.slices.read();
        slices
            .get(&slice)
            .and_then(|s| s.pages.get(&page_no))
            .map(|c| c.versions.iter().any(|(l, _)| *l <= lsn))
            .unwrap_or(false)
    }

    /// Serve an NDP batch read (§IV-D). Every page comes back either NDP-
    /// processed or raw; the response preserves request order.
    pub fn serve_ndp_batch(&self, req: &NdpBatchRequest) -> Result<Vec<PageResult>> {
        self.check_fault(req.slice)?;
        let _req = RequestGuard::new(self);
        let cd = self.cache.get_or_prepare(&req.descriptor)?;
        // Materialize the requested versions first (regular read path).
        // The fault policy was already paid once for the whole request.
        let mut pages: Vec<(PageNo, Arc<Page>)> = Vec::with_capacity(req.pages.len());
        for &no in &req.pages {
            pages.push((no, self.read_page_inner(req.slice, no, Some(req.read_lsn))?));
        }

        let scalar_agg = cd
            .desc
            .aggregation
            .as_ref()
            .map(|a| a.group_cols.is_empty())
            .unwrap_or(false);

        if !cd.desc.requests_work() {
            // Pure batched read: no NDP processing requested.
            return Ok(pages
                .into_iter()
                .map(|(page_no, p)| PageResult {
                    page_no,
                    payload: PagePayload::Raw(p),
                })
                .collect());
        }

        // Store-level shed-to-compute: when the store is saturated (NDP
        // queue full) or the operator forced it, the whole batch degrades
        // to raw page reads up front — the compute node finishes the work
        // and this store spends no NDP cycles on the slice at all.
        if self.force_shed() || self.pool.overloaded() {
            let n = pages.len() as u64;
            self.metrics.add(|m| &m.ps_ndp_shed, n);
            self.metrics
                .tenants
                .tenant(req.tenant)
                .pages_shed
                .fetch_add(n, Ordering::Relaxed);
            return Ok(pages
                .into_iter()
                .map(|(page_no, p)| PageResult {
                    page_no,
                    payload: PagePayload::Raw(p),
                })
                .collect());
        }

        if scalar_agg {
            return self.serve_scalar_batch(cd, pages, req.tenant);
        }
        self.serve_parallel_pages(cd, pages, req.tenant)
    }

    /// Cross-page (scalar) aggregation: the whole sub-batch is one
    /// sequential job on the NDP pool (§V-C case 2).
    fn serve_scalar_batch(
        &self,
        cd: Arc<CachedDescriptor>,
        pages: Vec<(PageNo, Arc<Page>)>,
        tenant: TenantId,
    ) -> Result<Vec<PageResult>> {
        // Resource control applies to the whole cross-page job: a scalar
        // aggregation batch is one unit of NDP work.
        let skip_all = {
            let policy = self.skip_policy.read();
            matches!(&*policy, SkipPolicy::All)
                || policy.should_skip(&self.skip_counter, pages.first().map(|p| p.0).unwrap_or(0))
        };
        let (tx, rx) = bounded(1);
        let mut submitted = false;
        if !skip_all {
            let plugin = self.plugin.clone();
            let metrics = self.metrics.clone();
            let job_pages = pages.clone();
            let service =
                Duration::from_micros(self.cfg.ndp_service_us).saturating_mul(pages.len() as u32);
            submitted = self.admit(tenant, move || {
                if !service.is_zero() {
                    std::thread::sleep(service);
                }
                let _cpu = taurus_common::metrics::CpuGuard::new(&metrics.ps_cpu_ns);
                let out = plugin.process_batch(&cd, &job_pages);
                let _ = tx.send(out);
            });
        }
        if !submitted {
            self.metrics.add(|m| &m.ps_ndp_skipped, pages.len() as u64);
            return Ok(pages
                .into_iter()
                .map(|(page_no, p)| PageResult {
                    page_no,
                    payload: PagePayload::Raw(p),
                })
                .collect());
        }
        match rx
            .recv()
            .map_err(|_| Error::Internal("ndp worker died".into()))?
        {
            Ok((results, stats)) => {
                self.metrics
                    .add(|m| &m.ps_pages_processed, results.len() as u64);
                self.metrics
                    .add(|m| &m.ps_records_filtered, stats.records_filtered);
                self.metrics
                    .add(|m| &m.ps_records_aggregated, stats.records_aggregated);
                let by_no: HashMap<PageNo, Page> = results.into_iter().collect();
                Ok(pages
                    .into_iter()
                    .map(|(page_no, raw)| match by_no.get(&page_no) {
                        Some(ndp) => PageResult {
                            page_no,
                            payload: PagePayload::Ndp(Arc::new(ndp.clone())),
                        },
                        None => PageResult {
                            page_no,
                            payload: PagePayload::Raw(raw),
                        },
                    })
                    .collect())
            }
            Err(_) => {
                // Plugin failure: degrade to raw pages, never fail the read.
                self.metrics.add(|m| &m.ps_ndp_skipped, pages.len() as u64);
                Ok(pages
                    .into_iter()
                    .map(|(page_no, p)| PageResult {
                        page_no,
                        payload: PagePayload::Raw(p),
                    })
                    .collect())
            }
        }
    }

    /// Tenant-attributed admission: submit one NDP job and charge the
    /// outcome. `false` means the job was refused (queue full or tenant
    /// quota) and the caller serves raw.
    fn admit(&self, tenant: TenantId, job: impl FnOnce() + Send + 'static) -> bool {
        match self.pool.try_submit_for(tenant, job) {
            Admission::Admitted => {
                self.metrics
                    .tenants
                    .tenant(tenant)
                    .ndp_admitted
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            Admission::QuotaExceeded => {
                self.metrics.add(|m| &m.ps_ndp_quota_rejected, 1);
                self.metrics
                    .tenants
                    .tenant(tenant)
                    .ndp_quota_rejected
                    .fetch_add(1, Ordering::Relaxed);
                false
            }
            Admission::QueueFull => false,
        }
    }

    /// Independent pages: one pool job each, processed "concurrently,
    /// independently, and in any order" (§IV-D); results re-ordered to
    /// match the request.
    fn serve_parallel_pages(
        &self,
        cd: Arc<CachedDescriptor>,
        pages: Vec<(PageNo, Arc<Page>)>,
        tenant: TenantId,
    ) -> Result<Vec<PageResult>> {
        let n = pages.len();
        let (tx, rx) = bounded(n.max(1));
        let mut payloads: Vec<Option<PagePayload>> = vec![None; n];
        let mut submitted = 0usize;
        for (idx, (no, page)) in pages.iter().enumerate() {
            let skip = {
                let policy = self.skip_policy.read();
                policy.should_skip(&self.skip_counter, *no)
            };
            if skip {
                self.metrics.add(|m| &m.ps_ndp_skipped, 1);
                payloads[idx] = Some(PagePayload::Raw(page.clone()));
                continue;
            }
            let cd = cd.clone();
            let plugin = self.plugin.clone();
            let metrics = self.metrics.clone();
            let job_page = page.clone();
            let tx = tx.clone();
            let service = Duration::from_micros(self.cfg.ndp_service_us);
            let ok = self.admit(tenant, move || {
                if !service.is_zero() {
                    std::thread::sleep(service);
                }
                let _cpu = taurus_common::metrics::CpuGuard::new(&metrics.ps_cpu_ns);
                let out = plugin.process_page(&cd, &job_page);
                let _ = tx.send((idx, out));
            });
            if ok {
                submitted += 1;
            } else {
                // Queue full: best-effort skip (§IV-D2).
                self.metrics.add(|m| &m.ps_ndp_skipped, 1);
                payloads[idx] = Some(PagePayload::Raw(page.clone()));
            }
            let _ = no;
        }
        for _ in 0..submitted {
            let (idx, out) = rx
                .recv()
                .map_err(|_| Error::Internal("ndp worker died".into()))?;
            match out {
                Ok((ndp_page, stats)) => {
                    self.metrics.add(|m| &m.ps_pages_processed, 1);
                    self.metrics
                        .add(|m| &m.ps_records_filtered, stats.records_filtered);
                    self.metrics
                        .add(|m| &m.ps_records_aggregated, stats.records_aggregated);
                    payloads[idx] = Some(PagePayload::Ndp(Arc::new(ndp_page)));
                }
                Err(_) => {
                    self.metrics.add(|m| &m.ps_ndp_skipped, 1);
                    payloads[idx] = Some(PagePayload::Raw(pages[idx].1.clone()));
                }
            }
        }
        Ok(pages
            .iter()
            .zip(payloads)
            .map(|((no, raw), p)| PageResult {
                page_no: *no,
                payload: p.unwrap_or_else(|| PagePayload::Raw(raw.clone())),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::SpaceId;

    fn store() -> Arc<PageStore> {
        PageStore::new(
            0,
            PageStoreConfig {
                slice_pages: 8,
                ..Default::default()
            },
            Metrics::shared(),
        )
    }

    /// A valid descriptor that requests no NDP work (pure batched read).
    fn no_work_descriptor() -> Arc<Vec<u8>> {
        Arc::new(
            taurus_expr::descriptor::NdpDescriptor {
                index_id: 7,
                record_dtypes: vec![taurus_common::DataType::BigInt],
                key_positions: vec![0],
                projection: None,
                predicate_bitcode: None,
                aggregation: None,
                low_watermark: 100,
            }
            .encode(),
        )
    }

    fn new_page_redo(space: u32, page_no: PageNo, lsn: Lsn) -> RedoRecord {
        RedoRecord {
            lsn,
            space: SpaceId(space),
            page_no,
            body: crate::redo::RedoBody::NewPage(
                Page::new_index(1024, SpaceId(space), page_no, 7, 0).into_bytes(),
            ),
        }
    }

    #[test]
    fn apply_redo_creates_versions_and_reads_by_lsn() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 3, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 3, 10)]).unwrap();
        ps.apply_redo(&[RedoRecord {
            lsn: 20,
            space: SpaceId(1),
            page_no: 3,
            body: crate::redo::RedoBody::SetNext(4),
        }])
        .unwrap();
        assert_eq!(ps.applied_lsn(sid), 20);
        let v10 = ps.read_page(sid, 3, Some(10)).unwrap();
        assert_eq!(v10.next(), taurus_page::NO_PAGE);
        let v20 = ps.read_page(sid, 3, Some(25)).unwrap();
        assert_eq!(v20.next(), 4);
        let newest = ps.read_page(sid, 3, None).unwrap();
        assert_eq!(newest.lsn(), 20);
        // Before the page existed.
        assert!(ps.read_page(sid, 3, Some(5)).is_err());
    }

    #[test]
    fn version_chain_is_trimmed() {
        let ps = PageStore::new(
            0,
            PageStoreConfig {
                versions_retained: 3,
                slice_pages: 8,
                ..Default::default()
            },
            Metrics::shared(),
        );
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1)]).unwrap();
        for lsn in 2..10 {
            ps.apply_redo(&[RedoRecord {
                lsn,
                space: SpaceId(1),
                page_no: 0,
                body: crate::redo::RedoBody::SetNext(lsn as u32),
            }])
            .unwrap();
        }
        // Old versions gone.
        assert!(ps.read_page(sid, 0, Some(3)).is_err());
        assert!(ps.read_page(sid, 0, Some(9)).is_ok());
    }

    #[test]
    fn version_pin_checks_distinguish_trimmed_from_missing() {
        let ps = PageStore::new(
            0,
            PageStoreConfig {
                versions_retained: 2,
                slice_pages: 8,
                ..Default::default()
            },
            Metrics::shared(),
        );
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 10)]).unwrap();
        for lsn in 11..15 {
            ps.apply_redo(&[RedoRecord {
                lsn,
                space: SpaceId(1),
                page_no: 0,
                body: crate::redo::RedoBody::SetNext(lsn as u32),
            }])
            .unwrap();
        }
        // Retention holds the two newest versions (13, 14).
        assert!(ps.has_version_at(sid, 0, 14));
        assert!(ps.has_version_at(sid, 0, 13));
        assert!(!ps.has_version_at(sid, 0, 12), "trimmed below the horizon");
        assert!(!ps.has_version_at(sid, 0, 9), "before the page existed");
        assert!(!ps.has_version_at(sid, 1, 9), "page never existed");
        // A pinned read below the horizon names the retention boundary.
        match ps.read_page(sid, 0, Some(11)) {
            Err(Error::InvalidState(m)) => {
                assert!(m.contains("oldest retained lsn 13"), "message: {m}")
            }
            other => panic!("expected InvalidState, got {other:?}"),
        }
    }

    #[test]
    fn system_records_are_skipped_by_apply() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        // A raw log batch fed to a store must not corrupt it: system
        // records apply as no-ops, page records apply normally.
        ps.apply_redo(&[
            RedoRecord {
                lsn: 1,
                space: SpaceId(0),
                page_no: 0,
                body: crate::redo::RedoBody::SysTrxEnd {
                    trx: 5,
                    aborted: false,
                    active: vec![],
                    low_limit: 6,
                },
            },
            new_page_redo(1, 0, 2),
            RedoRecord {
                lsn: 3,
                space: SpaceId(1),
                page_no: 0,
                body: crate::redo::RedoBody::SysUndo {
                    key: vec![1, 2],
                    writer: 5,
                    prev: None,
                },
            },
        ])
        .unwrap();
        assert!(ps.read_page(sid, 0, None).is_ok());
        assert_eq!(ps.applied_lsn(sid), 2, "only the page record applied");
    }

    #[test]
    fn missing_slice_is_not_found() {
        let ps = store();
        let sid = SliceId::of(SpaceId(9), 0, 8);
        assert!(matches!(
            ps.read_page(sid, 0, None),
            Err(Error::NotFound(_))
        ));
        assert!(ps.apply_redo(&[new_page_redo(9, 0, 1)]).is_err());
    }

    #[test]
    fn poisoned_store_fails_reads_until_revived() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1)]).unwrap();
        assert!(ps.read_page(sid, 0, None).is_ok());
        ps.set_poisoned(true);
        assert!(matches!(
            ps.read_page(sid, 0, None),
            Err(Error::InvalidState(_))
        ));
        let req = NdpBatchRequest {
            slice: sid,
            pages: vec![0],
            read_lsn: 1,
            descriptor: no_work_descriptor(),
            tenant: taurus_common::DEFAULT_TENANT,
        };
        assert!(ps.serve_ndp_batch(&req).is_err());
        // Writes still apply while down; a revived store serves them.
        ps.apply_redo(&[RedoRecord {
            lsn: 2,
            space: SpaceId(1),
            page_no: 0,
            body: crate::redo::RedoBody::SetNext(9),
        }])
        .unwrap();
        ps.set_poisoned(false);
        assert_eq!(ps.read_page(sid, 0, None).unwrap().next(), 9);
    }

    #[test]
    fn request_accounting_charges_gauge_and_peak() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1)]).unwrap();
        assert_eq!(ps.active_requests_peak(), 0);
        // A no-work descriptor: served inline as raw, still accounted.
        let req = NdpBatchRequest {
            slice: sid,
            pages: vec![0],
            read_lsn: 1,
            descriptor: no_work_descriptor(),
            tenant: taurus_common::DEFAULT_TENANT,
        };
        ps.serve_ndp_batch(&req).unwrap();
        assert_eq!(ps.active_requests(), 0, "gauge balanced after serving");
        assert_eq!(ps.active_requests_peak(), 1);
    }

    #[test]
    fn freed_page_not_served() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1)]).unwrap();
        ps.apply_redo(&[RedoRecord {
            lsn: 2,
            space: SpaceId(1),
            page_no: 0,
            body: crate::redo::RedoBody::FreePage,
        }])
        .unwrap();
        assert!(ps.read_page(sid, 0, None).is_err());
        // The old version is still readable at its LSN (snapshot reads).
        assert!(ps.read_page(sid, 0, Some(1)).is_ok());
    }

    /// A descriptor that requests NDP work (projection), so the serving
    /// path goes through admission rather than the pure-read shortcut.
    fn work_descriptor() -> Arc<Vec<u8>> {
        Arc::new(
            taurus_expr::descriptor::NdpDescriptor {
                index_id: 7,
                record_dtypes: vec![taurus_common::DataType::BigInt],
                key_positions: vec![0],
                projection: Some(vec![0]),
                predicate_bitcode: None,
                aggregation: None,
                low_watermark: 100,
            }
            .encode(),
        )
    }

    #[test]
    fn latency_fault_delays_reads_but_serves_them() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1)]).unwrap();
        ps.set_fault(FaultPolicy::Latency(Duration::from_millis(30)));
        let t0 = std::time::Instant::now();
        assert!(ps.read_page(sid, 0, None).is_ok(), "brownout ≠ failure");
        assert!(t0.elapsed() >= Duration::from_millis(30));
        ps.set_fault(FaultPolicy::None);
        assert!(ps.read_page(sid, 0, None).is_ok());
    }

    #[test]
    fn error_until_lsn_clears_once_the_slice_catches_up() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1)]).unwrap();
        ps.set_fault(FaultPolicy::ErrorUntilLsn(5));
        match ps.read_page(sid, 0, None) {
            Err(Error::InvalidState(m)) => assert!(m.contains("browned out"), "{m}"),
            other => panic!("expected brownout error, got {other:?}"),
        }
        // Redo still applies while browned out; the fault self-clears.
        ps.apply_redo(&[RedoRecord {
            lsn: 5,
            space: SpaceId(1),
            page_no: 0,
            body: crate::redo::RedoBody::SetNext(2),
        }])
        .unwrap();
        assert!(ps.read_page(sid, 0, None).is_ok());
    }

    #[test]
    fn error_rate_is_all_or_nothing_at_the_extremes() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1)]).unwrap();
        ps.set_fault(FaultPolicy::ErrorRate(100));
        for _ in 0..10 {
            assert!(ps.read_page(sid, 0, None).is_err());
        }
        ps.set_fault(FaultPolicy::ErrorRate(0));
        for _ in 0..10 {
            assert!(ps.read_page(sid, 0, None).is_ok());
        }
    }

    #[test]
    fn set_poisoned_is_a_fault_policy_wrapper() {
        let ps = store();
        assert!(!ps.is_poisoned());
        ps.set_poisoned(true);
        assert!(ps.is_poisoned());
        assert!(matches!(ps.fault(), FaultPolicy::Poison));
        ps.set_poisoned(false);
        assert!(!ps.is_poisoned());
        assert!(matches!(ps.fault(), FaultPolicy::None));
    }

    #[test]
    fn force_shed_degrades_whole_batches_to_raw() {
        let ps = store();
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        ps.apply_redo(&[new_page_redo(1, 0, 1), new_page_redo(1, 1, 2)])
            .unwrap();
        let req = NdpBatchRequest {
            slice: sid,
            pages: vec![0, 1],
            read_lsn: 2,
            descriptor: work_descriptor(),
            tenant: 7,
        };
        ps.set_force_shed(true);
        let out = ps.serve_ndp_batch(&req).unwrap();
        assert_eq!(out.len(), 2);
        assert!(
            out.iter().all(|r| matches!(r.payload, PagePayload::Raw(_))),
            "shed batch must ship raw pages only"
        );
        let snap = ps.metrics.snapshot();
        assert_eq!(snap.ps_ndp_shed, 2, "both pages counted as shed");
        assert_eq!(
            ps.metrics
                .tenants
                .tenant(7)
                .pages_shed
                .load(Ordering::Relaxed),
            2,
            "shed billed to the requesting tenant"
        );
        // Shed off: the same batch goes through NDP admission again.
        ps.set_force_shed(false);
        ps.serve_ndp_batch(&req).unwrap();
        assert_eq!(ps.metrics.snapshot().ps_ndp_shed, 2, "no further sheds");
        assert!(
            ps.metrics
                .tenants
                .tenant(7)
                .ndp_admitted
                .load(Ordering::Relaxed)
                > 0,
            "work admitted once shed cleared"
        );
    }

    #[test]
    fn tenant_quota_rejection_degrades_to_raw_and_is_billed() {
        // Quota 0-but-set-to-1 with a multi-page batch: the parallel path
        // admits at most 1 queued job per tenant at a time; rejected pages
        // ship raw (never error) and the rejection is billed per-tenant.
        let ps = PageStore::new(
            0,
            PageStoreConfig {
                slice_pages: 8,
                ndp_threads: 1,
                ndp_queue: 16,
                ..Default::default()
            },
            Metrics::shared(),
        );
        let sid = SliceId::of(SpaceId(1), 0, 8);
        ps.create_slice(sid);
        let redo: Vec<RedoRecord> = (0..4).map(|p| new_page_redo(1, p, p as u64 + 1)).collect();
        ps.apply_redo(&redo).unwrap();
        ps.set_ndp_tenant_quota(1);
        let req = NdpBatchRequest {
            slice: sid,
            pages: vec![0, 1, 2, 3],
            read_lsn: 4,
            descriptor: work_descriptor(),
            tenant: 3,
        };
        let out = ps.serve_ndp_batch(&req).unwrap();
        assert_eq!(out.len(), 4, "quota pressure never drops pages");
        // With one worker and quota 1, at least one page must have been
        // quota-refused (the batch outpaces the drain); it shipped raw.
        let t = ps.metrics.tenants.tenant(3);
        let admitted = t.ndp_admitted.load(Ordering::Relaxed);
        let refused = t.ndp_quota_rejected.load(Ordering::Relaxed);
        assert!(admitted >= 1, "some work admitted");
        assert_eq!(
            admitted + refused,
            4,
            "every page either admitted or quota-refused"
        );
    }
}
