//! Page Stores (§II, §IV-D): the storage-layer servers that keep pages up
//! to date by applying redo, serve reads, and perform best-effort NDP
//! processing through a DBMS-independent plugin framework.
//!
//! * [`redo`] — redo record format and application.
//! * [`store`] — the Page Store service: slices, LSN-versioned pages,
//!   batch serving with resource control.
//! * [`plugin`] — the NDP plugin framework + the InnoDB plugin
//!   (visibility, filtering, projection, per-page and cross-page
//!   aggregation).
//! * [`cache`] — the descriptor cache (§IV-D1).
//! * [`resource`] — the dedicated NDP thread pool with bounded queue and
//!   best-effort skip (§IV-D2).

pub mod cache;
pub mod plugin;
pub mod redo;
pub mod resource;
pub mod store;

pub use cache::{CachedDescriptor, DescriptorCache};
pub use plugin::{InnodbNdpPlugin, NdpPlugin, PluginStats};
pub use redo::{RedoBody, RedoRecord};
pub use resource::{Admission, NdpPool, SkipPolicy};
pub use store::{
    FaultPolicy, NdpBatchRequest, PagePayload, PageResult, PageStore, PageStoreConfig,
};
