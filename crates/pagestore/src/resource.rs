//! NDP resource control (§IV-D2).
//!
//! "A dedicated thread pool was introduced to control the number of NDP
//! pages processed concurrently. New NDP page read requests are added to a
//! queue, and wait for their turn. NDP processing does not block regular
//! page reads/writes, and is treated as a best-effort activity."
//!
//! The pool's queue is bounded: when it is full, [`NdpPool::try_submit`]
//! fails and the Page Store returns the raw page instead — the page-scoped
//! best-effort fallback that makes NDP benefit "not all-or-nothing". A
//! pluggable [`SkipPolicy`] lets tests and benchmarks inject deterministic
//! skip patterns (every Nth page, all pages, none) to verify the compute
//! node completes the work identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Sender, TrySendError};
use taurus_common::PageNo;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Deterministic skip injection for tests/benchmarks.
#[derive(Clone)]
pub enum SkipPolicy {
    /// Normal operation: skip only on real queue pressure.
    None,
    /// Skip NDP for every page (always return raw).
    All,
    /// Skip every k-th page (k >= 1), counting from the store's start.
    EveryNth(u64),
}

impl SkipPolicy {
    pub fn should_skip(&self, counter: &AtomicU64, _page: PageNo) -> bool {
        match self {
            SkipPolicy::None => false,
            SkipPolicy::All => true,
            SkipPolicy::EveryNth(k) => {
                let n = counter.fetch_add(1, Ordering::Relaxed);
                n.is_multiple_of(*k)
            }
        }
    }
}

/// The dedicated NDP worker pool with a bounded request queue.
pub struct NdpPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs rejected because the queue was full.
    pub rejected: AtomicU64,
    /// Jobs accepted.
    pub accepted: AtomicU64,
}

impl NdpPool {
    pub fn new(threads: usize, queue_cap: usize) -> Arc<NdpPool> {
        assert!(threads > 0);
        let (tx, rx) = bounded::<Job>(queue_cap.max(1));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = rx.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ndp-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn ndp worker"),
            );
        }
        Arc::new(NdpPool {
            tx: Some(tx),
            workers,
            rejected: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
        })
    }

    /// Submit without waiting. `false` means the queue is full — the caller
    /// must fall back to serving the raw page (best-effort semantics; NDP
    /// work never blocks).
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let tx = self.tx.as_ref().expect("pool alive");
        match tx.try_send(Box::new(job)) {
            Ok(()) => {
                self.accepted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Blocking submit — used for the sequential cross-page-aggregation
    /// job, which represents the whole batch and should wait its turn in
    /// the queue rather than degrade to N raw pages.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        let tx = self.tx.as_ref().expect("pool alive");
        let ok = tx.send(Box::new(job)).is_ok();
        if ok {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }
}

impl Drop for NdpPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn pool_runs_jobs() {
        let pool = NdpPool::new(2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = bounded(16);
        for _ in 0..8 {
            let d = done.clone();
            let tx = tx.clone();
            assert!(pool.try_submit(move || {
                d.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(pool.accepted.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn full_queue_rejects_best_effort() {
        // One slow worker + tiny queue: overflow must be rejected, not block.
        let pool = NdpPool::new(1, 1);
        let (gate_tx, gate_rx) = bounded::<()>(0);
        // Occupy the worker.
        assert!(pool.try_submit(move || {
            let _ = gate_rx.recv();
        }));
        // Fill the queue (capacity 1) — this one is accepted.
        std::thread::sleep(Duration::from_millis(50));
        assert!(pool.try_submit(|| {}));
        // Queue now full: must reject without blocking.
        let mut saw_reject = false;
        for _ in 0..10 {
            if !pool.try_submit(|| {}) {
                saw_reject = true;
                break;
            }
        }
        assert!(saw_reject, "expected queue-full rejection");
        assert!(pool.rejected.load(Ordering::Relaxed) >= 1);
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn skip_policy_every_nth() {
        let c = AtomicU64::new(0);
        let p = SkipPolicy::EveryNth(3);
        let skips: Vec<bool> = (0..9).map(|i| p.should_skip(&c, i)).collect();
        assert_eq!(
            skips,
            vec![true, false, false, true, false, false, true, false, false]
        );
        assert!(SkipPolicy::All.should_skip(&c, 0));
        assert!(!SkipPolicy::None.should_skip(&c, 0));
    }

    #[test]
    fn drop_joins_workers() {
        let pool = NdpPool::new(4, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let d = done.clone();
            pool.try_submit(move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // must not hang
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
