//! NDP resource control (§IV-D2).
//!
//! "A dedicated thread pool was introduced to control the number of NDP
//! pages processed concurrently. New NDP page read requests are added to a
//! queue, and wait for their turn. NDP processing does not block regular
//! page reads/writes, and is treated as a best-effort activity."
//!
//! The pool's queue is bounded: when it is full, [`NdpPool::try_submit`]
//! fails and the Page Store returns the raw page instead — the page-scoped
//! best-effort fallback that makes NDP benefit "not all-or-nothing". A
//! pluggable [`SkipPolicy`] lets tests and benchmarks inject deterministic
//! skip patterns (every Nth page, all pages, none) to verify the compute
//! node completes the work identically.
//!
//! ## Multi-tenant admission
//!
//! Queued jobs live in **per-tenant FIFO queues** drained round-robin by
//! the workers: within a tenant, order is preserved; across tenants, a
//! burst from one tenant cannot push another tenant's single job to the
//! back of a long line. An optional per-tenant **quota** bounds how many
//! jobs one tenant may have queued at once
//! ([`NdpPool::set_tenant_quota`]; 0 = unlimited). A tenant at its quota
//! is refused ([`Admission::QuotaExceeded`]) and the page ships raw — the
//! same degrade-to-compute fallback as queue pressure, scoped to the
//! offender. The global queue bound is unchanged and reported by
//! [`NdpPool::overloaded`], which the store uses for its batch-level
//! shed-to-compute decision.

use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound::{Excluded, Unbounded};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use taurus_common::{PageNo, TenantId, DEFAULT_TENANT};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Deterministic skip injection for tests/benchmarks.
#[derive(Clone)]
pub enum SkipPolicy {
    /// Normal operation: skip only on real queue pressure.
    None,
    /// Skip NDP for every page (always return raw).
    All,
    /// Skip every k-th page (k >= 1), counting from the store's start.
    EveryNth(u64),
}

impl SkipPolicy {
    pub fn should_skip(&self, counter: &AtomicU64, _page: PageNo) -> bool {
        match self {
            SkipPolicy::None => false,
            SkipPolicy::All => true,
            SkipPolicy::EveryNth(k) => {
                let n = counter.fetch_add(1, Ordering::Relaxed);
                n.is_multiple_of(*k)
            }
        }
    }
}

/// Outcome of a non-blocking admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    Admitted,
    /// The global queue is full (store saturated) — the caller serves the
    /// raw page; the whole batch may shed via [`NdpPool::overloaded`].
    QueueFull,
    /// This tenant is at its admission quota; other tenants' pushdown is
    /// unaffected.
    QuotaExceeded,
}

struct PoolState {
    /// Per-tenant FIFO queues; entries are removed when drained so the
    /// map only holds tenants with work queued.
    queues: BTreeMap<TenantId, VecDeque<Job>>,
    /// Total queued jobs across tenants (running jobs not included —
    /// exactly the old bounded-channel occupancy).
    queued: usize,
    /// Last tenant a worker served; the next pop scans strictly after it
    /// (wrapping), which is what makes draining fair round-robin.
    rr_cursor: TenantId,
    shutdown: bool,
}

impl PoolState {
    fn pop_next(&mut self) -> Option<Job> {
        let next = self
            .queues
            .range((Excluded(self.rr_cursor), Unbounded))
            .next()
            .map(|(id, _)| *id)
            .or_else(|| self.queues.keys().next().copied())?;
        // lint:allow(panic): `next` was just read from this map's keys
        let q = self.queues.get_mut(&next).expect("queue exists");
        // lint:allow(panic): emptied queues are removed below, so `q` has a job
        let job = q.pop_front().expect("non-empty queue");
        if q.is_empty() {
            self.queues.remove(&next);
        }
        self.rr_cursor = next;
        self.queued -= 1;
        Some(job)
    }
}

/// State + condvars shared with the worker threads. Workers hold ONLY
/// this inner `Arc` — never the pool itself — so dropping the last
/// outside `Arc<NdpPool>` runs the pool's `Drop` and joins them.
struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for queued jobs.
    jobs_cv: Condvar,
    /// Blocking submitters wait here for queue space.
    space_cv: Condvar,
}

impl Shared {
    /// Lock the pool state. A poisoned mutex means a worker panicked
    /// while holding the lock; the pool has no recovery path from that.
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        // lint:allow(panic): poisoned pool mutex is unrecoverable
        self.state.lock().unwrap()
    }

    fn worker_loop(&self) {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.pop_next() {
                drop(st);
                self.space_cv.notify_one();
                job();
                st = self.lock();
                continue;
            }
            if st.shutdown {
                return;
            }
            // lint:allow(panic): poisoned pool mutex is unrecoverable
            st = self.jobs_cv.wait(st).unwrap();
        }
    }
}

/// The dedicated NDP worker pool: bounded request queue, per-tenant fair
/// scheduling (see the module docs).
pub struct NdpPool {
    shared: Arc<Shared>,
    cap: usize,
    /// Per-tenant queued-job quota; 0 = unlimited.
    tenant_quota: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
    /// Jobs rejected because the queue was full.
    pub rejected: AtomicU64,
    /// Jobs rejected at a tenant's admission quota.
    pub quota_rejected: AtomicU64,
    /// Jobs accepted.
    pub accepted: AtomicU64,
}

impl NdpPool {
    pub fn new(threads: usize, queue_cap: usize) -> Arc<NdpPool> {
        assert!(threads > 0);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queues: BTreeMap::new(),
                queued: 0,
                rr_cursor: 0,
                shutdown: false,
            }),
            jobs_cv: Condvar::new(),
            space_cv: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let sh = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ndp-worker-{i}"))
                    .spawn(move || sh.worker_loop())
                    // lint:allow(panic): at-startup spawn fails only on OS resource exhaustion
                    .expect("spawn ndp worker"),
            );
        }
        Arc::new(NdpPool {
            shared,
            cap: queue_cap.max(1),
            tenant_quota: AtomicUsize::new(0),
            workers,
            rejected: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
        })
    }

    /// The per-tenant queued-job quota (0 = unlimited).
    pub fn tenant_quota(&self) -> usize {
        self.tenant_quota.load(Ordering::Relaxed)
    }

    pub fn set_tenant_quota(&self, quota: usize) {
        self.tenant_quota.store(quota, Ordering::Relaxed);
    }

    /// Jobs currently queued (not counting running jobs).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queued
    }

    /// Is the queue saturated? The store-level shed signal: when true, a
    /// whole incoming batch degrades to raw pages up front instead of
    /// racing N per-page submissions against a full queue.
    pub fn overloaded(&self) -> bool {
        self.shared.lock().queued >= self.cap
    }

    /// Submit without waiting, attributed to a tenant. Anything but
    /// [`Admission::Admitted`] means the caller must fall back to serving
    /// the raw page (best-effort semantics; NDP work never blocks).
    pub fn try_submit_for(
        &self,
        tenant: TenantId,
        job: impl FnOnce() + Send + 'static,
    ) -> Admission {
        let mut st = self.shared.lock();
        if st.shutdown || st.queued >= self.cap {
            drop(st);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Admission::QueueFull;
        }
        let quota = self.tenant_quota.load(Ordering::Relaxed);
        if quota > 0 && st.queues.get(&tenant).map_or(0, VecDeque::len) >= quota {
            drop(st);
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return Admission::QuotaExceeded;
        }
        st.queues
            .entry(tenant)
            .or_default()
            .push_back(Box::new(job));
        st.queued += 1;
        drop(st);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.jobs_cv.notify_one();
        Admission::Admitted
    }

    /// Submit without waiting for the anonymous tenant. `false` means the
    /// queue was full.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.try_submit_for(DEFAULT_TENANT, job) == Admission::Admitted
    }

    /// Blocking submit — used for the sequential cross-page-aggregation
    /// job, which represents the whole batch and should wait its turn in
    /// the queue rather than degrade to N raw pages. Exempt from the
    /// tenant quota (one job per batch is already bounded by the
    /// caller's batch fan-out).
    pub fn submit_for(&self, tenant: TenantId, job: impl FnOnce() + Send + 'static) -> bool {
        let mut st = self.shared.lock();
        while st.queued >= self.cap && !st.shutdown {
            // lint:allow(panic): poisoned pool mutex is unrecoverable
            st = self.shared.space_cv.wait(st).unwrap();
        }
        if st.shutdown {
            return false;
        }
        st.queues
            .entry(tenant)
            .or_default()
            .push_back(Box::new(job));
        st.queued += 1;
        drop(st);
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.jobs_cv.notify_one();
        true
    }

    /// Blocking submit for the anonymous tenant.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.submit_for(DEFAULT_TENANT, job)
    }
}

impl Drop for NdpPool {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.jobs_cv.notify_all();
        self.shared.space_cv.notify_all();
        // Workers drain every queued job before exiting (pop-then-check),
        // preserving the old channel-disconnect semantics.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn pool_runs_jobs() {
        let pool = NdpPool::new(2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = bounded(16);
        for _ in 0..8 {
            let d = done.clone();
            let tx = tx.clone();
            assert!(pool.try_submit(move || {
                d.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(pool.accepted.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn full_queue_rejects_best_effort() {
        // One slow worker + tiny queue: overflow must be rejected, not block.
        let pool = NdpPool::new(1, 1);
        let (gate_tx, gate_rx) = bounded::<()>(0);
        // Occupy the worker.
        assert!(pool.try_submit(move || {
            let _ = gate_rx.recv();
        }));
        // Fill the queue (capacity 1) — this one is accepted.
        std::thread::sleep(Duration::from_millis(50));
        assert!(pool.try_submit(|| {}));
        // Queue now full: must reject without blocking.
        let mut saw_reject = false;
        for _ in 0..10 {
            if !pool.try_submit(|| {}) {
                saw_reject = true;
                break;
            }
        }
        assert!(saw_reject, "expected queue-full rejection");
        assert!(pool.rejected.load(Ordering::Relaxed) >= 1);
        assert!(pool.overloaded(), "full queue is the overload signal");
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn skip_policy_every_nth() {
        let c = AtomicU64::new(0);
        let p = SkipPolicy::EveryNth(3);
        let skips: Vec<bool> = (0..9).map(|i| p.should_skip(&c, i)).collect();
        assert_eq!(
            skips,
            vec![true, false, false, true, false, false, true, false, false]
        );
        assert!(SkipPolicy::All.should_skip(&c, 0));
        assert!(!SkipPolicy::None.should_skip(&c, 0));
    }

    #[test]
    fn drop_joins_workers() {
        let pool = NdpPool::new(4, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let d = done.clone();
            pool.try_submit(move || {
                d.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // must not hang
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn tenant_quota_bounds_one_tenant_without_touching_others() {
        // One worker held busy so queued jobs stay queued.
        let pool = NdpPool::new(1, 16);
        let (gate_tx, gate_rx) = bounded::<()>(0);
        assert!(pool.try_submit(move || {
            let _ = gate_rx.recv();
        }));
        std::thread::sleep(Duration::from_millis(50));
        pool.set_tenant_quota(2);
        // Tenant 1 may queue 2 jobs, the 3rd hits its quota…
        assert_eq!(pool.try_submit_for(1, || {}), Admission::Admitted);
        assert_eq!(pool.try_submit_for(1, || {}), Admission::Admitted);
        assert_eq!(pool.try_submit_for(1, || {}), Admission::QuotaExceeded);
        // …while tenant 2 is unaffected by tenant 1's rejection.
        assert_eq!(pool.try_submit_for(2, || {}), Admission::Admitted);
        assert_eq!(pool.quota_rejected.load(Ordering::Relaxed), 1);
        // Queue-full still wins over quota accounting (global bound).
        let small = NdpPool::new(1, 1);
        let (g2_tx, g2_rx) = bounded::<()>(0);
        assert!(small.try_submit(move || {
            let _ = g2_rx.recv();
        }));
        std::thread::sleep(Duration::from_millis(50));
        small.set_tenant_quota(10);
        assert_eq!(small.try_submit_for(3, || {}), Admission::Admitted);
        assert_eq!(small.try_submit_for(3, || {}), Admission::QueueFull);
        gate_tx.send(()).unwrap();
        g2_tx.send(()).unwrap();
    }

    #[test]
    fn queued_tenants_drain_round_robin() {
        // One worker held at a gate while two tenants queue: tenant A
        // floods 4 jobs first, then tenant B adds 2. Fair draining must
        // interleave B between A's jobs instead of appending B at the end.
        let pool = NdpPool::new(1, 16);
        let (gate_tx, gate_rx) = bounded::<()>(0);
        assert!(pool.try_submit(move || {
            let _ = gate_rx.recv();
        }));
        std::thread::sleep(Duration::from_millis(50));
        let order = Arc::new(Mutex::new(Vec::new()));
        let push = |who: &'static str, order: &Arc<Mutex<Vec<&'static str>>>| {
            let order = order.clone();
            move || order.lock().unwrap().push(who)
        };
        for _ in 0..4 {
            assert_eq!(
                pool.try_submit_for(1, push("A", &order)),
                Admission::Admitted
            );
        }
        for _ in 0..2 {
            assert_eq!(
                pool.try_submit_for(2, push("B", &order)),
                Admission::Admitted
            );
        }
        gate_tx.send(()).unwrap();
        // Wait for the drain.
        for _ in 0..200 {
            if order.lock().unwrap().len() == 6 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let got = order.lock().unwrap().clone();
        assert_eq!(got.len(), 6, "all jobs ran: {got:?}");
        // B's first job must run before A's flood fully drains.
        let first_b = got.iter().position(|w| *w == "B").unwrap();
        assert!(
            first_b < 2,
            "tenant B starved behind tenant A's backlog: {got:?}"
        );
    }
}
