//! Behavioural tests for the InnoDB NDP plugin, including a faithful
//! replay of the paper's §V-C worked examples (pages P1/P2).

use std::sync::Arc;

use taurus_common::{DataType, Metrics, SliceId, SpaceId, TrxId, Value};
use taurus_expr::agg::{decode_states, AggSpec, AggState};
use taurus_expr::ast::Expr;
use taurus_expr::compile::lower;
use taurus_expr::descriptor::{NdpAggSpec, NdpDescriptor};
use taurus_page::{encode_record, Page, RecType, RecordLayout, RecordMeta, RecordView};
use taurus_pagestore::{
    CachedDescriptor, InnodbNdpPlugin, NdpBatchRequest, NdpPlugin, PagePayload, PageStore,
    PageStoreConfig, RedoBody, RedoRecord, SkipPolicy,
};

const WATERMARK: TrxId = 100;

/// Two-column records: (id BIGINT key, val BIGINT).
fn layout() -> RecordLayout {
    RecordLayout::new(vec![DataType::BigInt, DataType::BigInt])
}

fn dtypes() -> Vec<DataType> {
    vec![DataType::BigInt, DataType::BigInt]
}

/// Build a leaf page from (id, val, ambiguous?) triples, in key order.
fn build_page(space: u32, page_no: u32, rows: &[(i64, i64, bool)]) -> Page {
    let l = layout();
    let mut p = Page::new_index(4096, SpaceId(space), page_no, 7, 0);
    for &(id, val, ambiguous) in rows {
        let trx = if ambiguous { WATERMARK + 5 } else { 1 };
        let mut b = Vec::new();
        encode_record(
            &l,
            &[Value::Int(id), Value::Int(val)],
            RecordMeta::ordinary(trx),
            None,
            &mut b,
        )
        .unwrap();
        p.append_record(&b).unwrap();
    }
    p
}

fn descriptor(
    projection: Option<Vec<u16>>,
    predicate: Option<&Expr>,
    aggregation: Option<NdpAggSpec>,
) -> Vec<u8> {
    NdpDescriptor {
        index_id: 7,
        record_dtypes: dtypes(),
        key_positions: vec![0],
        projection,
        predicate_bitcode: predicate.map(|e| lower(e).unwrap().encode_bitcode()),
        aggregation,
        low_watermark: WATERMARK,
    }
    .encode()
}

fn cached(bytes: &[u8]) -> CachedDescriptor {
    CachedDescriptor::prepare(bytes).unwrap()
}

/// Decode an NDP page into (rec_type, id, val?, agg_payload) tuples for
/// assertions. `val` is None for records whose layout dropped it.
fn read_ndp_page(
    page: &Page,
    full: &RecordLayout,
    proj: Option<&RecordLayout>,
) -> Vec<(RecType, i64, Option<i64>, Option<Vec<AggState>>)> {
    page.iter_chain()
        .map(|off| {
            let bytes = page.record_at(off);
            let probe = RecordView::new(bytes, full);
            let rt = probe.rec_type();
            let l = match rt {
                RecType::Ordinary => full,
                RecType::NdpProjection | RecType::NdpAggregate => proj.unwrap_or(full),
                other => panic!("unexpected record type {other:?}"),
            };
            let v = RecordView::new(bytes, l);
            let id = v.value(0).as_int().unwrap();
            let val = if l.n_cols() > 1 {
                v.value(1).as_int().ok()
            } else {
                None
            };
            let agg = v.agg_payload().map(|p| decode_states(p).unwrap());
            (rt, id, val, agg)
        })
        .collect()
}

#[test]
fn paper_example_page_p1_grouped_scalar_single_page() {
    // §V-C: P1 = {(1,2),(2,10)?,(3,7),(4,8)?,(5,2)}, SUM over val.
    // Expected NDP(P1) = {(2,10)?, (4,8)?, ((5,2), 9)} with 9 = 2 + 7.
    let p1 = build_page(
        1,
        0,
        &[
            (1, 2, false),
            (2, 10, true),
            (3, 7, false),
            (4, 8, true),
            (5, 2, false),
        ],
    );
    let desc = descriptor(
        None,
        None,
        Some(NdpAggSpec {
            specs: vec![AggSpec::sum(1)],
            group_cols: vec![],
        }),
    );
    let cd = cached(&desc);
    let (results, stats) = InnodbNdpPlugin
        .process_batch(&cd, &[(0, Arc::new(p1))])
        .unwrap();
    assert_eq!(results.len(), 1);
    let rows = read_ndp_page(&results[0].1, &cd.layout, cd.proj_layout.as_ref());
    assert_eq!(rows.len(), 3);
    assert_eq!(
        (rows[0].0, rows[0].1, rows[0].2),
        (RecType::Ordinary, 2, Some(10))
    );
    assert_eq!(
        (rows[1].0, rows[1].1, rows[1].2),
        (RecType::Ordinary, 4, Some(8))
    );
    assert_eq!(
        (rows[2].0, rows[2].1, rows[2].2),
        (RecType::NdpAggregate, 5, Some(2))
    );
    let payload = rows[2].3.as_ref().unwrap();
    assert_eq!(
        payload[0].finalize(),
        Value::Int(9),
        "payload excludes the carrier's own 2"
    );
    assert_eq!(stats.ambiguous, 2);
}

#[test]
fn paper_example_cross_page_p1_p2() {
    // §V-C: P2 = {(11,10),(12,2)?,(13,5),(14,9)}.
    // NDP(P1,P2) = {(2,10)?,(4,8)?,(12,2)?,((14,9),26)}, 26 = 2+9+15.
    let p1 = build_page(
        1,
        0,
        &[
            (1, 2, false),
            (2, 10, true),
            (3, 7, false),
            (4, 8, true),
            (5, 2, false),
        ],
    );
    let p2 = build_page(
        1,
        1,
        &[
            (11, 10, false),
            (12, 2, true),
            (13, 5, false),
            (14, 9, false),
        ],
    );
    let desc = descriptor(
        None,
        None,
        Some(NdpAggSpec {
            specs: vec![AggSpec::sum(1)],
            group_cols: vec![],
        }),
    );
    let cd = cached(&desc);
    let (results, _) = InnodbNdpPlugin
        .process_batch(&cd, &[(0, Arc::new(p1)), (1, Arc::new(p2))])
        .unwrap();
    assert_eq!(results.len(), 2);
    let by_no: std::collections::HashMap<u32, &Page> =
        results.iter().map(|(no, p)| (*no, p)).collect();
    // Page 0 kept only its ambiguous rows.
    let rows0 = read_ndp_page(by_no[&0], &cd.layout, None);
    assert_eq!(
        rows0.iter().map(|r| (r.0, r.1)).collect::<Vec<_>>(),
        vec![(RecType::Ordinary, 2), (RecType::Ordinary, 4)]
    );
    // Page 1 holds the carrier with the cross-page partial.
    let rows1 = read_ndp_page(by_no[&1], &cd.layout, None);
    assert_eq!(rows1.len(), 2);
    assert_eq!((rows1[0].0, rows1[0].1), (RecType::Ordinary, 12));
    assert_eq!(
        (rows1[1].0, rows1[1].1, rows1[1].2),
        (RecType::NdpAggregate, 14, Some(9))
    );
    let payload = rows1[1].3.as_ref().unwrap();
    assert_eq!(
        payload[0].finalize(),
        Value::Int(26),
        "2 (P1) + 9 (P1) + 15 (P2)"
    );
}

#[test]
fn filtering_drops_only_visible_false_rows() {
    // §V-B1: "A Page Store can only safely discard 'false' visible records."
    let p = build_page(
        1,
        0,
        &[
            (1, 100, false),
            (2, 1, false),
            (3, 100, true),
            (4, 1, true),
            (5, 100, false),
        ],
    );
    let pred = Expr::gt(Expr::col(1), Expr::int(50));
    let desc = descriptor(None, Some(&pred), None);
    let cd = cached(&desc);
    let (out, stats) = InnodbNdpPlugin.process_page(&cd, &p).unwrap();
    let rows = read_ndp_page(&out, &cd.layout, None);
    // Visible true: 1, 5. Ambiguous (any value): 3, 4. Visible false 2: gone.
    assert_eq!(
        rows.iter().map(|r| r.1).collect::<Vec<_>>(),
        vec![1, 3, 4, 5]
    );
    assert_eq!(stats.records_filtered, 1);
    // Ambiguous rows keep their Ordinary type and full bytes.
    assert!(rows.iter().all(|r| r.0 == RecType::Ordinary));
}

#[test]
fn projection_narrows_visible_rows_only() {
    // §V-A: "Only visible records are projected. Ambiguous records are
    // returned unchanged."
    let p = build_page(1, 0, &[(1, 7, false), (2, 8, true), (3, 9, false)]);
    let desc = descriptor(Some(vec![0]), None, None);
    let cd = cached(&desc);
    let (out, _) = InnodbNdpPlugin.process_page(&cd, &p).unwrap();
    let rows = read_ndp_page(&out, &cd.layout, cd.proj_layout.as_ref());
    assert_eq!(rows.len(), 3);
    assert_eq!(
        (rows[0].0, rows[0].1, rows[0].2),
        (RecType::NdpProjection, 1, None)
    );
    assert_eq!(
        (rows[1].0, rows[1].1, rows[1].2),
        (RecType::Ordinary, 2, Some(8))
    );
    assert_eq!(
        (rows[2].0, rows[2].1, rows[2].2),
        (RecType::NdpProjection, 3, None)
    );
    // The projected page is narrower than the source.
    assert!(out.byte_len() < p.byte_len());
}

#[test]
fn delete_marked_visible_rows_are_skipped() {
    let l = layout();
    let mut p = Page::new_index(4096, SpaceId(1), 0, 7, 0);
    for (id, deleted) in [(1i64, false), (2, true), (3, false)] {
        let mut b = Vec::new();
        encode_record(
            &l,
            &[Value::Int(id), Value::Int(id * 10)],
            RecordMeta {
                rec_type: RecType::Ordinary,
                delete_mark: deleted,
                heap_no: 0,
                trx_id: 1,
            },
            None,
            &mut b,
        )
        .unwrap();
        p.append_record(&b).unwrap();
    }
    let desc = descriptor(None, Some(&Expr::gt(Expr::col(1), Expr::int(0))), None);
    let cd = cached(&desc);
    let (out, _) = InnodbNdpPlugin.process_page(&cd, &p).unwrap();
    let rows = read_ndp_page(&out, &cd.layout, None);
    assert_eq!(rows.iter().map(|r| r.1).collect::<Vec<_>>(), vec![1, 3]);
}

#[test]
fn grouped_aggregation_one_carrier_per_group() {
    // GROUP BY id-prefix: here key col 0 itself; 2 rows per group value.
    let p = build_page(
        1,
        0,
        &[
            (1, 10, false),
            (1, 20, false),
            (2, 5, false),
            (2, 6, true),
            (3, 1, false),
        ],
    );
    let desc = descriptor(
        None,
        None,
        Some(NdpAggSpec {
            specs: vec![AggSpec::sum(1), AggSpec::count_star()],
            group_cols: vec![0],
        }),
    );
    let cd = cached(&desc);
    let (out, _) = InnodbNdpPlugin.process_page(&cd, &p).unwrap();
    let rows = read_ndp_page(&out, &cd.layout, None);
    // Group 1: carrier (1,20) payload SUM=10,COUNT=1.
    // Group 2: ambiguous (2,6) passes; carrier (2,5) payload empty partial.
    // Group 3: carrier (3,1).
    assert_eq!(rows.len(), 4);
    assert_eq!(
        (rows[0].0, rows[0].1, rows[0].2),
        (RecType::NdpAggregate, 1, Some(20))
    );
    let pay0 = rows[0].3.as_ref().unwrap();
    assert_eq!(pay0[0].finalize(), Value::Int(10));
    assert_eq!(pay0[1].finalize(), Value::Int(1));
    assert_eq!(
        (rows[1].0, rows[1].1, rows[1].2),
        (RecType::NdpAggregate, 2, Some(5))
    );
    let pay1 = rows[1].3.as_ref().unwrap();
    assert_eq!(
        pay1[1].finalize(),
        Value::Int(0),
        "no other visible rows in group 2"
    );
    assert_eq!((rows[2].0, rows[2].1), (RecType::Ordinary, 2));
    assert_eq!(
        (rows[3].0, rows[3].1, rows[3].2),
        (RecType::NdpAggregate, 3, Some(1))
    );
}

#[test]
fn all_rows_filtered_yields_empty_marker() {
    let p = build_page(1, 0, &[(1, 1, false), (2, 2, false)]);
    let pred = Expr::gt(Expr::col(1), Expr::int(1000));
    let desc = descriptor(None, Some(&pred), None);
    let cd = cached(&desc);
    let (out, stats) = InnodbNdpPlugin.process_page(&cd, &p).unwrap();
    assert_eq!(out.page_type(), taurus_page::PageType::NdpEmpty);
    assert_eq!(out.byte_len(), taurus_page::HEADER_LEN);
    assert_eq!(stats.records_filtered, 2);
}

#[test]
fn store_end_to_end_batch_with_skip_policy() {
    let metrics = Metrics::shared();
    let ps = PageStore::new(
        0,
        PageStoreConfig {
            slice_pages: 64,
            ..Default::default()
        },
        metrics.clone(),
    );
    let sid = SliceId::of(SpaceId(1), 0, 64);
    ps.create_slice(sid);
    // Install 4 pages via redo.
    for no in 0..4u32 {
        let rows: Vec<(i64, i64, bool)> = (0..10).map(|i| (no as i64 * 10 + i, i, false)).collect();
        let img = build_page(1, no, &rows).into_bytes();
        ps.apply_redo(&[RedoRecord {
            lsn: no as u64 + 1,
            space: SpaceId(1),
            page_no: no,
            body: RedoBody::NewPage(img),
        }])
        .unwrap();
    }
    ps.set_skip_policy(SkipPolicy::EveryNth(2)); // skip pages 0, 2
    let pred = Expr::ge(Expr::col(1), Expr::int(5));
    let req = NdpBatchRequest {
        slice: sid,
        pages: vec![0, 1, 2, 3],
        read_lsn: 10,
        descriptor: Arc::new(descriptor(None, Some(&pred), None)),
        tenant: taurus_common::DEFAULT_TENANT,
    };
    let results = ps.serve_ndp_batch(&req).unwrap();
    assert_eq!(results.len(), 4);
    let kinds: Vec<bool> = results
        .iter()
        .map(|r| matches!(r.payload, PagePayload::Ndp(_)))
        .collect();
    assert_eq!(kinds, vec![false, true, false, true], "every-2nd skipped");
    // NDP pages kept only val >= 5 (5 of 10 rows); raw pages are full size.
    for r in &results {
        match &r.payload {
            PagePayload::Ndp(p) => assert_eq!(p.n_recs(), 5),
            PagePayload::Raw(p) => assert_eq!(p.n_recs(), 10),
        }
    }
    let s = metrics.snapshot();
    assert_eq!(s.ps_ndp_skipped, 2);
    assert_eq!(s.ps_pages_processed, 2);
    assert_eq!(s.ps_desc_cache_misses, 1);
    // Second identical batch hits the descriptor cache.
    ps.set_skip_policy(SkipPolicy::None);
    ps.serve_ndp_batch(&req).unwrap();
    assert!(metrics.snapshot().ps_desc_cache_hits >= 1);
}

#[test]
fn batch_without_work_returns_raw_pages() {
    let ps = PageStore::new(
        0,
        PageStoreConfig {
            slice_pages: 64,
            ..Default::default()
        },
        Metrics::shared(),
    );
    let sid = SliceId::of(SpaceId(1), 0, 64);
    ps.create_slice(sid);
    let img = build_page(1, 0, &[(1, 1, false)]).into_bytes();
    ps.apply_redo(&[RedoRecord {
        lsn: 1,
        space: SpaceId(1),
        page_no: 0,
        body: RedoBody::NewPage(img),
    }])
    .unwrap();
    let req = NdpBatchRequest {
        slice: sid,
        pages: vec![0],
        read_lsn: 5,
        descriptor: Arc::new(descriptor(None, None, None)),
        tenant: taurus_common::DEFAULT_TENANT,
    };
    let results = ps.serve_ndp_batch(&req).unwrap();
    assert!(matches!(results[0].payload, PagePayload::Raw(_)));
}
