//! Fixed-size index pages.
//!
//! ```text
//! 0    4     8     12    20      22     24       32    36    40      42        44         46      48
//! +----+-----+-----+-----+-------+------+--------+-----+-----+-------+---------+----------+-------+
//! |cksm|page#|space| lsn |ptype  |level |index_id|prev |next |n_recs |heap_top |first_rec |n_slots|
//! +----+-----+-----+-----+-------+------+--------+-----+-----+-------+---------+----------+-------+
//! | record heap, growing upward ...                                                               |
//! | ... free space ...                                                                            |
//! | slot directory (2 bytes per record, key order), growing downward from the page end            |
//! +------------------------------------------------------------------------------------------------+
//! ```
//!
//! Records are chained in key order (`first_rec` + per-record `next`
//! pointers) exactly so that the *same iteration code* works on regular and
//! NDP pages (§IV-C2). The dense slot directory exists only on regular
//! pages and supports in-page binary search during B+ tree descent.

use std::borrow::Cow;
use std::cmp::Ordering;

use taurus_common::{Error, Lsn, PageNo, Result, SpaceId};

use crate::record::RecordView;

/// Sentinel for "no neighbour page".
pub const NO_PAGE: PageNo = u32::MAX;
/// Sentinel for an empty record chain.
pub const FIRST_REC_NONE: u16 = 0;
/// First byte of the record heap.
pub const HEADER_LEN: usize = 48;

/// Page kinds (`page_type` header field).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u16)]
pub enum PageType {
    /// Regular B+ tree page (leaf when `level == 0`).
    Index = 0,
    /// Variable-length NDP result page produced by a Page Store.
    Ndp = 1,
    /// "All records filtered out" marker: header only, no materialized body.
    NdpEmpty = 2,
}

impl PageType {
    pub fn from_u16(v: u16) -> Result<PageType> {
        Ok(match v {
            0 => PageType::Index,
            1 => PageType::Ndp,
            2 => PageType::NdpEmpty,
            other => return Err(Error::Corruption(format!("bad page type {other}"))),
        })
    }
}

/// One database page. Regular pages own exactly `page_size` bytes; NDP
/// pages own only as many bytes as their surviving records need.
#[derive(Clone, Debug, PartialEq)]
pub struct Page {
    buf: Vec<u8>,
}

macro_rules! field_u16 {
    ($get:ident, $set:ident, $at:expr) => {
        pub fn $get(&self) -> u16 {
            u16::from_le_bytes([self.buf[$at], self.buf[$at + 1]])
        }
        pub fn $set(&mut self, v: u16) {
            self.buf[$at..$at + 2].copy_from_slice(&v.to_le_bytes());
        }
    };
}

macro_rules! field_u32 {
    ($get:ident, $set:ident, $at:expr) => {
        pub fn $get(&self) -> u32 {
            u32::from_le_bytes(self.buf[$at..$at + 4].try_into().unwrap())
        }
        pub fn $set(&mut self, v: u32) {
            self.buf[$at..$at + 4].copy_from_slice(&v.to_le_bytes());
        }
    };
}

impl Page {
    /// Allocate an empty regular index page.
    pub fn new_index(
        page_size: usize,
        space: SpaceId,
        page_no: PageNo,
        index_id: u64,
        level: u16,
    ) -> Page {
        assert!(page_size >= 1024 && page_size <= u16::MAX as usize + 1);
        let mut p = Page {
            buf: vec![0; page_size],
        };
        p.set_page_no(page_no);
        p.set_space_raw(space.0);
        p.set_page_type_raw(PageType::Index as u16);
        p.set_level(level);
        p.set_index_id(index_id);
        p.set_prev(NO_PAGE);
        p.set_next(NO_PAGE);
        p.set_heap_top(HEADER_LEN as u16);
        p.set_first_rec(FIRST_REC_NONE);
        p
    }

    /// Wrap raw bytes received from storage.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Page> {
        if buf.len() < HEADER_LEN {
            return Err(Error::Corruption(format!("page too short: {}", buf.len())));
        }
        let p = Page { buf };
        PageType::from_u16(p.page_type_raw())?;
        Ok(p)
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Mutable raw bytes — used by redo application (physical byte
    /// rewrites) and in-place record mutators.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    field_u32!(page_no, set_page_no, 4);
    field_u32!(space_raw, set_space_raw, 8);
    field_u16!(page_type_raw, set_page_type_raw, 20);
    field_u16!(level, set_level, 22);
    field_u32!(prev, set_prev, 32);
    field_u32!(next, set_next, 36);
    field_u16!(n_recs, set_n_recs, 40);
    field_u16!(heap_top, set_heap_top, 42);
    field_u16!(first_rec, set_first_rec, 44);
    field_u16!(n_slots, set_n_slots, 46);

    pub fn space(&self) -> SpaceId {
        SpaceId(self.space_raw())
    }

    pub fn lsn(&self) -> Lsn {
        u64::from_le_bytes(self.buf[12..20].try_into().unwrap())
    }

    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.buf[12..20].copy_from_slice(&lsn.to_le_bytes());
    }

    pub fn index_id(&self) -> u64 {
        u64::from_le_bytes(self.buf[24..32].try_into().unwrap())
    }

    pub fn set_index_id(&mut self, v: u64) {
        self.buf[24..32].copy_from_slice(&v.to_le_bytes());
    }

    pub fn page_type(&self) -> PageType {
        PageType::from_u16(self.page_type_raw()).expect("validated")
    }

    pub fn set_page_type(&mut self, t: PageType) {
        self.set_page_type_raw(t as u16);
    }

    pub fn is_leaf(&self) -> bool {
        self.level() == 0
    }

    // --- checksum ---------------------------------------------------------

    fn compute_checksum(&self) -> u32 {
        // Fletcher-32 over everything after the checksum field.
        let (mut a, mut b) = (0u32, 0u32);
        for chunk in self.buf[4..].chunks(2) {
            let w = if chunk.len() == 2 {
                u16::from_le_bytes([chunk[0], chunk[1]]) as u32
            } else {
                chunk[0] as u32
            };
            a = (a + w) % 65535;
            b = (b + a) % 65535;
        }
        (b << 16) | a
    }

    /// Stamp the checksum (done when a page crosses the network boundary).
    pub fn seal(&mut self) {
        let c = self.compute_checksum();
        self.buf[0..4].copy_from_slice(&c.to_le_bytes());
    }

    /// Verify the checksum stamped by [`Page::seal`].
    pub fn verify_checksum(&self) -> Result<()> {
        let stored = u32::from_le_bytes(self.buf[0..4].try_into().unwrap());
        let actual = self.compute_checksum();
        if stored != actual {
            return Err(Error::Corruption(format!(
                "checksum mismatch on page {}:{} (stored {stored:#x}, actual {actual:#x})",
                self.space_raw(),
                self.page_no()
            )));
        }
        Ok(())
    }

    // --- slots ------------------------------------------------------------

    fn slot_at(&self, i: usize) -> u16 {
        let at = self.buf.len() - 2 * (i + 1);
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    fn set_slot(&mut self, i: usize, v: u16) {
        let at = self.buf.len() - 2 * (i + 1);
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Record offsets in key order, via the slot directory.
    pub fn slot_offsets(&self) -> impl Iterator<Item = u16> + '_ {
        (0..self.n_slots() as usize).map(|i| self.slot_at(i))
    }

    /// Bytes still available for one more record (including its slot).
    pub fn free_space(&self) -> usize {
        let slots_start = self.buf.len() - 2 * self.n_slots() as usize;
        slots_start - self.heap_top() as usize
    }

    /// Would a record of `rec_len` bytes fit (record + one slot entry)?
    pub fn fits(&self, rec_len: usize) -> bool {
        self.free_space() >= rec_len + 2
    }

    /// Raw bytes of the record starting at `off`, extending to page end
    /// (wrap in [`RecordView`] to find the real length).
    pub fn record_at(&self, off: u16) -> &[u8] {
        &self.buf[off as usize..]
    }

    // --- record insertion ---------------------------------------------------

    /// Append a record known to sort after every existing record (bulk-build
    /// path). Returns the record's offset.
    pub fn append_record(&mut self, rec: &[u8]) -> Result<u16> {
        if !self.fits(rec.len()) {
            return Err(Error::InvalidState("page full".into()));
        }
        let n = self.n_slots() as usize;
        let off = self.place_record(rec)?;
        // Chain: previous tail -> new record.
        if n == 0 {
            self.set_first_rec(off);
        } else {
            let tail = self.slot_at(n - 1) as usize;
            crate::record::set_next_offset(&mut self.buf, tail, off);
        }
        self.set_n_slots(n as u16 + 1);
        self.set_slot(n, off);
        Ok(off)
    }

    /// Insert a record at its sorted position. `slot_idx` must come from
    /// [`Page::lower_bound`] (the number of existing records with keys
    /// strictly less than the new record's).
    pub fn insert_at_slot(&mut self, slot_idx: usize, rec: &[u8]) -> Result<u16> {
        if !self.fits(rec.len()) {
            return Err(Error::InvalidState("page full".into()));
        }
        let n = self.n_slots() as usize;
        assert!(slot_idx <= n, "slot index out of range");
        let off = self.place_record(rec)?;
        // Chain splice.
        if slot_idx == 0 {
            let old_first = self.first_rec();
            crate::record::set_next_offset(&mut self.buf, off as usize, old_first);
            self.set_first_rec(off);
        } else {
            let pred = self.slot_at(slot_idx - 1) as usize;
            let succ = RecordView::peek_next(&self.buf, pred);
            crate::record::set_next_offset(&mut self.buf, off as usize, succ);
            crate::record::set_next_offset(&mut self.buf, pred, off);
        }
        // Shift slots [slot_idx..n) one position toward the page start.
        for i in (slot_idx..n).rev() {
            let v = self.slot_at(i);
            self.set_slot(i + 1, v);
        }
        self.set_n_slots(n as u16 + 1);
        self.set_slot(slot_idx, off);
        Ok(off)
    }

    /// Copy `rec` into the heap, assign heap_no, bump counters.
    fn place_record(&mut self, rec: &[u8]) -> Result<u16> {
        let off = self.heap_top() as usize;
        let heap_no = self.n_recs();
        self.buf[off..off + rec.len()].copy_from_slice(rec);
        // heap_no lives at record offset +3.
        self.buf[off + 3..off + 5].copy_from_slice(&heap_no.to_le_bytes());
        // next starts as end-of-chain; splicing fixes it.
        crate::record::set_next_offset(&mut self.buf, off, FIRST_REC_NONE);
        self.set_heap_top((off + rec.len()) as u16);
        self.set_n_recs(heap_no + 1);
        Ok(off as u16)
    }

    /// Binary search the slot directory. `key_of` maps record bytes to an
    /// encoded key. Returns `(slot_idx, exact)`: the first slot whose key is
    /// `>=` the search key.
    pub fn lower_bound<'a>(
        &'a self,
        key: &[u8],
        key_of: impl Fn(&'a [u8]) -> Cow<'a, [u8]>,
    ) -> (usize, bool) {
        let n = self.n_slots() as usize;
        let (mut lo, mut hi) = (0usize, n);
        let mut exact = false;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let rec = self.record_at(self.slot_at(mid));
            match key_of(rec).as_ref().cmp(key) {
                Ordering::Less => lo = mid + 1,
                Ordering::Equal => {
                    exact = true;
                    hi = mid;
                }
                Ordering::Greater => hi = mid,
            }
        }
        (lo, exact)
    }

    /// Iterate record offsets in key order by following the chain — the
    /// code path shared by regular and NDP pages.
    pub fn iter_chain(&self) -> ChainIter<'_> {
        ChainIter {
            page: self,
            next: self.first_rec(),
        }
    }
}

/// Iterator over the in-page record chain.
pub struct ChainIter<'a> {
    page: &'a Page,
    next: u16,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        if self.next == FIRST_REC_NONE {
            return None;
        }
        let cur = self.next;
        self.next = RecordView::peek_next(&self.page.buf, cur as usize);
        Some(cur)
    }
}

impl RecordView<'_> {
    /// Read a record's `next` pointer without constructing a view.
    pub fn peek_next(page: &[u8], rec_at: usize) -> u16 {
        u16::from_le_bytes([page[rec_at + 1], page[rec_at + 2]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, RecordLayout, RecordMeta};
    use taurus_common::{DataType, Value};

    fn layout() -> RecordLayout {
        RecordLayout::new(vec![DataType::BigInt, DataType::Varchar(32)])
    }

    fn rec(l: &RecordLayout, k: i64, s: &str) -> Vec<u8> {
        let mut b = Vec::new();
        encode_record(
            l,
            &[Value::Int(k), Value::str(s)],
            RecordMeta::ordinary(1),
            None,
            &mut b,
        )
        .unwrap();
        b
    }

    fn key_of<'a>(l: &'a RecordLayout) -> impl Fn(&'a [u8]) -> Cow<'a, [u8]> {
        move |bytes: &[u8]| {
            let v = RecordView::new(bytes, l);
            Cow::Owned(taurus_common::schema::encode_key(
                &[v.value(0)],
                &[DataType::BigInt],
            ))
        }
    }

    fn chain_keys(p: &Page, l: &RecordLayout) -> Vec<i64> {
        p.iter_chain()
            .map(|off| {
                RecordView::new(p.record_at(off), l)
                    .value(0)
                    .as_int()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn header_roundtrip() {
        let mut p = Page::new_index(4096, SpaceId(3), 17, 99, 1);
        p.set_lsn(123456);
        p.set_prev(16);
        p.set_next(18);
        assert_eq!(p.page_no(), 17);
        assert_eq!(p.space(), SpaceId(3));
        assert_eq!(p.lsn(), 123456);
        assert_eq!(p.level(), 1);
        assert!(!p.is_leaf());
        assert_eq!(p.index_id(), 99);
        assert_eq!((p.prev(), p.next()), (16, 18));
        assert_eq!(p.n_recs(), 0);
        assert_eq!(p.page_type(), PageType::Index);
    }

    #[test]
    fn append_maintains_chain_and_slots() {
        let l = layout();
        let mut p = Page::new_index(4096, SpaceId(1), 0, 1, 0);
        for k in [10i64, 20, 30] {
            p.append_record(&rec(&l, k, "x")).unwrap();
        }
        assert_eq!(p.n_recs(), 3);
        assert_eq!(chain_keys(&p, &l), vec![10, 20, 30]);
        let slot_keys: Vec<i64> = p
            .slot_offsets()
            .map(|off| {
                RecordView::new(p.record_at(off), &l)
                    .value(0)
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert_eq!(slot_keys, vec![10, 20, 30]);
    }

    #[test]
    fn sorted_insert_any_order() {
        let l = layout();
        let mut p = Page::new_index(4096, SpaceId(1), 0, 1, 0);
        let keys = [50i64, 10, 30, 20, 40, 5, 60];
        for &k in &keys {
            let r = rec(&l, k, "v");
            let kb = taurus_common::schema::encode_key(&[Value::Int(k)], &[DataType::BigInt]);
            let (idx, exact) = p.lower_bound(&kb, key_of(&l));
            assert!(!exact);
            p.insert_at_slot(idx, &r).unwrap();
        }
        assert_eq!(chain_keys(&p, &l), vec![5, 10, 20, 30, 40, 50, 60]);
        // heap numbers are assigned in arrival order and stay unique.
        let mut heap_nos: Vec<u16> = p
            .iter_chain()
            .map(|off| RecordView::new(p.record_at(off), &l).heap_no())
            .collect();
        heap_nos.sort_unstable();
        assert_eq!(heap_nos, (0..7).collect::<Vec<u16>>());
    }

    #[test]
    fn lower_bound_finds_existing_and_gap() {
        let l = layout();
        let mut p = Page::new_index(4096, SpaceId(1), 0, 1, 0);
        for k in [10i64, 20, 30] {
            p.append_record(&rec(&l, k, "x")).unwrap();
        }
        let kb = |k: i64| taurus_common::schema::encode_key(&[Value::Int(k)], &[DataType::BigInt]);
        assert_eq!(p.lower_bound(&kb(20), key_of(&l)), (1, true));
        assert_eq!(p.lower_bound(&kb(25), key_of(&l)), (2, false));
        assert_eq!(p.lower_bound(&kb(5), key_of(&l)), (0, false));
        assert_eq!(p.lower_bound(&kb(35), key_of(&l)), (3, false));
    }

    #[test]
    fn page_fills_up_and_rejects() {
        let l = layout();
        let mut p = Page::new_index(1024, SpaceId(1), 0, 1, 0);
        let r = rec(&l, 1, "abcdefghijklmnop");
        let mut inserted = 0;
        while p.fits(r.len()) {
            p.append_record(&r).unwrap();
            inserted += 1;
        }
        assert!(inserted > 5);
        assert!(p.append_record(&r).is_err());
        // Free space accounting never goes negative.
        assert!(p.free_space() < r.len() + 2);
    }

    #[test]
    fn checksum_seal_verify_and_corruption() {
        let l = layout();
        let mut p = Page::new_index(2048, SpaceId(1), 7, 1, 0);
        p.append_record(&rec(&l, 42, "hello")).unwrap();
        p.seal();
        assert!(p.verify_checksum().is_ok());
        let mut bytes = p.clone().into_bytes();
        bytes[HEADER_LEN + 20] ^= 0xFF;
        let bad = Page::from_bytes(bytes).unwrap();
        assert!(matches!(bad.verify_checksum(), Err(Error::Corruption(_))));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Page::from_bytes(vec![0; 10]).is_err());
        let mut buf = vec![0; 4096];
        buf[20] = 0xEE; // invalid page type
        assert!(Page::from_bytes(buf).is_err());
    }
}
