//! InnoDB-flavoured page and record formats, including the paper's NDP
//! extensions (§IV-C2).
//!
//! * [`record`] — the row format: a compact header carrying the
//!   `REC_STATUS_*` record type (Listing 3 of the paper, including the two
//!   new NDP codes), delete mark, heap number, transaction id and the
//!   next-record chain pointer; then a null bitmap, variable-length array
//!   and the column images.
//! * [`page`] — fixed-size (default 16 KB) index pages: FIL-style header,
//!   record heap, key-ordered record chain and a dense slot directory for
//!   in-page binary search.
//! * [`ndp_page`] — the variable-length *NDP page* a Page Store produces
//!   from a regular page: same header shape, same record iteration code
//!   path, possibly narrower/aggregated records, possibly an empty-page
//!   marker that needs no materialization.

pub mod ndp_page;
pub mod page;
pub mod record;

pub use ndp_page::NdpPageBuilder;
pub use page::{Page, PageType, FIRST_REC_NONE, HEADER_LEN, NO_PAGE};
pub use record::{encode_record, RecType, RecordLayout, RecordMeta, RecordView};
