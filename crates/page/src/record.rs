//! The record (row) format.
//!
//! Layout of one record inside a page:
//!
//! ```text
//! +--------+---------+----------+---------+-------------+------------------+
//! | info   | next    | heap_no  | trx_id  | null bitmap | var-length array |
//! | 1 byte | 2 bytes | 2 bytes  | 8 bytes | ceil(n/8)   | 2 bytes per      |
//! |        |         |          |         |             | varchar column   |
//! +--------+---------+----------+---------+-------------+------------------+
//! | column images (fixed-width columns occupy their width even when NULL) |
//! +------------------------------------------------------------------------+
//! | [NDP aggregate records only] u16 payload length + opaque payload       |
//! +------------------------------------------------------------------------+
//! ```
//!
//! `info` packs the record type in its low 3 bits — the values of the
//! paper's Listing 3 (`REC_STATUS_ORDINARY` … `REC_STATUS_NDP_AGGREGATE`)
//! — and the delete mark in bit 3. `next` is the in-page offset of the next
//! record in key order (0 = end of chain), which is what keeps NDP pages
//! consumable by the unchanged page-cursor code path (§IV-C2).

use taurus_common::{DataType, Error, Result, Value};

/// Record type codes, numerically identical to the paper's Listing 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum RecType {
    /// `REC_STATUS_ORDINARY`: a regular user record (full layout).
    Ordinary = 0,
    /// `REC_STATUS_NODE_PTR`: B+ tree internal entry (key bytes + child).
    NodePtr = 1,
    /// `REC_STATUS_INFIMUM` (kept for format parity; this implementation
    /// uses a header chain pointer instead of a materialized infimum).
    Infimum = 2,
    /// `REC_STATUS_SUPREMUM` (see [`RecType::Infimum`]).
    Supremum = 3,
    /// `REC_STATUS_NDP_PROJECTION`: columns were projected away in the
    /// Page Store; the record uses the *projected* layout.
    NdpProjection = 4,
    /// `REC_STATUS_NDP_AGGREGATE`: the record carries an aggregation
    /// payload covering itself and previously-aggregated rows.
    NdpAggregate = 5,
}

impl RecType {
    pub fn from_u8(v: u8) -> Result<RecType> {
        Ok(match v {
            0 => RecType::Ordinary,
            1 => RecType::NodePtr,
            2 => RecType::Infimum,
            3 => RecType::Supremum,
            4 => RecType::NdpProjection,
            5 => RecType::NdpAggregate,
            other => return Err(Error::Corruption(format!("bad record type {other}"))),
        })
    }
}

const DELETE_MARK_BIT: u8 = 0x08;
/// Fixed header length before the null bitmap.
pub const REC_HDR_LEN: usize = 13;

/// Non-column metadata carried by every record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecordMeta {
    pub rec_type: RecType,
    pub delete_mark: bool,
    pub heap_no: u16,
    pub trx_id: u64,
}

impl RecordMeta {
    pub fn ordinary(trx_id: u64) -> Self {
        RecordMeta {
            rec_type: RecType::Ordinary,
            delete_mark: false,
            heap_no: 0,
            trx_id,
        }
    }
}

/// Describes the columns physically present in a record, in record order.
///
/// A full-table layout describes ordinary records; a *projected* layout
/// (subset of columns) describes `NdpProjection` records. Both kinds can
/// coexist in one NDP page, disambiguated by the record type (§IV-C2).
#[derive(Clone, Debug, PartialEq)]
pub struct RecordLayout {
    pub dtypes: Vec<DataType>,
    /// For each column: `Some(i)` if it is the i-th varchar column.
    var_index: Vec<Option<usize>>,
    pub n_var: usize,
    bitmap_len: usize,
}

impl RecordLayout {
    pub fn new(dtypes: Vec<DataType>) -> Self {
        let mut var_index = Vec::with_capacity(dtypes.len());
        let mut n_var = 0;
        for dt in &dtypes {
            if dt.fixed_width().is_none() {
                var_index.push(Some(n_var));
                n_var += 1;
            } else {
                var_index.push(None);
            }
        }
        let bitmap_len = dtypes.len().div_ceil(8);
        RecordLayout {
            dtypes,
            var_index,
            n_var,
            bitmap_len,
        }
    }

    /// Header length = fixed header + null bitmap + var-length array.
    pub fn header_len(&self) -> usize {
        REC_HDR_LEN + self.bitmap_len + 2 * self.n_var
    }

    pub fn n_cols(&self) -> usize {
        self.dtypes.len()
    }

    /// Build the layout for a projected subset (`keep` = positions into
    /// this layout, in record order).
    pub fn project(&self, keep: &[usize]) -> RecordLayout {
        RecordLayout::new(keep.iter().map(|&i| self.dtypes[i]).collect())
    }
}

/// Encode a record. `agg_payload` must be `Some` iff
/// `meta.rec_type == RecType::NdpAggregate`.
pub fn encode_record(
    layout: &RecordLayout,
    values: &[Value],
    meta: RecordMeta,
    agg_payload: Option<&[u8]>,
    out: &mut Vec<u8>,
) -> Result<()> {
    assert_eq!(values.len(), layout.n_cols(), "value count != layout width");
    debug_assert_eq!(
        agg_payload.is_some(),
        meta.rec_type == RecType::NdpAggregate,
        "aggregate payload presence must match record type"
    );
    let start = out.len();
    let info = (meta.rec_type as u8) | if meta.delete_mark { DELETE_MARK_BIT } else { 0 };
    out.push(info);
    out.extend_from_slice(&0u16.to_le_bytes()); // next: fixed up by the page
    out.extend_from_slice(&meta.heap_no.to_le_bytes());
    out.extend_from_slice(&meta.trx_id.to_le_bytes());
    // Null bitmap.
    let bitmap_at = out.len();
    out.resize(bitmap_at + layout.bitmap_len, 0);
    for (i, v) in values.iter().enumerate() {
        if v.is_null() {
            out[bitmap_at + i / 8] |= 1 << (i % 8);
        }
    }
    // Var-length array (filled in as we encode the data below).
    let varlen_at = out.len();
    out.resize(varlen_at + 2 * layout.n_var, 0);
    // Column images.
    for (i, (v, dt)) in values.iter().zip(&layout.dtypes).enumerate() {
        let col_start = out.len();
        if v.is_null() {
            if let Some(w) = dt.fixed_width() {
                out.resize(col_start + w, 0);
            }
            // NULL varchar: zero length, nothing to write.
        } else {
            v.encode_column(dt, out)?;
        }
        if let Some(vi) = layout.var_index[i] {
            let len = (out.len() - col_start) as u16;
            out[varlen_at + 2 * vi..varlen_at + 2 * vi + 2].copy_from_slice(&len.to_le_bytes());
        }
    }
    if let Some(p) = agg_payload {
        let len = u16::try_from(p.len())
            .map_err(|_| Error::Internal("aggregate payload too large".into()))?;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(p);
    }
    debug_assert!(out.len() - start >= layout.header_len());
    Ok(())
}

/// Zero-copy reader over one encoded record.
#[derive(Clone, Copy)]
pub struct RecordView<'a> {
    bytes: &'a [u8],
    layout: &'a RecordLayout,
}

impl<'a> RecordView<'a> {
    /// `bytes` must begin at the record header; it may extend past the
    /// record's end (e.g. the rest of the page).
    pub fn new(bytes: &'a [u8], layout: &'a RecordLayout) -> Self {
        RecordView { bytes, layout }
    }

    pub fn rec_type(&self) -> RecType {
        RecType::from_u8(self.bytes[0] & 0x07).expect("validated on write")
    }

    pub fn delete_mark(&self) -> bool {
        self.bytes[0] & DELETE_MARK_BIT != 0
    }

    pub fn next_offset(&self) -> u16 {
        u16::from_le_bytes([self.bytes[1], self.bytes[2]])
    }

    pub fn heap_no(&self) -> u16 {
        u16::from_le_bytes([self.bytes[3], self.bytes[4]])
    }

    pub fn trx_id(&self) -> u64 {
        u64::from_le_bytes(self.bytes[5..13].try_into().unwrap())
    }

    pub fn is_null(&self, col: usize) -> bool {
        self.bytes[REC_HDR_LEN + col / 8] & (1 << (col % 8)) != 0
    }

    fn var_len(&self, vi: usize) -> usize {
        let at = REC_HDR_LEN + self.layout.bitmap_len + 2 * vi;
        u16::from_le_bytes([self.bytes[at], self.bytes[at + 1]]) as usize
    }

    /// Byte offset (within the record) where column `col`'s image starts.
    fn col_offset(&self, col: usize) -> usize {
        let mut off = self.layout.header_len();
        for i in 0..col {
            off += match self.layout.var_index[i] {
                Some(vi) => self.var_len(vi),
                None => self.layout.dtypes[i].fixed_width().unwrap(),
            };
        }
        off
    }

    fn col_len(&self, col: usize) -> usize {
        match self.layout.var_index[col] {
            Some(vi) => self.var_len(vi),
            None => self.layout.dtypes[col].fixed_width().unwrap(),
        }
    }

    /// Raw image of column `col` (empty for NULL varchar; zeroed bytes for
    /// NULL fixed-width columns — check [`RecordView::is_null`] first).
    pub fn field_bytes(&self, col: usize) -> &'a [u8] {
        let off = self.col_offset(col);
        &self.bytes[off..off + self.col_len(col)]
    }

    /// Decode column `col` into a [`Value`] (NULL-aware).
    pub fn value(&self, col: usize) -> Value {
        if self.is_null(col) {
            Value::Null
        } else {
            Value::decode_column(&self.layout.dtypes[col], self.field_bytes(col))
        }
    }

    /// Decode all columns.
    pub fn values(&self) -> Vec<Value> {
        (0..self.layout.n_cols()).map(|c| self.value(c)).collect()
    }

    /// Fill `offsets` with each column's start offset plus one final
    /// end-of-data offset. Used by the predicate VM so repeated field access
    /// is O(1).
    pub fn fill_offsets(&self, offsets: &mut Vec<u32>) {
        offsets.clear();
        let mut off = self.layout.header_len() as u32;
        for i in 0..self.layout.n_cols() {
            offsets.push(off);
            off += self.col_len(i) as u32;
        }
        offsets.push(off);
    }

    /// Length of the column-data portion (header through last column).
    fn data_end(&self) -> usize {
        self.col_offset(self.layout.n_cols())
    }

    /// Aggregate payload of an `NdpAggregate` record.
    pub fn agg_payload(&self) -> Option<&'a [u8]> {
        if self.rec_type() != RecType::NdpAggregate {
            return None;
        }
        let at = self.data_end();
        let len = u16::from_le_bytes([self.bytes[at], self.bytes[at + 1]]) as usize;
        Some(&self.bytes[at + 2..at + 2 + len])
    }

    /// Total encoded length of this record, including any aggregate suffix.
    pub fn total_len(&self) -> usize {
        let end = self.data_end();
        if self.rec_type() == RecType::NdpAggregate {
            let len = u16::from_le_bytes([self.bytes[end], self.bytes[end + 1]]) as usize;
            end + 2 + len
        } else {
            end
        }
    }

    pub fn raw(&self) -> &'a [u8] {
        &self.bytes[..self.total_len()]
    }

    /// The backing slice this view was constructed over (starts at the
    /// record header, may extend past the record's end). Offsets from
    /// [`RecordView::fill_offsets`] index into this slice.
    pub fn backing(&self) -> &'a [u8] {
        self.bytes
    }

    pub fn layout(&self) -> &'a RecordLayout {
        self.layout
    }
}

/// Rewrite a record's `next` chain pointer in place.
pub fn set_next_offset(page: &mut [u8], rec_at: usize, next: u16) {
    page[rec_at + 1..rec_at + 3].copy_from_slice(&next.to_le_bytes());
}

/// Set or clear a record's delete mark in place.
pub fn set_delete_mark(page: &mut [u8], rec_at: usize, mark: bool) {
    if mark {
        page[rec_at] |= DELETE_MARK_BIT;
    } else {
        page[rec_at] &= !DELETE_MARK_BIT;
    }
}

/// Overwrite a record's trx_id in place (update-in-place path).
pub fn set_trx_id(page: &mut [u8], rec_at: usize, trx_id: u64) {
    page[rec_at + 5..rec_at + 13].copy_from_slice(&trx_id.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::{Date32, Dec};

    fn lineitem_ish_layout() -> RecordLayout {
        RecordLayout::new(vec![
            DataType::BigInt, // orderkey
            DataType::Int,    // linenumber
            DataType::Decimal {
                precision: 15,
                scale: 2,
            }, // price
            DataType::Date,   // shipdate
            DataType::Char(1), // returnflag
            DataType::Varchar(44), // comment
        ])
    }

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Int(42),
            Value::Int(3),
            Value::Decimal(Dec::parse("901.00").unwrap()),
            Value::Date(Date32::parse("1994-02-01").unwrap()),
            Value::str("R"),
            Value::str("carefully final packages"),
        ]
    }

    #[test]
    fn roundtrip_ordinary_record() {
        let layout = lineitem_ish_layout();
        let vals = sample_values();
        let mut buf = Vec::new();
        encode_record(&layout, &vals, RecordMeta::ordinary(77), None, &mut buf).unwrap();
        let view = RecordView::new(&buf, &layout);
        assert_eq!(view.rec_type(), RecType::Ordinary);
        assert!(!view.delete_mark());
        assert_eq!(view.trx_id(), 77);
        assert_eq!(view.values(), vals);
        assert_eq!(view.total_len(), buf.len());
    }

    #[test]
    fn roundtrip_with_nulls() {
        let layout = lineitem_ish_layout();
        let vals = vec![
            Value::Int(1),
            Value::Null,
            Value::Null,
            Value::Date(Date32::parse("1994-02-01").unwrap()),
            Value::Null,
            Value::Null,
        ];
        let mut buf = Vec::new();
        encode_record(&layout, &vals, RecordMeta::ordinary(1), None, &mut buf).unwrap();
        let view = RecordView::new(&buf, &layout);
        assert_eq!(view.values(), vals);
        assert!(view.is_null(1) && view.is_null(2) && view.is_null(4) && view.is_null(5));
        assert!(!view.is_null(0));
    }

    #[test]
    fn aggregate_record_carries_payload() {
        let layout = lineitem_ish_layout();
        let vals = sample_values();
        let meta = RecordMeta {
            rec_type: RecType::NdpAggregate,
            delete_mark: false,
            heap_no: 9,
            trx_id: 5,
        };
        let payload = vec![1u8, 2, 3, 4, 5];
        let mut buf = Vec::new();
        encode_record(&layout, &vals, meta, Some(&payload), &mut buf).unwrap();
        // Tack extra bytes on to prove total_len isolates the record.
        buf.extend_from_slice(&[0xAA; 7]);
        let view = RecordView::new(&buf, &layout);
        assert_eq!(view.rec_type(), RecType::NdpAggregate);
        assert_eq!(view.agg_payload().unwrap(), &payload[..]);
        assert_eq!(view.total_len(), buf.len() - 7);
        assert_eq!(view.values(), vals);
    }

    #[test]
    fn projected_layout_reads_subset() {
        let full = lineitem_ish_layout();
        let keep = [2usize, 3];
        let proj = full.project(&keep);
        let vals = sample_values();
        let pvals: Vec<Value> = keep.iter().map(|&i| vals[i].clone()).collect();
        let meta = RecordMeta {
            rec_type: RecType::NdpProjection,
            delete_mark: false,
            heap_no: 0,
            trx_id: 5,
        };
        let mut buf = Vec::new();
        encode_record(&proj, &pvals, meta, None, &mut buf).unwrap();
        let view = RecordView::new(&buf, &proj);
        assert_eq!(view.rec_type(), RecType::NdpProjection);
        assert_eq!(view.values(), pvals);
        // Projection dropped the varchar: narrower record.
        let mut fullbuf = Vec::new();
        encode_record(&full, &vals, RecordMeta::ordinary(5), None, &mut fullbuf).unwrap();
        assert!(buf.len() < fullbuf.len());
    }

    #[test]
    fn in_place_mutators() {
        let layout = lineitem_ish_layout();
        let mut buf = Vec::new();
        encode_record(
            &layout,
            &sample_values(),
            RecordMeta::ordinary(7),
            None,
            &mut buf,
        )
        .unwrap();
        set_next_offset(&mut buf, 0, 1234);
        set_delete_mark(&mut buf, 0, true);
        set_trx_id(&mut buf, 0, 99);
        let view = RecordView::new(&buf, &layout);
        assert_eq!(view.next_offset(), 1234);
        assert!(view.delete_mark());
        assert_eq!(view.trx_id(), 99);
        set_delete_mark(&mut buf, 0, false);
        assert!(!RecordView::new(&buf, &layout).delete_mark());
    }

    #[test]
    fn fill_offsets_matches_field_bytes() {
        let layout = lineitem_ish_layout();
        let mut buf = Vec::new();
        encode_record(
            &layout,
            &sample_values(),
            RecordMeta::ordinary(7),
            None,
            &mut buf,
        )
        .unwrap();
        let view = RecordView::new(&buf, &layout);
        let mut offs = Vec::new();
        view.fill_offsets(&mut offs);
        assert_eq!(offs.len(), layout.n_cols() + 1);
        for c in 0..layout.n_cols() {
            let s = offs[c] as usize;
            let e = s + view.field_bytes(c).len();
            assert_eq!(&buf[s..e], view.field_bytes(c));
            assert_eq!(offs[c + 1] as usize, e);
        }
    }

    #[test]
    fn rec_type_codes_match_listing_3() {
        assert_eq!(RecType::Ordinary as u8, 0);
        assert_eq!(RecType::NodePtr as u8, 1);
        assert_eq!(RecType::Infimum as u8, 2);
        assert_eq!(RecType::Supremum as u8, 3);
        assert_eq!(RecType::NdpProjection as u8, 4);
        assert_eq!(RecType::NdpAggregate as u8, 5);
        assert!(RecType::from_u8(6).is_err());
    }
}
