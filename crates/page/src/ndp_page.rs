//! Building the variable-length NDP pages a Page Store returns (§IV-C2).
//!
//! An NDP page "resembles a regular InnoDB page": identical header layout,
//! records chained in key order, so the regular page-cursor code iterates
//! it unchanged. Differences: the body holds only surviving (possibly
//! projected / aggregated) records, there is no slot directory (NDP pages
//! are consumed sequentially, never searched), and a page whose records
//! were all filtered out is shipped as a header-only [`PageType::NdpEmpty`]
//! marker "without requiring explicit materialization".

use taurus_common::Lsn;

use crate::page::{Page, PageType, FIRST_REC_NONE, HEADER_LEN};
use crate::record::set_next_offset;

/// Assembles an NDP page from records that survive NDP processing.
/// Records must be pushed in key order (the Page Store iterates the source
/// page's chain, which is already in key order).
pub struct NdpPageBuilder {
    buf: Vec<u8>,
    last_rec: u16,
    n_recs: u16,
}

impl NdpPageBuilder {
    /// Start an NDP page mirroring `src`'s identity (page_no, space, LSN,
    /// index id, level, neighbours).
    pub fn new(src: &Page) -> NdpPageBuilder {
        let mut buf = vec![0u8; HEADER_LEN];
        buf.copy_from_slice(&src.bytes()[..HEADER_LEN]);
        let mut b = NdpPageBuilder {
            buf,
            last_rec: FIRST_REC_NONE,
            n_recs: 0,
        };
        b.write_u16(20, PageType::Ndp as u16);
        b.write_u16(40, 0); // n_recs
        b.write_u16(42, HEADER_LEN as u16); // heap_top
        b.write_u16(44, FIRST_REC_NONE); // first_rec
        b.write_u16(46, 0); // n_slots: NDP pages carry none
        b
    }

    fn write_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Append one surviving record (already encoded, any `RecType`).
    pub fn push_record(&mut self, rec: &[u8]) {
        let off = self.buf.len() as u16;
        self.buf.extend_from_slice(rec);
        set_next_offset(&mut self.buf, off as usize, FIRST_REC_NONE);
        if self.last_rec == FIRST_REC_NONE {
            self.write_u16(44, off);
        } else {
            let last = self.last_rec as usize;
            set_next_offset(&mut self.buf, last, off);
        }
        self.last_rec = off;
        self.n_recs += 1;
    }

    pub fn n_recs(&self) -> u16 {
        self.n_recs
    }

    /// Finalize. If no record survived, emit the header-only empty marker.
    pub fn finish(mut self, lsn: Lsn) -> Page {
        let n = self.n_recs;
        let top = self.buf.len() as u16;
        self.write_u16(40, n);
        self.write_u16(42, top);
        if n == 0 {
            self.buf.truncate(HEADER_LEN);
            self.write_u16(20, PageType::NdpEmpty as u16);
        }
        let mut page = Page::from_bytes(self.buf).expect("builder produces valid pages");
        page.set_lsn(lsn);
        page.seal();
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, RecType, RecordLayout, RecordMeta, RecordView};
    use taurus_common::{DataType, SpaceId, Value};

    fn src_page() -> Page {
        let mut p = Page::new_index(4096, SpaceId(5), 33, 7, 0);
        p.set_prev(32);
        p.set_next(34);
        p
    }

    fn small_rec(l: &RecordLayout, k: i64, t: RecType) -> Vec<u8> {
        let mut b = Vec::new();
        encode_record(
            l,
            &[Value::Int(k)],
            RecordMeta {
                rec_type: t,
                delete_mark: false,
                heap_no: 0,
                trx_id: 3,
            },
            if t == RecType::NdpAggregate {
                Some(&[9, 9])
            } else {
                None
            },
            &mut b,
        )
        .unwrap();
        b
    }

    #[test]
    fn ndp_page_preserves_identity_and_order() {
        let l = RecordLayout::new(vec![DataType::BigInt]);
        let mut b = NdpPageBuilder::new(&src_page());
        for k in [1i64, 5, 9] {
            b.push_record(&small_rec(&l, k, RecType::NdpProjection));
        }
        let p = b.finish(777);
        assert_eq!(p.page_type(), PageType::Ndp);
        assert_eq!(p.page_no(), 33);
        assert_eq!(p.space(), SpaceId(5));
        assert_eq!((p.prev(), p.next()), (32, 34));
        assert_eq!(p.lsn(), 777);
        assert_eq!(p.n_recs(), 3);
        assert!(p.verify_checksum().is_ok());
        let keys: Vec<i64> = p
            .iter_chain()
            .map(|off| {
                RecordView::new(p.record_at(off), &l)
                    .value(0)
                    .as_int()
                    .unwrap()
            })
            .collect();
        assert_eq!(keys, vec![1, 5, 9]);
        // Narrower than the 4 KB source.
        assert!(p.byte_len() < 4096 / 4);
    }

    #[test]
    fn mixed_record_types_coexist() {
        // §IV-C2: "A mix of regular records and NDP records can co-exist
        // in an NDP page."
        let l = RecordLayout::new(vec![DataType::BigInt]);
        let mut b = NdpPageBuilder::new(&src_page());
        b.push_record(&small_rec(&l, 1, RecType::Ordinary));
        b.push_record(&small_rec(&l, 2, RecType::NdpProjection));
        b.push_record(&small_rec(&l, 3, RecType::NdpAggregate));
        let p = b.finish(1);
        let types: Vec<RecType> = p
            .iter_chain()
            .map(|off| RecordView::new(p.record_at(off), &l).rec_type())
            .collect();
        assert_eq!(
            types,
            vec![
                RecType::Ordinary,
                RecType::NdpProjection,
                RecType::NdpAggregate
            ]
        );
    }

    #[test]
    fn empty_result_is_header_only_marker() {
        let b = NdpPageBuilder::new(&src_page());
        let p = b.finish(42);
        assert_eq!(p.page_type(), PageType::NdpEmpty);
        assert_eq!(p.byte_len(), HEADER_LEN);
        assert_eq!(p.n_recs(), 0);
        assert_eq!(p.iter_chain().count(), 0);
        assert!(p.verify_checksum().is_ok());
    }
}
