//! Structured verification diagnostics.
//!
//! Every check in this crate reports findings as [`Diagnostic`]s rather
//! than bare strings: a machine-matchable [`DiagKind`], a severity, a
//! *plan path* locating the offending node (e.g.
//! `Sort/HashJoin.left/Scan(lineitem)`), and a human-readable detail.
//! The pre-execution gate turns error-severity diagnostics into
//! [`taurus_common::Error::Verify`]; warnings are advisory (the engine
//! will still produce a well-typed runtime error for them).

use std::fmt;

/// What a diagnostic is about. Append-only: tests pin individual kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DiagKind {
    /// A scan references a table the catalog does not have.
    UnknownTable,
    /// A scan's index ordinal is out of range for its table.
    UnknownIndex,
    /// A column position is out of range for the schema/input it indexes.
    ColumnOutOfRange,
    /// A residual predicate conjunct references a column the scan does
    /// not deliver (the executor cannot remap it onto output positions).
    ResidualNotInOutput,
    /// An AggScan GROUP BY column is not delivered by its scan.
    GroupColNotInOutput,
    /// An AggScan aggregate input references a column its scan does not
    /// deliver.
    AggInputNotInOutput,
    /// A key prefix (range bound or lookup-join key) is longer than the
    /// index's effective key.
    KeyPrefixTooLong,
    /// A positional key (sort / hash-join / lookup-join outer key) is out
    /// of range for the input row width.
    KeyOutOfRange,
    /// Mismatched arity where two sides must agree (hash-join key lists).
    ArityMismatch,
    /// An NDP decision's pushed-conjunct index does not name a predicate
    /// conjunct.
    PushedOutOfRange,
    /// Operand types cannot be compared/combined (advisory: the runtime
    /// rejects these with a typed `Error::Type`).
    TypeMismatch,
    /// A scalar IR program violates the VM's structural contract.
    IrShape,
    /// A compiled vector program violates the kernel's contract.
    VectorShape,
    /// The scalar IR and its vectorized twin disagree at the type level
    /// (columns read, register file shape, result register).
    Equivalence,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory: execution would fail with a typed runtime error, or the
    /// construct is merely suspicious.
    Warning,
    /// The plan/program is malformed; executing it would surface an
    /// internal invariant break (or worse). The gate rejects these.
    Error,
}

/// One verification finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    pub kind: DiagKind,
    pub severity: Severity,
    /// Plan-path location: `/`-joined node labels from the root, with
    /// child-edge names where a node has several (`HashJoin.left/...`).
    pub path: String,
    pub message: String,
}

impl Diagnostic {
    pub fn error(kind: DiagKind, path: &str, message: String) -> Diagnostic {
        Diagnostic {
            kind,
            severity: Severity::Error,
            path: path.to_string(),
            message,
        }
    }

    pub fn warning(kind: DiagKind, path: &str, message: String) -> Diagnostic {
        Diagnostic {
            kind,
            severity: Severity::Warning,
            path: path.to_string(),
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{sev}[{:?}] at {}: {}",
            self.kind, self.path, self.message
        )
    }
}

/// Render a diagnostic list one-per-line (the `Error::Verify` payload).
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Do any diagnostics reject the plan?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_kind_path_and_detail() {
        let d = Diagnostic::error(
            DiagKind::ResidualNotInOutput,
            "Sort/Scan(lineitem)",
            "column 5 not in scan output [0, 1]".into(),
        );
        let s = d.to_string();
        assert!(s.contains("ResidualNotInOutput"), "{s}");
        assert!(s.contains("Sort/Scan(lineitem)"), "{s}");
        assert!(s.contains("column 5"), "{s}");
        assert!(s.starts_with("error"), "{s}");
    }

    #[test]
    fn render_joins_lines_and_has_errors_ignores_warnings() {
        let w = Diagnostic::warning(DiagKind::TypeMismatch, "Scan(t)", "int vs str".into());
        assert!(!has_errors(std::slice::from_ref(&w)));
        let e = Diagnostic::error(DiagKind::UnknownTable, "Scan(nope)", "no such table".into());
        assert!(has_errors(&[w.clone(), e.clone()]));
        let r = render(&[w, e]);
        assert_eq!(r.lines().count(), 2);
    }
}
