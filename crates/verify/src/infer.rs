//! Plan schema inference: type, width, and nullability for every
//! [`Plan`] shape, checked against the live catalog.
//!
//! The inference is deliberately *permissive*: error-severity
//! diagnostics are raised only for structural violations that the
//! executor could not turn into a well-typed result — column positions
//! out of range, residual/group/aggregate references the scan does not
//! deliver (the paths that previously surfaced mid-execution as
//! `Error::Internal`), key prefixes longer than the index key, and
//! mismatched join-key arity. Type-level doubts (comparing a string to a
//! number) are warnings: the runtime rejects those with a typed
//! `Error::Type` of its own.

use std::sync::Arc;

use taurus_common::{DataType, Value};
use taurus_expr::ast::Expr;
use taurus_ndp::{Table, TaurusDb};
use taurus_optimizer::plan::{AggFuncEx, AggItem, JoinType, Plan, ScanNode};

use crate::diag::{DiagKind, Diagnostic};

/// Inferred type of one output column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ColType {
    pub dtype: DataType,
    pub nullable: bool,
}

/// The result of inferring a plan: the output schema (when the plan is
/// well-formed enough to have one) plus all diagnostics found.
#[derive(Clone, Debug)]
pub struct Inference {
    pub schema: Option<Vec<ColType>>,
    pub diags: Vec<Diagnostic>,
}

/// The width (values per row) of a plan's output, derived structurally —
/// no catalog needed. This is the single source of width truth; the
/// executor's operators use it where the dynamic width is unknowable
/// (e.g. NULL-padding a LEFT OUTER join whose build side produced no
/// rows).
pub fn plan_width(plan: &Plan) -> usize {
    match plan {
        Plan::Scan(s) => s.output.len(),
        Plan::AggScan(a) => a.group_cols.len() + a.aggs.len(),
        Plan::LookupJoin(j) => match j.join {
            JoinType::Inner | JoinType::LeftOuter => plan_width(&j.outer) + j.inner_output.len(),
            JoinType::Semi | JoinType::Anti => plan_width(&j.outer),
        },
        Plan::HashJoin(j) => match j.join {
            JoinType::Inner | JoinType::LeftOuter => plan_width(&j.left) + plan_width(&j.right),
            JoinType::Semi | JoinType::Anti => plan_width(&j.left),
        },
        Plan::HashAgg(a) => a.group.len() + a.aggs.len(),
        Plan::Project(p) => p.exprs.len(),
        Plan::Filter(f) => plan_width(&f.input),
        Plan::Sort(s) => plan_width(&s.input),
        Plan::Limit { input, .. } => plan_width(input),
        Plan::Exchange(e) => plan_width(&e.child),
    }
}

/// Infer the output schema of `plan` against `db`'s catalog, collecting
/// diagnostics along the way.
pub fn infer_plan(plan: &Plan, db: &TaurusDb) -> Inference {
    let mut diags = Vec::new();
    let schema = infer(plan, db, "", &mut diags);
    Inference { schema, diags }
}

/// Map table-column expressions onto delivered-output positions — the
/// shared definition used by both the verifier and the executor's scan
/// remapping. A column the output does not deliver yields a structured
/// diagnostic instead of an internal error.
pub fn remap_onto(
    e: &Expr,
    output: &[usize],
    kind: DiagKind,
    path: &str,
) -> std::result::Result<Expr, Diagnostic> {
    for c in e.columns() {
        if !output.contains(&c) {
            return Err(Diagnostic::error(
                kind,
                path,
                format!("column {c} not in scan output {output:?}"),
            ));
        }
    }
    Ok(e.remap_columns(&|c| {
        output
            .iter()
            .position(|&o| o == c)
            .expect("all columns checked against output above")
    }))
}

// --- recursive inference ----------------------------------------------------

fn infer(
    plan: &Plan,
    db: &TaurusDb,
    prefix: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<Vec<ColType>> {
    match plan {
        Plan::Scan(s) => infer_scan(s, db, &format!("{prefix}Scan({})", s.table), diags),
        Plan::AggScan(a) => {
            let path = format!("{prefix}AggScan({})", a.scan.table);
            let scan_schema = infer_scan(&a.scan, db, &path, diags)?;
            let table = db.table(&a.scan.table).ok()?;
            let dtypes = table.schema.dtypes();
            let mut ok = true;
            let mut out: Vec<ColType> = Vec::with_capacity(a.group_cols.len() + a.aggs.len());
            for &g in &a.group_cols {
                if !a.scan.output.contains(&g) {
                    diags.push(Diagnostic::error(
                        DiagKind::GroupColNotInOutput,
                        &path,
                        format!("group column {g} not in scan output {:?}", a.scan.output),
                    ));
                    ok = false;
                } else if g < table.schema.columns.len() {
                    let c = &table.schema.columns[g];
                    out.push(ColType {
                        dtype: c.dtype,
                        nullable: c.nullable,
                    });
                }
            }
            for (i, item) in a.aggs.iter().enumerate() {
                if let Some(e) = &item.input {
                    for c in e.columns() {
                        if !a.scan.output.contains(&c) {
                            diags.push(Diagnostic::error(
                                DiagKind::AggInputNotInOutput,
                                &path,
                                format!(
                                    "aggregate {i} input references column {c} not in scan output {:?}",
                                    a.scan.output
                                ),
                            ));
                            ok = false;
                        }
                    }
                }
                out.push(agg_coltype(item, &dtypes));
            }
            let _ = scan_schema;
            ok.then_some(out)
        }
        Plan::LookupJoin(j) => {
            let path = format!("{prefix}LookupJoin({})", j.table);
            let outer = infer(&j.outer, db, &format!("{path}.outer/"), diags);
            let table = lookup_table(db, &j.table, j.index, &path, diags)?;
            let ncols = table.schema.columns.len();
            let mut ok = true;
            if let Some(o) = &outer {
                for &k in &j.outer_key_cols {
                    if k >= o.len() {
                        diags.push(Diagnostic::error(
                            DiagKind::KeyOutOfRange,
                            &path,
                            format!(
                                "outer key position {k} out of range for outer width {}",
                                o.len()
                            ),
                        ));
                        ok = false;
                    }
                }
            }
            let keylen = table.index(j.index).tree.def.effective_key_cols().len();
            if j.outer_key_cols.len() > keylen {
                diags.push(Diagnostic::error(
                    DiagKind::KeyPrefixTooLong,
                    &path,
                    format!(
                        "{} outer key columns exceed the index's {keylen}-column effective key",
                        j.outer_key_cols.len()
                    ),
                ));
                ok = false;
            }
            for &c in &j.inner_output {
                if c >= ncols {
                    diags.push(Diagnostic::error(
                        DiagKind::ColumnOutOfRange,
                        &path,
                        format!("inner output column {c} out of range for {ncols}-column table"),
                    ));
                    ok = false;
                }
            }
            let inner_dtypes = table.schema.dtypes();
            for p in &j.inner_predicate {
                for c in p.columns() {
                    if c >= ncols {
                        diags.push(Diagnostic::error(
                            DiagKind::ColumnOutOfRange,
                            &path,
                            format!(
                                "inner predicate column {c} out of range for {ncols}-column table"
                            ),
                        ));
                        ok = false;
                    }
                }
                warn_predicate_types(p, &inner_dtypes, &path, diags);
            }
            if let (Some(on), Some(o)) = (&j.on, &outer) {
                let w = o.len() + j.inner_output.len();
                for c in on.columns() {
                    if c >= w {
                        diags.push(Diagnostic::error(
                            DiagKind::ColumnOutOfRange,
                            &path,
                            format!("ON column {c} out of range for joined width {w}"),
                        ));
                        ok = false;
                    }
                }
            }
            let outer = outer?;
            if !ok {
                return None;
            }
            let mut out = outer;
            if matches!(j.join, JoinType::Inner | JoinType::LeftOuter) {
                let pad_nullable = j.join == JoinType::LeftOuter;
                for &c in &j.inner_output {
                    let col = &table.schema.columns[c];
                    out.push(ColType {
                        dtype: col.dtype,
                        nullable: col.nullable || pad_nullable,
                    });
                }
            }
            Some(out)
        }
        Plan::HashJoin(j) => {
            let path = format!("{prefix}HashJoin");
            let left = infer(&j.left, db, &format!("{path}.left/"), diags);
            let right = infer(&j.right, db, &format!("{path}.right/"), diags);
            let mut ok = true;
            if j.left_keys.len() != j.right_keys.len() {
                diags.push(Diagnostic::error(
                    DiagKind::ArityMismatch,
                    &path,
                    format!(
                        "{} left keys vs {} right keys",
                        j.left_keys.len(),
                        j.right_keys.len()
                    ),
                ));
                ok = false;
            }
            for (keys, side, schema) in [
                (&j.left_keys, "left", &left),
                (&j.right_keys, "right", &right),
            ] {
                if let Some(s) = schema {
                    for &k in keys.iter() {
                        if k >= s.len() {
                            diags.push(Diagnostic::error(
                                DiagKind::KeyOutOfRange,
                                &path,
                                format!(
                                    "{side} key position {k} out of range for width {}",
                                    s.len()
                                ),
                            ));
                            ok = false;
                        }
                    }
                }
            }
            if let (Some(l), Some(r)) = (&left, &right) {
                for (&lk, &rk) in j.left_keys.iter().zip(&j.right_keys) {
                    if let (Some(a), Some(b)) = (l.get(lk), r.get(rk)) {
                        if family(a.dtype) != family(b.dtype) {
                            diags.push(Diagnostic::warning(
                                DiagKind::TypeMismatch,
                                &path,
                                format!("join key types differ: {:?} vs {:?}", a.dtype, b.dtype),
                            ));
                        }
                    }
                }
            }
            let (left, right) = (left?, right?);
            if !ok {
                return None;
            }
            let mut out = left;
            if matches!(j.join, JoinType::Inner | JoinType::LeftOuter) {
                let pad_nullable = j.join == JoinType::LeftOuter;
                out.extend(right.into_iter().map(|c| ColType {
                    dtype: c.dtype,
                    nullable: c.nullable || pad_nullable,
                }));
            }
            Some(out)
        }
        Plan::HashAgg(a) => {
            let path = format!("{prefix}HashAgg");
            let input = infer(&a.input, db, &format!("{path}/"), diags)?;
            let dtypes: Vec<DataType> = input.iter().map(|c| c.dtype).collect();
            let mut ok = true;
            let mut out = Vec::with_capacity(a.group.len() + a.aggs.len());
            for (i, g) in a.group.iter().enumerate() {
                ok &= check_expr_cols(g, input.len(), &path, &format!("group expr {i}"), diags);
                out.push(expr_coltype(g, &input));
            }
            for (i, item) in a.aggs.iter().enumerate() {
                if let Some(e) = &item.input {
                    ok &= check_expr_cols(
                        e,
                        input.len(),
                        &path,
                        &format!("aggregate {i} input"),
                        diags,
                    );
                }
                out.push(agg_coltype(item, &dtypes));
            }
            ok.then_some(out)
        }
        Plan::Project(p) => {
            let path = format!("{prefix}Project");
            let input = infer(&p.input, db, &format!("{path}/"), diags)?;
            let mut ok = true;
            let mut out = Vec::with_capacity(p.exprs.len());
            for (i, e) in p.exprs.iter().enumerate() {
                ok &= check_expr_cols(e, input.len(), &path, &format!("expr {i}"), diags);
                out.push(expr_coltype(e, &input));
            }
            ok.then_some(out)
        }
        Plan::Filter(f) => {
            let path = format!("{prefix}Filter");
            let input = infer(&f.input, db, &format!("{path}/"), diags)?;
            let ok = check_expr_cols(&f.predicate, input.len(), &path, "predicate", diags);
            let dtypes: Vec<DataType> = input.iter().map(|c| c.dtype).collect();
            warn_predicate_types(&f.predicate, &dtypes, &path, diags);
            ok.then_some(input)
        }
        Plan::Sort(s) => {
            let path = format!("{prefix}Sort");
            let input = infer(&s.input, db, &format!("{path}/"), diags)?;
            let mut ok = true;
            for &(k, _) in &s.keys {
                if k >= input.len() {
                    diags.push(Diagnostic::error(
                        DiagKind::KeyOutOfRange,
                        &path,
                        format!(
                            "sort key position {k} out of range for width {}",
                            input.len()
                        ),
                    ));
                    ok = false;
                }
            }
            ok.then_some(input)
        }
        Plan::Limit { input, .. } => infer(input, db, &format!("{prefix}Limit/"), diags),
        Plan::Exchange(e) => infer(&e.child, db, &format!("{prefix}Exchange/"), diags),
    }
}

fn lookup_table(
    db: &TaurusDb,
    name: &str,
    index: usize,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<Arc<Table>> {
    let table = match db.table(name) {
        Ok(t) => t,
        Err(_) => {
            diags.push(Diagnostic::error(
                DiagKind::UnknownTable,
                path,
                format!("no table named {name:?} in the catalog"),
            ));
            return None;
        }
    };
    if index > table.secondaries.len() {
        diags.push(Diagnostic::error(
            DiagKind::UnknownIndex,
            path,
            format!(
                "index ordinal {index} out of range (table has {} secondaries)",
                table.secondaries.len()
            ),
        ));
        return None;
    }
    Some(table)
}

fn infer_scan(
    s: &ScanNode,
    db: &TaurusDb,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<Vec<ColType>> {
    let table = lookup_table(db, &s.table, s.index, path, diags)?;
    let ncols = table.schema.columns.len();
    let mut ok = true;
    for &c in &s.output {
        if c >= ncols {
            diags.push(Diagnostic::error(
                DiagKind::ColumnOutOfRange,
                path,
                format!("output column {c} out of range for {ncols}-column table"),
            ));
            ok = false;
        }
    }
    let dtypes = table.schema.dtypes();
    for (i, p) in s.predicate.iter().enumerate() {
        for c in p.columns() {
            if c >= ncols {
                diags.push(Diagnostic::error(
                    DiagKind::ColumnOutOfRange,
                    path,
                    format!(
                        "predicate conjunct {i} column {c} out of range for {ncols}-column table"
                    ),
                ));
                ok = false;
            }
        }
        warn_predicate_types(p, &dtypes, path, diags);
    }
    if let Some(d) = &s.ndp {
        for &i in &d.pushed {
            if i >= s.predicate.len() {
                diags.push(Diagnostic::error(
                    DiagKind::PushedOutOfRange,
                    path,
                    format!(
                        "NDP decision pushes conjunct {i}, but the predicate has {}",
                        s.predicate.len()
                    ),
                ));
                ok = false;
            }
        }
    }
    // The executor remaps residual conjuncts onto output positions; a
    // residual column the scan does not deliver used to surface as
    // `Error::Internal` mid-scan. Reject it here instead.
    for p in s.residual_conjuncts() {
        for c in p.columns() {
            if c < ncols && !s.output.contains(&c) {
                diags.push(Diagnostic::error(
                    DiagKind::ResidualNotInOutput,
                    path,
                    format!("residual column {c} not in scan output {:?}", s.output),
                ));
                ok = false;
            }
        }
    }
    let keylen = table.index(s.index).tree.def.effective_key_cols().len();
    for (bound, which) in [(&s.range.lower, "lower"), (&s.range.upper, "upper")] {
        if let Some((vals, _)) = bound {
            if vals.len() > keylen {
                diags.push(Diagnostic::error(
                    DiagKind::KeyPrefixTooLong,
                    path,
                    format!(
                        "{which} bound has {} values, index key has {keylen} columns",
                        vals.len()
                    ),
                ));
                ok = false;
            }
        }
    }
    if !ok {
        return None;
    }
    Some(
        s.output
            .iter()
            .map(|&c| {
                let col = &table.schema.columns[c];
                ColType {
                    dtype: col.dtype,
                    nullable: col.nullable,
                }
            })
            .collect(),
    )
}

// --- typing helpers ----------------------------------------------------------

fn check_expr_cols(
    e: &Expr,
    width: usize,
    path: &str,
    what: &str,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let mut ok = true;
    for c in e.columns() {
        if c >= width {
            diags.push(Diagnostic::error(
                DiagKind::ColumnOutOfRange,
                path,
                format!("{what} references column {c}, input width is {width}"),
            ));
            ok = false;
        }
    }
    ok
}

fn expr_coltype(e: &Expr, input: &[ColType]) -> ColType {
    let dtypes: Vec<DataType> = input.iter().map(|c| c.dtype).collect();
    let dtype = e.dtype(&dtypes).unwrap_or(DataType::BigInt);
    let nullable = match e {
        Expr::Col(i) => input.get(*i).is_none_or(|c| c.nullable),
        Expr::Lit(v) => v.is_null(),
        _ => true,
    };
    ColType { dtype, nullable }
}

fn agg_coltype(item: &AggItem, input: &[DataType]) -> ColType {
    let in_dt = item.input.as_ref().and_then(|e| e.dtype(input).ok());
    let dtype = match item.func {
        AggFuncEx::CountStar | AggFuncEx::Count => DataType::BigInt,
        AggFuncEx::Sum => match in_dt {
            Some(DataType::Decimal { scale, .. }) => DataType::Decimal {
                precision: 30,
                scale,
            },
            Some(DataType::Double) => DataType::Double,
            _ => DataType::BigInt,
        },
        AggFuncEx::Min | AggFuncEx::Max => in_dt.unwrap_or(DataType::BigInt),
        AggFuncEx::Avg => match in_dt {
            Some(DataType::Double) => DataType::Double,
            Some(DataType::Decimal { scale, .. }) => DataType::Decimal {
                precision: 30,
                scale: scale.saturating_add(4),
            },
            _ => DataType::Decimal {
                precision: 30,
                scale: 4,
            },
        },
    };
    ColType {
        dtype,
        nullable: !matches!(item.func, AggFuncEx::CountStar | AggFuncEx::Count),
    }
}

/// Comparability families: within a family the runtime can compare;
/// across families it raises `Error::Type`.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum Family {
    Num,
    Date,
    Str,
}

fn family(d: DataType) -> Family {
    match d {
        DataType::Int | DataType::BigInt | DataType::Decimal { .. } | DataType::Double => {
            Family::Num
        }
        DataType::Date => Family::Date,
        DataType::Char(_) | DataType::Varchar(_) => Family::Str,
    }
}

fn value_family(v: &Value) -> Option<Family> {
    match v {
        Value::Null => None,
        Value::Int(_) | Value::Decimal(_) | Value::Double(_) => Some(Family::Num),
        Value::Date(_) => Some(Family::Date),
        Value::Str(_) => Some(Family::Str),
    }
}

/// Advisory type check over a predicate: flags comparisons whose sides
/// belong to different comparability families.
fn warn_predicate_types(p: &Expr, input: &[DataType], path: &str, diags: &mut Vec<Diagnostic>) {
    p.walk(&mut |e| {
        let pair = |a: &Expr, b: &Expr| -> Option<(Family, Family)> {
            Some((family(a.dtype(input).ok()?), family(b.dtype(input).ok()?)))
        };
        match e {
            Expr::Cmp(_, a, b) => {
                if let Some((fa, fb)) = pair(a, b) {
                    if fa != fb {
                        diags.push(Diagnostic::warning(
                            DiagKind::TypeMismatch,
                            path,
                            format!("comparison mixes {fa:?} and {fb:?}: {e}"),
                        ));
                    }
                }
            }
            Expr::Between { expr, lo, hi } => {
                for side in [lo, hi] {
                    if let Some((fa, fb)) = pair(expr, side) {
                        if fa != fb {
                            diags.push(Diagnostic::warning(
                                DiagKind::TypeMismatch,
                                path,
                                format!("BETWEEN mixes {fa:?} and {fb:?}: {e}"),
                            ));
                        }
                    }
                }
            }
            Expr::InList { expr, list, .. } => {
                if let Ok(dt) = expr.dtype(input) {
                    let fe = family(dt);
                    if list.iter().filter_map(value_family).any(|fv| fv != fe) {
                        diags.push(Diagnostic::warning(
                            DiagKind::TypeMismatch,
                            path,
                            format!("IN list mixes families: {e}"),
                        ));
                    }
                }
            }
            _ => {}
        }
    });
}
