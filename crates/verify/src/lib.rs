//! Static pre-execution verification (`taurus-verify`).
//!
//! Three analyses over plans and predicate programs, run *before* any
//! operator opens:
//!
//! * [`infer`] — type / width / nullability inference over every
//!   [`Plan`] shape against the live catalog. Structural violations
//!   (residual or GROUP BY columns the scan does not deliver, positions
//!   out of range, key prefixes longer than the index key) are rejected
//!   with structured [`Diagnostic`]s carrying plan-path locations —
//!   the same defects that previously surfaced mid-scan as
//!   `Error::Internal`.
//! * [`absint`] — an abstract interpreter over the scalar register IR
//!   and the compiled straight-line [`VectorProgram`]: write-before-read
//!   register discipline, Kleene boolean shape for `AND`/`OR`/`NOT`,
//!   forward-only branches, and scalar↔vector type-level equivalence
//!   (same columns, same register file, same result register).
//! * [`range`] — interval analysis over `Int64`/`Dec` columns proving
//!   predicates rescale-overflow-free (module docs carry the soundness
//!   argument), which lets the vector kernels skip their per-lane
//!   checked-overflow deferral via `VectorProgram::mark_proven_safe`.
//!
//! The executor wires [`check_plan`] as a debug-build gate in front of
//! plan lowering; the `taurus-verify` binary runs the same checks over
//! every registry plan and NDP descriptor program in CI.

pub mod absint;
pub mod diag;
pub mod infer;
pub mod range;

use taurus_common::{Error, Result};
use taurus_optimizer::plan::Plan;

pub use absint::{check_equivalence, check_ir, check_predicate_programs, check_vector};
pub use diag::{has_errors, render, DiagKind, Diagnostic, Severity};
pub use infer::{infer_plan, plan_width, remap_onto, ColType, Inference};
pub use range::{analyze_predicate, columns_storage_backed, RangeVerdict, MAX_SAFE_UPSCALE};

use taurus_expr::ast::Expr;
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::ScanNode;

/// Run every static check over a plan: schema inference plus abstract
/// interpretation of each predicate that will be compiled (scan
/// residuals and `Filter` predicates). Returns all diagnostics,
/// warnings included.
pub fn verify_plan(plan: &Plan, db: &TaurusDb) -> Vec<Diagnostic> {
    let mut inf = infer_plan(plan, db);
    collect_predicates(plan, &mut |e, where_| {
        inf.diags
            .extend(absint::check_predicate_programs(e, where_));
    });
    inf.diags
}

/// The pre-execution gate: reject a plan whose verification produced
/// error-severity diagnostics, rendering them into [`Error::Verify`].
pub fn check_plan(plan: &Plan, db: &TaurusDb) -> Result<()> {
    let diags = verify_plan(plan, db);
    let errors: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(Error::Verify(render(&errors)))
    }
}

/// Visit every predicate expression a plan will compile, with a coarse
/// location label.
fn collect_predicates(plan: &Plan, f: &mut impl FnMut(&Expr, &str)) {
    let scan = |s: &ScanNode, f: &mut dyn FnMut(&Expr, &str)| {
        for p in &s.predicate {
            f(p, "scan predicate");
        }
    };
    match plan {
        Plan::Scan(s) => scan(s, f),
        Plan::AggScan(a) => scan(&a.scan, f),
        Plan::LookupJoin(j) => {
            collect_predicates(&j.outer, f);
            for p in &j.inner_predicate {
                f(p, "lookup inner predicate");
            }
            if let Some(on) = &j.on {
                f(on, "lookup ON");
            }
        }
        Plan::HashJoin(j) => {
            collect_predicates(&j.left, f);
            collect_predicates(&j.right, f);
        }
        Plan::HashAgg(a) => collect_predicates(&a.input, f),
        Plan::Project(p) => collect_predicates(&p.input, f),
        Plan::Filter(fl) => {
            f(&fl.predicate, "filter predicate");
            collect_predicates(&fl.input, f);
        }
        Plan::Sort(s) => collect_predicates(&s.input, f),
        Plan::Limit { input, .. } => collect_predicates(input, f),
        Plan::Exchange(e) => collect_predicates(&e.child, f),
    }
}
