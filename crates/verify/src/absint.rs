//! Abstract interpretation over the scalar register IR and its compiled
//! vector twin.
//!
//! The scalar VM and the column-at-a-time kernels must agree; this
//! module proves the *shape*-level half of that statically:
//!
//! * **Register typing** — every register is written before it is read,
//!   and the boolean combinators (`And`/`Or`/`Not`, the Kleene
//!   three-valued merges) only consume boolean-producing registers.
//! * **Control shape** — branches only jump forward (the straight-line
//!   extraction in `taurus_expr::vector` depends on it), and the program
//!   ends by returning a boolean-shaped register.
//! * **Scalar ↔ vector equivalence** — a compiled [`VectorProgram`] reads
//!   the same columns, uses the same register file, and returns the same
//!   register as the [`IrProgram`] it was lowered from.
//!
//! Like the plan inference, the interpreter is permissive: registers of
//! unknown type (`Top`) satisfy every demand, so only *definite*
//! violations are reported.

use taurus_expr::ir::{IrInstr, IrProgram};
use taurus_expr::vector::{VOpView, VectorProgram};
use taurus_expr::Expr;

use crate::diag::{DiagKind, Diagnostic};

/// Abstract lane/register type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AbsTy {
    /// Not yet written.
    Unset,
    /// Three-valued boolean (comparison / combinator result).
    Bool,
    /// Any scalar value (column, constant, arithmetic result).
    Scalar,
}

impl AbsTy {
    /// Can this register feed a boolean combinator? `Scalar` is allowed —
    /// the VM coerces integers — but `Unset` is a definite bug.
    fn usable(self) -> bool {
        self != AbsTy::Unset
    }
}

/// Check a scalar IR program. Runs the VM's own structural validation
/// first (register/const/target bounds, trailing `Ret`), then the
/// abstract interpretation.
pub fn check_ir(ir: &IrProgram, path: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if let Err(e) = ir.validate() {
        diags.push(Diagnostic::error(
            DiagKind::IrShape,
            path,
            format!("structural validation failed: {e}"),
        ));
        return diags;
    }
    let mut regs = vec![AbsTy::Unset; ir.n_regs as usize];
    let read = |regs: &[AbsTy], r: u16, what: &str, pc: usize, diags: &mut Vec<Diagnostic>| {
        if !regs[r as usize].usable() {
            diags.push(Diagnostic::error(
                DiagKind::IrShape,
                path,
                format!("instr {pc}: {what} reads r{r} before any write"),
            ));
        }
    };
    for (pc, ins) in ir.instrs.iter().enumerate() {
        match *ins {
            IrInstr::LoadCol { dst, .. } | IrInstr::LoadConst { dst, .. } => {
                regs[dst as usize] = AbsTy::Scalar;
            }
            IrInstr::Mov { dst, src } => {
                read(&regs, src, "Mov", pc, &mut diags);
                regs[dst as usize] = regs[src as usize];
            }
            IrInstr::Cmp { dst, a, b, .. } => {
                read(&regs, a, "Cmp", pc, &mut diags);
                read(&regs, b, "Cmp", pc, &mut diags);
                regs[dst as usize] = AbsTy::Bool;
            }
            IrInstr::And { dst, a, b } | IrInstr::Or { dst, a, b } => {
                for r in [a, b] {
                    read(&regs, r, "And/Or", pc, &mut diags);
                    if regs[r as usize] == AbsTy::Scalar {
                        diags.push(Diagnostic::warning(
                            DiagKind::IrShape,
                            path,
                            format!("instr {pc}: Kleene merge consumes non-boolean r{r}"),
                        ));
                    }
                }
                regs[dst as usize] = AbsTy::Bool;
            }
            IrInstr::Not { dst, a } => {
                read(&regs, a, "Not", pc, &mut diags);
                if regs[a as usize] == AbsTy::Scalar {
                    diags.push(Diagnostic::warning(
                        DiagKind::IrShape,
                        path,
                        format!("instr {pc}: Not consumes non-boolean r{a}"),
                    ));
                }
                regs[dst as usize] = AbsTy::Bool;
            }
            IrInstr::Arith { dst, a, b, .. } => {
                read(&regs, a, "Arith", pc, &mut diags);
                read(&regs, b, "Arith", pc, &mut diags);
                regs[dst as usize] = AbsTy::Scalar;
            }
            IrInstr::Neg { dst, a }
            | IrInstr::ExtractYear { dst, a }
            | IrInstr::Substr { dst, a, .. } => {
                read(&regs, a, "unary op", pc, &mut diags);
                regs[dst as usize] = AbsTy::Scalar;
            }
            IrInstr::IsNull { dst, a, .. }
            | IrInstr::Like { dst, a, .. }
            | IrInstr::InList { dst, a, .. } => {
                read(&regs, a, "predicate op", pc, &mut diags);
                regs[dst as usize] = AbsTy::Bool;
            }
            IrInstr::BrFalse { cond, target } | IrInstr::BrTrue { cond, target } => {
                read(&regs, cond, "branch", pc, &mut diags);
                if (target as usize) <= pc {
                    diags.push(Diagnostic::error(
                        DiagKind::IrShape,
                        path,
                        format!("instr {pc}: backward branch to {target}"),
                    ));
                }
            }
            IrInstr::Jmp { target } => {
                if (target as usize) <= pc {
                    diags.push(Diagnostic::error(
                        DiagKind::IrShape,
                        path,
                        format!("instr {pc}: backward jump to {target}"),
                    ));
                }
            }
            IrInstr::Ret { src } => {
                read(&regs, src, "Ret", pc, &mut diags);
            }
        }
    }
    diags
}

/// Check a compiled vector program via its op view: write-before-read
/// over the straight-line sequence, boolean shape for the Kleene
/// combinators, and a written return register.
pub fn check_vector(vp: &VectorProgram, path: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = vp.reg_count();
    let mut regs = vec![AbsTy::Unset; n];
    let read = |regs: &[AbsTy], r: u16, what: &str, i: usize, diags: &mut Vec<Diagnostic>| {
        if !regs[r as usize].usable() {
            diags.push(Diagnostic::error(
                DiagKind::VectorShape,
                path,
                format!("vector op {i}: {what} reads r{r} before any write"),
            ));
        }
    };
    for (i, op) in vp.ops_view().into_iter().enumerate() {
        match op {
            VOpView::Load { dst, .. } | VOpView::LoadConst { dst, .. } => {
                regs[dst as usize] = AbsTy::Scalar;
            }
            VOpView::Mov { dst, src } => {
                read(&regs, src, "Mov", i, &mut diags);
                regs[dst as usize] = regs[src as usize];
            }
            VOpView::Cmp { dst, a, b } => {
                read(&regs, a, "Cmp", i, &mut diags);
                read(&regs, b, "Cmp", i, &mut diags);
                regs[dst as usize] = AbsTy::Bool;
            }
            VOpView::And { dst, a, b } | VOpView::Or { dst, a, b } => {
                for r in [a, b] {
                    read(&regs, r, "And/Or", i, &mut diags);
                    if regs[r as usize] == AbsTy::Scalar {
                        diags.push(Diagnostic::warning(
                            DiagKind::VectorShape,
                            path,
                            format!("vector op {i}: Kleene merge consumes non-boolean r{r}"),
                        ));
                    }
                }
                regs[dst as usize] = AbsTy::Bool;
            }
            VOpView::Not { dst, a } => {
                read(&regs, a, "Not", i, &mut diags);
                regs[dst as usize] = AbsTy::Bool;
            }
            VOpView::Arith { dst, a, b } => {
                read(&regs, a, "Arith", i, &mut diags);
                read(&regs, b, "Arith", i, &mut diags);
                regs[dst as usize] = AbsTy::Scalar;
            }
            VOpView::Neg { dst, a }
            | VOpView::ExtractYear { dst, a }
            | VOpView::Substr { dst, a } => {
                read(&regs, a, "unary op", i, &mut diags);
                regs[dst as usize] = AbsTy::Scalar;
            }
            VOpView::IsNull { dst, a }
            | VOpView::Like { dst, a, .. }
            | VOpView::InList { dst, a, .. } => {
                read(&regs, a, "predicate op", i, &mut diags);
                regs[dst as usize] = AbsTy::Bool;
            }
        }
    }
    let ret = vp.ret_reg();
    if (ret as usize) < n && !regs[ret as usize].usable() {
        diags.push(Diagnostic::error(
            DiagKind::VectorShape,
            path,
            format!("return register r{ret} is never written"),
        ));
    }
    diags
}

/// Type-level equivalence between a scalar IR program and the vector
/// program extracted from it: same columns read, same register file,
/// same result register.
pub fn check_equivalence(ir: &IrProgram, vp: &VectorProgram, path: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let (ic, vc) = (ir.columns_used(), vp.columns_used());
    if ic != vc {
        diags.push(Diagnostic::error(
            DiagKind::Equivalence,
            path,
            format!("scalar program reads columns {ic:?}, vector twin reads {vc:?}"),
        ));
    }
    if ir.n_regs as usize != vp.reg_count() {
        diags.push(Diagnostic::error(
            DiagKind::Equivalence,
            path,
            format!(
                "register files differ: scalar {} vs vector {}",
                ir.n_regs,
                vp.reg_count()
            ),
        ));
    }
    let ret = match ir.instrs.last() {
        Some(IrInstr::Ret { src }) => *src,
        _ => {
            diags.push(Diagnostic::error(
                DiagKind::IrShape,
                path,
                "scalar program does not end with Ret".into(),
            ));
            return diags;
        }
    };
    if ret != vp.ret_reg() {
        diags.push(Diagnostic::error(
            DiagKind::Equivalence,
            path,
            format!(
                "result registers differ: scalar r{ret} vs vector r{}",
                vp.ret_reg()
            ),
        ));
    }
    diags
}

/// Full program check for one predicate expression: lower to scalar IR,
/// compile the vector twin when possible, and run all three checks.
/// Expressions the vectorizer rejects (CASE, backward shapes) only get
/// the scalar check — that is a supported fallback, not a defect.
pub fn check_predicate_programs(e: &Expr, path: &str) -> Vec<Diagnostic> {
    let Ok(ir) = taurus_expr::compile::lower(e) else {
        // Not NDP-eligible (e.g. register pressure): the executor
        // evaluates the tree directly; nothing to verify here.
        return Vec::new();
    };
    let mut diags = check_ir(&ir, path);
    if let Ok(vp) = VectorProgram::from_expr(e) {
        diags.extend(check_vector(&vp, path));
        diags.extend(check_equivalence(&ir, &vp, path));
    }
    diags
}
