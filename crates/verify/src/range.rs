//! Interval (range) analysis over `Int64`/`Dec` columns: proving that a
//! predicate's decimal rescales cannot overflow, so the vector kernels
//! may skip their per-lane checked-overflow deferral.
//!
//! ## Soundness argument
//!
//! Decimal columns are stored as *scaled `i64`* (the page encoder
//! narrows `Dec::raw` through `i64::try_from`), so any decimal value a
//! scan materializes satisfies `|raw| <= i64::MAX ≈ 9.22e18`. Aligning
//! two decimals of scales `s₁ < s₂` multiplies the smaller-scale raw by
//! `10^(s₂-s₁)` in `i128`. Since `i128::MAX / i64::MAX ≈ 1.84e19`, the
//! product is representable whenever `10^(s₂-s₁) <= 1.8e19`, i.e.
//! whenever the scale gap is at most [`MAX_SAFE_UPSCALE`] = 19. The
//! same bound covers `Int64` columns (`|v| <= i64::MAX` trivially).
//!
//! The proof only applies to **storage-backed** columns — batches whose
//! columns came straight from a scan (possibly through Filter / Sort /
//! Limit / Exchange, which never recompute values). A projection can
//! manufacture decimals whose raw magnitude exceeds `i64::MAX`
//! (`Dec * Dec` multiplies raws), so predicates over projected inputs
//! are never proven; they keep the checked kernels.
//!
//! Only comparison shapes that reach the *unchecked* fast kernels need
//! proving: `column vs literal` and `column vs column`. Every other
//! shape (arithmetic operands, `IN` lists, CASE fallbacks) already runs
//! through per-lane slot comparison, whose `Dec::cmp_dec` is
//! overflow-sound by construction.

use taurus_common::{DataType, Value};
use taurus_expr::ast::Expr;
use taurus_optimizer::plan::Plan;

/// Largest decimal scale gap whose rescale of an `i64`-bounded raw value
/// provably fits `i128` (see module docs).
pub const MAX_SAFE_UPSCALE: u8 = 19;

/// Outcome of analyzing one predicate.
#[derive(Clone, Debug)]
pub struct RangeVerdict {
    /// Every rescale the vector kernels could perform for this predicate
    /// is proven overflow-free.
    pub proven: bool,
    /// Human-readable reasons for each comparison site that could not be
    /// proven (these keep the checked per-lane kernels).
    pub deferring: Vec<String>,
}

/// Are all of `plan`'s output columns storage-backed (scan values passed
/// through unmodified)? Filter/Sort/Limit/Exchange forward their input
/// columns; projections and aggregations manufacture new values, which
/// voids the `|raw| <= i64::MAX` storage bound.
pub fn columns_storage_backed(plan: &Plan) -> bool {
    match plan {
        Plan::Scan(_) => true,
        Plan::Filter(f) => columns_storage_backed(&f.input),
        Plan::Sort(s) => columns_storage_backed(&s.input),
        Plan::Limit { input, .. } => columns_storage_backed(input),
        Plan::Exchange(e) => columns_storage_backed(&e.child),
        _ => false,
    }
}

/// Analyze one predicate over storage-backed input columns with the
/// given dtypes. `proven` holds only if every `column vs literal` /
/// `column vs column` comparison the vector kernels would fast-path has
/// a scale gap of at most [`MAX_SAFE_UPSCALE`].
pub fn analyze_predicate(pred: &Expr, dtypes: &[DataType]) -> RangeVerdict {
    let mut deferring = Vec::new();
    pred.walk(&mut |e| match e {
        Expr::Cmp(_, a, b) => check_pair(a, b, dtypes, &mut deferring),
        Expr::Between { expr, lo, hi } => {
            check_pair(expr, lo, dtypes, &mut deferring);
            check_pair(expr, hi, dtypes, &mut deferring);
        }
        _ => {}
    });
    RangeVerdict {
        proven: deferring.is_empty(),
        deferring,
    }
}

/// Scale of a side as the kernels see it: a decimal column's declared
/// scale, an integer column/literal's scale 0, a decimal literal's own
/// scale. `None` = not a decimal-comparable leaf (the pair takes the
/// always-sound generic path).
enum Side {
    Col(DecKind),
    Lit(DecKind),
    Other,
}

enum DecKind {
    /// Integer-valued: scale 0, `i64`-bounded.
    Int,
    /// Decimal with this scale; columns are `i64`-bounded by storage.
    Dec(u8),
}

fn classify(e: &Expr, dtypes: &[DataType]) -> Side {
    match e {
        Expr::Col(i) => match dtypes.get(*i) {
            Some(DataType::Int | DataType::BigInt) => Side::Col(DecKind::Int),
            Some(DataType::Decimal { scale, .. }) => Side::Col(DecKind::Dec(*scale)),
            _ => Side::Other,
        },
        Expr::Lit(Value::Int(_)) => Side::Lit(DecKind::Int),
        Expr::Lit(Value::Decimal(d)) => Side::Lit(DecKind::Dec(d.scale)),
        _ => Side::Other,
    }
}

fn check_pair(a: &Expr, b: &Expr, dtypes: &[DataType], deferring: &mut Vec<String>) {
    let (sa, sb) = (classify(a, dtypes), classify(b, dtypes));
    let unproven = match (&sa, &sb) {
        // Column vs literal (either order): the kernel upscales the
        // column side per lane when the literal's scale is higher.
        // Literal-side alignment is checked once at kernel setup, which
        // is free — only the per-lane column upscale needs the proof.
        (Side::Col(c), Side::Lit(l)) | (Side::Lit(l), Side::Col(c)) => {
            let (cs, ls) = (kind_scale(c), kind_scale(l));
            ls > cs && ls - cs > MAX_SAFE_UPSCALE
        }
        // Column vs column: the lower-scale side upscales per lane.
        (Side::Col(x), Side::Col(y)) => {
            let (xs, ys) = (kind_scale(x), kind_scale(y));
            xs.abs_diff(ys) > MAX_SAFE_UPSCALE
        }
        // Anything else runs the generic slot path (overflow-sound).
        _ => false,
    };
    if unproven {
        deferring.push(format!(
            "({a} vs {b}): scale gap exceeds {MAX_SAFE_UPSCALE}"
        ));
    }
}

fn kind_scale(k: &DecKind) -> u8 {
    match k {
        DecKind::Int => 0,
        DecKind::Dec(s) => *s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taurus_common::Dec;

    const DTS: &[DataType] = &[
        DataType::BigInt,
        DataType::Decimal {
            precision: 15,
            scale: 2,
        },
        DataType::Decimal {
            precision: 15,
            scale: 4,
        },
    ];

    #[test]
    fn typical_tpch_predicates_are_proven() {
        // l_quantity < 24 and l_discount between 0.05 and 0.07 shapes.
        let p = Expr::and(vec![
            Expr::lt(Expr::col(0), Expr::int(24)),
            Expr::between(Expr::col(1), Expr::dec("0.05"), Expr::dec("0.07")),
            Expr::ge(Expr::col(1), Expr::col(2)),
        ]);
        let v = analyze_predicate(&p, DTS);
        assert!(v.proven, "{:?}", v.deferring);
    }

    #[test]
    fn huge_literal_scale_defers() {
        let p = Expr::gt(Expr::col(1), Expr::lit(Value::Decimal(Dec::new(1, 30))));
        let v = analyze_predicate(&p, DTS);
        assert!(!v.proven);
        assert_eq!(v.deferring.len(), 1);
        // The gap 30-2=28 > 19 is reported, with the site named.
        assert!(v.deferring[0].contains("scale gap"), "{:?}", v.deferring);
    }

    #[test]
    fn non_leaf_comparisons_do_not_defer() {
        // Arithmetic operands take the generic slot path; no proof needed.
        let p = Expr::gt(
            Expr::mul(Expr::col(1), Expr::col(2)),
            Expr::lit(Value::Decimal(Dec::new(1, 30))),
        );
        assert!(analyze_predicate(&p, DTS).proven);
    }

    #[test]
    fn storage_backed_chains_only() {
        use taurus_optimizer::plan::ScanNode;
        let scan = Plan::Scan(ScanNode::new("t", vec![0, 1]));
        assert!(columns_storage_backed(&scan));
        let filtered = scan.clone().filter(Expr::int(1)).limit(5);
        assert!(columns_storage_backed(&filtered));
        let projected = scan.project(vec![Expr::col(0)]);
        assert!(!columns_storage_backed(&projected));
    }
}
