//! Per-connection session loop and the query/DML serving paths.
//!
//! Error discipline, in order of severity:
//! - **I/O errors** (disconnect, read timeout, unreadable framing) end
//!   the session. Any in-flight [`RowStream`] is dropped on the way
//!   out, which cancels the producing scan and returns its NDP frames —
//!   a slow or vanished client cannot pin buffer-pool memory.
//! - **Decode errors** (unknown opcode, corrupt payload) and **engine
//!   errors** answer with an Error frame and keep the session alive.
//! - **Replica refusals** after routing (detached, or lag crossed the
//!   bound between `route_read` and execution) retry once on the
//!   master, invisibly to the client except for `node` in the
//!   end-of-stream frame.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use taurus_common::batch::RowBatch;
use taurus_common::{Error, Lsn, Result, TenantId, Value};
use taurus_executor::dsl::{ArithOp, CmpOp, ColRef, QExpr};
use taurus_executor::{Agg, RowStream, Session};
use taurus_ndp::TaurusDb;
use taurus_protocol::{
    decode_message, encode_error, encode_row_batch, read_frame, write_frame, BuilderSpec, ColSel,
    DmlRequest, Message, Opcode, QueryRequest, WireAggFunc, WireExpr, MASTER_NODE,
};

use crate::router::Router;
use crate::ServerState;

pub(crate) fn serve_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    if state.cfg.session_read_timeout_ms > 0 {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(
            state.cfg.session_read_timeout_ms,
        )));
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::new(read_half);
    let mut w = BufWriter::new(stream);

    // Handshake: anything but a well-formed Hello is a hang-up — this
    // peer does not speak the protocol, so no frame would reach it. The
    // Hello's tenant id scopes every query of the session for admission
    // control and per-tenant accounting.
    let tenant: TenantId = match Message::read(&mut r) {
        Ok(Message::Hello { tenant, .. }) => {
            let welcome = Message::Welcome {
                server: format!("taurus-server/{}", env!("CARGO_PKG_VERSION")),
                nodes: state.router.nodes() as u32,
            };
            if write_flush(&mut w, &welcome).is_err() {
                return;
            }
            tenant
        }
        _ => return,
    };

    // Read-your-LSN stickiness bound: monotone over the connection's
    // committed writes, 0 until the first write.
    let mut last_commit_lsn: Lsn = 0;

    loop {
        let (op, payload) = match read_frame(&mut r) {
            Ok(f) => f,
            Err(_) => return, // disconnect, idle timeout, or broken framing
        };
        let msg = match decode_message(op, &payload) {
            Ok(m) => m,
            Err(e) => {
                if send_error(state, &mut w, &e).is_err() {
                    return;
                }
                continue;
            }
        };
        let io = match msg {
            Message::Query(req) => {
                state.metrics().add(|m| &m.server_queries, 1);
                state
                    .metrics()
                    .tenants
                    .tenant(tenant)
                    .queries
                    .fetch_add(1, Ordering::Relaxed);
                match state.gate.acquire_bounded(state.cfg.gate_queue_depth) {
                    Ok(_permit) => {
                        let (db, node) = state.router.route_read(last_commit_lsn);
                        serve_query_on(state, &mut w, &req, db, node, tenant)
                    }
                    Err(e) => {
                        state.metrics().add(|m| &m.server_overload_refused, 1);
                        send_error(state, &mut w, &e)
                    }
                }
            }
            Message::Dml(d) => serve_dml(state, &mut w, d, &mut last_commit_lsn),
            Message::Stats => write_flush(&mut w, &Message::StatsText(stats_text(state))),
            other => send_error(
                state,
                &mut w,
                &Error::InvalidState(format!(
                    "unexpected frame opcode {} from client",
                    other.opcode() as u8
                )),
            ),
        };
        if io.is_err() {
            return;
        }
    }
}

/// Serve one read on a routed node, falling back to the master when a
/// replica refuses. Split out (and generic over the sink) so failover
/// is unit-testable without sockets.
pub(crate) fn serve_query_on<W: Write>(
    state: &ServerState,
    w: &mut W,
    req: &QueryRequest,
    db: Arc<TaurusDb>,
    node: u32,
    tenant: TenantId,
) -> std::io::Result<()> {
    // One execution deadline for the whole response, stamped before plan
    // build: `session_read_timeout_ms` bounds query execution too, so a
    // browned-out Page Store cannot stall a session past the same budget
    // that already bounds socket reads. The session's per-query budget
    // makes scans fail fast; the send loop double-checks between batches
    // and cancels the producer (RowStream drop) on expiry.
    let deadline = (state.cfg.session_read_timeout_ms > 0)
        .then(|| Instant::now() + Duration::from_millis(state.cfg.session_read_timeout_ms));
    if matches!(req, QueryRequest::Sql { .. }) {
        state.metrics().add(|m| &m.sql_queries, 1);
    }
    // SQL diagnostics are counted where the request finally fails (after
    // any failover), so one refused statement is one `sql_parse_errors`.
    let refuse = |state: &ServerState, w: &mut W, e: &Error| {
        if matches!(req, QueryRequest::Sql { .. }) && matches!(e, Error::Parse(_)) {
            state.metrics().add(|m| &m.sql_parse_errors, 1);
        }
        send_error(state, w, e)
    };
    match prepare(state, &db, req, tenant) {
        Ok(ready) => send_ready(state, w, ready, node, deadline),
        Err(_) if node != MASTER_NODE => {
            state.metrics().add(|m| &m.server_failovers, 1);
            match prepare(state, &state.router.master_db(), req, tenant) {
                Ok(ready) => send_ready(state, w, ready, MASTER_NODE, deadline),
                Err(e) => refuse(state, w, &e),
            }
        }
        Err(e) => refuse(state, w, &e),
    }
}

/// A prepared response. The first batch is pulled *before* any frame
/// is written, so replica-side failures (plan build or first scan
/// batch) can still fail over to the master cleanly.
enum Ready {
    Stream {
        first: Option<RowBatch>,
        rest: RowStream,
    },
    Row(Option<taurus_common::Row>),
    /// Small fully-materialized response (EXPLAIN text), one batch.
    Batch(RowBatch),
}

fn prepare(
    state: &ServerState,
    db: &Arc<TaurusDb>,
    req: &QueryRequest,
    tenant: TenantId,
) -> Result<Ready> {
    // Every serving session runs under the connection's tenant and the
    // server's execution budget: scans bill the tenant on the Page-Store
    // side and stop with DeadlineExceeded instead of stalling.
    let governed = |db: &Arc<TaurusDb>| {
        let mut s = Session::new(db).with_tenant(tenant);
        s.set_query_budget_ms(state.cfg.session_read_timeout_ms);
        s
    };
    match req {
        QueryRequest::Named { name, pq } => {
            // stream_plan has no serveability gate of its own; refuse
            // stale replicas here the way Session::query would.
            db.check_serveable()?;
            let plan_fn = state.registry.get(name).ok_or_else(|| {
                Error::NotFound(format!(
                    "no plan registered under `{name}` (known: {})",
                    state.registry.names().join(", ")
                ))
            })?;
            let plan = plan_fn(db, pq.map(|d| d as usize))?;
            let session = governed(db);
            first_batch(session.stream_plan(plan))
        }
        QueryRequest::Builder(spec) => {
            let mut session = governed(db);
            session.set_ndp(spec.ndp);
            first_batch(builder_stream(&session, spec)?)
        }
        QueryRequest::Lookup { table, pk } => {
            let session = governed(db);
            Ok(Ready::Row(session.lookup(table, pk)?))
        }
        QueryRequest::Sql { text, ndp } => {
            // Same gate as Named: binding resolves names against this
            // node's catalog and execution scans it, so a stale replica
            // refuses before any work (then fails over to the master).
            db.check_serveable()?;
            let mut session = governed(db);
            session.set_ndp(*ndp);
            match taurus_sql::parse(text)? {
                taurus_sql::Statement::Select(s) => {
                    let plan = taurus_sql::bind(&session, &s)?;
                    first_batch(session.stream_plan(plan))
                }
                taurus_sql::Statement::Explain(s) => {
                    let plan = taurus_sql::bind(&session, &s)?;
                    let text = taurus_optimizer::explain_physical(&plan, session.db());
                    let lines: Vec<&str> = text.lines().collect();
                    let mut b = RowBatch::with_capacity(1, lines.len());
                    for line in lines {
                        b.push_row(vec![Value::str(line)]);
                    }
                    Ok(Ready::Batch(b))
                }
            }
        }
    }
}

fn first_batch(mut stream: RowStream) -> Result<Ready> {
    match stream.next_batch() {
        Some(Err(e)) => Err(e),
        Some(Ok(b)) => Ok(Ready::Stream {
            first: Some(b),
            rest: stream,
        }),
        None => Ok(Ready::Stream {
            first: None,
            rest: stream,
        }),
    }
}

/// Rebuild the fluent builder chain from its wire spec and start the
/// stream. Name resolution and validation run server-side in the
/// builder itself, exactly as in-process.
fn builder_stream(session: &Session, spec: &BuilderSpec) -> Result<RowStream> {
    let mut q = session.query(&spec.table)?;
    if let Some(ix) = &spec.via_index {
        q = q.via_index(ix);
    }
    for f in &spec.filters {
        q = q.filter(to_qexpr(f)?);
    }
    if !spec.select.is_empty() {
        q = q.select(spec.select.iter().map(to_colref));
    }
    if !spec.group.is_empty() {
        q = q.group_by(spec.group.iter().map(to_colref));
    }
    for (func, input) in &spec.aggs {
        q = q.agg(to_agg(*func, input.as_ref())?);
    }
    for &(pos, desc) in &spec.order {
        q = q.order_by(pos as usize, desc);
    }
    if let Some(n) = spec.limit {
        q = q.limit(n as usize);
    }
    if let Some(d) = spec.parallel {
        q = q.parallel(d as usize);
    }
    q.stream()
}

fn to_colref(c: &ColSel) -> ColRef {
    match c {
        ColSel::Name(n) => ColRef::Name(n.clone()),
        ColSel::Pos(p) => ColRef::Position(*p as usize),
    }
}

fn to_agg(func: WireAggFunc, input: Option<&WireExpr>) -> Result<Agg> {
    if func == WireAggFunc::CountStar {
        return Ok(Agg::count_star());
    }
    let e = to_qexpr(input.ok_or_else(|| {
        Error::Corruption(format!(
            "wire: aggregate {func:?} requires an input expression"
        ))
    })?)?;
    Ok(match func {
        // lint:allow(panic): CountStar early-returned above
        WireAggFunc::CountStar => unreachable!(),
        WireAggFunc::Count => Agg::count(e),
        WireAggFunc::Sum => Agg::sum(e),
        WireAggFunc::Min => Agg::min(e),
        WireAggFunc::Max => Agg::max(e),
        WireAggFunc::Avg => Agg::avg(e),
    })
}

fn to_qexpr(e: &WireExpr) -> Result<QExpr> {
    fn boxed(e: &WireExpr) -> Result<Box<QExpr>> {
        Ok(Box::new(to_qexpr(e)?))
    }
    Ok(match e {
        WireExpr::Col(name) => QExpr::Col(name.clone()),
        WireExpr::Nth(i) => QExpr::Nth(*i as usize),
        WireExpr::Lit(v) => QExpr::Lit(v.clone()),
        WireExpr::Cmp(op, a, b) => QExpr::Cmp(cmp_op(*op)?, boxed(a)?, boxed(b)?),
        WireExpr::And(xs) => QExpr::And(xs.iter().map(to_qexpr).collect::<Result<_>>()?),
        WireExpr::Or(xs) => QExpr::Or(xs.iter().map(to_qexpr).collect::<Result<_>>()?),
        WireExpr::Not(a) => QExpr::Not(boxed(a)?),
        WireExpr::Arith(op, a, b) => QExpr::Arith(arith_op(*op)?, boxed(a)?, boxed(b)?),
        WireExpr::Neg(a) => QExpr::Neg(boxed(a)?),
        WireExpr::Like {
            expr,
            pattern,
            negated,
        } => QExpr::Like {
            expr: boxed(expr)?,
            pattern: pattern.clone(),
            negated: *negated,
        },
        WireExpr::InList {
            expr,
            list,
            negated,
        } => QExpr::InList {
            expr: boxed(expr)?,
            list: list.clone(),
            negated: *negated,
        },
        WireExpr::Between { expr, lo, hi } => QExpr::Between {
            expr: boxed(expr)?,
            lo: boxed(lo)?,
            hi: boxed(hi)?,
        },
        WireExpr::IsNull { expr, negated } => QExpr::IsNull {
            expr: boxed(expr)?,
            negated: *negated,
        },
        WireExpr::ExtractYear(a) => QExpr::ExtractYear(boxed(a)?),
    })
}

fn cmp_op(b: u8) -> Result<CmpOp> {
    Ok(match b {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        t => {
            return Err(Error::Corruption(format!(
                "wire: unknown comparison op {t}"
            )))
        }
    })
}

fn arith_op(b: u8) -> Result<ArithOp> {
    Ok(match b {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        3 => ArithOp::Div,
        t => {
            return Err(Error::Corruption(format!(
                "wire: unknown arithmetic op {t}"
            )))
        }
    })
}

/// Stream a prepared response out: RowBatch frames, then EndOfStream —
/// or an Error frame as the terminator if the scan fails mid-way or the
/// execution deadline expires between batches (returning early drops
/// the [`RowStream`], which cancels the producing scan).
fn send_ready<W: Write>(
    state: &ServerState,
    w: &mut W,
    ready: Ready,
    node: u32,
    deadline: Option<Instant>,
) -> std::io::Result<()> {
    Router::count_route(state.metrics(), node);
    let mut rows = 0u64;
    let mut batches = 0u64;
    match ready {
        Ready::Row(found) => {
            if let Some(row) = found {
                let mut b = RowBatch::with_capacity(row.len(), 1);
                b.push_row(row);
                write_batch(state, w, &b)?;
                rows = 1;
                batches = 1;
            }
        }
        Ready::Batch(b) => {
            if !b.is_empty() {
                rows = b.len() as u64;
                batches = 1;
                write_batch(state, w, &b)?;
            }
        }
        Ready::Stream { first, mut rest } => {
            let mut next = first;
            while let Some(b) = next {
                rows += b.len() as u64;
                batches += 1;
                write_batch(state, w, &b)?;
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    // Budget burned (e.g. by a slow client sink): answer
                    // with the retryable deadline error and drop `rest`
                    // on return, cancelling the producing scan.
                    state.metrics().add(|m| &m.deadline_exceeded, 1);
                    return send_error(
                        state,
                        w,
                        &Error::DeadlineExceeded(format!(
                            "query execution exceeded session_read_timeout_ms ({} ms)",
                            state.cfg.session_read_timeout_ms
                        )),
                    );
                }
                next = match rest.next_batch() {
                    Some(Ok(b)) => Some(b),
                    Some(Err(e)) => {
                        // Mid-stream engine error: the Error frame is
                        // the response terminator (no EndOfStream).
                        return send_error(state, w, &e);
                    }
                    None => None,
                };
            }
        }
    }
    write_flush(
        w,
        &Message::EndOfStream {
            rows,
            batches,
            node,
        },
    )
}

fn write_batch<W: Write>(state: &ServerState, w: &mut W, b: &RowBatch) -> std::io::Result<()> {
    let payload = encode_row_batch(b);
    write_frame(w, Opcode::RowBatch, &payload)?;
    w.flush()?;
    let m = state.metrics();
    m.add(|x| &x.server_rows_sent, b.len() as u64);
    m.add(|x| &x.server_batches_sent, 1);
    // +6: u32 length prefix + version + opcode.
    m.add(|x| &x.server_bytes_sent, payload.len() as u64 + 6);
    Ok(())
}

fn serve_dml<W: Write>(
    state: &ServerState,
    w: &mut W,
    d: DmlRequest,
    last_commit_lsn: &mut Lsn,
) -> std::io::Result<()> {
    let _permit = state.gate.acquire();
    let master = state.router.master_db();
    let trx = master.begin();
    let applied = apply_dml(&master, trx, &d);
    match applied {
        Ok(()) => {
            master.commit(trx);
            // Conservative upper bound on the commit's LSN — sticking
            // reads to it guarantees read-your-writes.
            let lsn = master.sal().current_lsn();
            *last_commit_lsn = (*last_commit_lsn).max(lsn);
            state.metrics().add(|m| &m.server_dml, 1);
            write_flush(w, &Message::DmlOk { commit_lsn: lsn })
        }
        Err(e) => {
            let _ = master.rollback(trx);
            send_error(state, w, &e)
        }
    }
}

fn apply_dml(db: &Arc<TaurusDb>, trx: taurus_common::TrxId, d: &DmlRequest) -> Result<()> {
    match d {
        DmlRequest::Insert { table, row } => {
            let t = db.table(table)?;
            db.insert_row(&t, trx, row)
        }
        DmlRequest::Update { table, row } => {
            let t = db.table(table)?;
            db.update_row(&t, trx, row)
        }
        DmlRequest::Delete { table, pk } => {
            let t = db.table(table)?;
            db.delete_row(&t, trx, pk)
        }
    }
}

/// STATS payload: the master's counters verbatim, then each replica's
/// engine counters under a `replica{i}.` prefix.
fn stats_text(state: &ServerState) -> String {
    use std::fmt::Write as _;
    let mut out = state.router.master_db().metrics().render_text();
    for (i, r) in state.router.replicas().iter().enumerate() {
        for line in r.db().metrics().render_text().lines() {
            let _ = writeln!(out, "replica{i}.{line}");
        }
    }
    out
}

fn send_error<W: Write>(state: &ServerState, w: &mut W, e: &Error) -> std::io::Result<()> {
    state.metrics().add(|m| &m.server_errors_sent, 1);
    let (code, message) = encode_error(e);
    write_flush(w, &Message::Error { code, message })
}

fn write_flush<W: Write>(w: &mut W, m: &Message) -> std::io::Result<()> {
    m.write(w)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanRegistry;
    use taurus_common::{ClusterConfig, Column, DataType, Row, TableSchema, Value};
    use taurus_replica::Replica;

    fn seeded_master() -> Arc<TaurusDb> {
        let db = TaurusDb::new(ClusterConfig::small_for_tests());
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("id", DataType::BigInt),
                Column::new("v", DataType::BigInt),
            ],
            vec![0],
        );
        let t = db.create_table(schema, &[]).unwrap();
        let rows: Vec<Row> = (0..10i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect();
        db.bulk_load(&t, rows).unwrap();
        db
    }

    /// Decode every frame a serving call wrote into a byte sink.
    fn decode_frames(bytes: &[u8]) -> Vec<Message> {
        let mut r = std::io::Cursor::new(bytes);
        let mut out = Vec::new();
        while (r.position() as usize) < bytes.len() {
            out.push(Message::read(&mut r).unwrap());
        }
        out
    }

    #[test]
    fn replica_refusal_fails_over_to_master_transparently() {
        let master = seeded_master();
        let replica = Replica::attach(&master);
        replica.wait_caught_up(Duration::from_secs(10)).unwrap();
        let replica_db = replica.db().clone();
        let state = ServerState::new(master.clone(), vec![replica.clone()], PlanRegistry::new());

        // Detach *after* routing would have picked the replica: the
        // serve path must notice the refusal and re-run on the master.
        replica.detach();
        let mut out = Vec::new();
        let req = QueryRequest::Builder(BuilderSpec::table("t"));
        serve_query_on(
            &state,
            &mut out,
            &req,
            replica_db,
            1,
            taurus_common::DEFAULT_TENANT,
        )
        .unwrap();

        let frames = decode_frames(&out);
        let Some(Message::EndOfStream { rows, node, .. }) = frames.last() else {
            panic!("expected EndOfStream, got {:?}", frames.last());
        };
        assert_eq!(*rows, 10, "failover must still return every row");
        assert_eq!(*node, MASTER_NODE, "response must report the master");
        let snap = master.metrics().snapshot();
        assert_eq!(snap.server_failovers, 1);
        assert_eq!(snap.server_routed_master, 1);
        assert_eq!(snap.server_routed_replica, 0);
    }

    #[test]
    fn master_side_error_reaches_client_as_error_frame() {
        let master = seeded_master();
        let state = ServerState::new(master, Vec::new(), PlanRegistry::new());
        let mut out = Vec::new();
        let req = QueryRequest::Builder(BuilderSpec::table("no_such_table"));
        let (db, node) = state.router.route_read(0);
        serve_query_on(
            &state,
            &mut out,
            &req,
            db,
            node,
            taurus_common::DEFAULT_TENANT,
        )
        .unwrap();
        let frames = decode_frames(&out);
        assert_eq!(frames.len(), 1);
        let Message::Error { code, message } = &frames[0] else {
            panic!("expected Error frame, got {:?}", frames[0]);
        };
        // NameResolution per the errcode table; message is client-safe.
        assert_eq!(*code, 7, "{message}");
        assert!(message.contains("no_such_table"));
        assert_eq!(state.metrics().snapshot().server_errors_sent, 1);
    }

    #[test]
    fn wire_expr_translation_roundtrips_through_the_builder() {
        let master = seeded_master();
        let state = ServerState::new(master, Vec::new(), PlanRegistry::new());
        let mut spec = BuilderSpec::table("t");
        spec.filters.push(WireExpr::Cmp(
            4, // Gt
            Box::new(WireExpr::Col("v".into())),
            Box::new(WireExpr::Lit(Value::Int(40))),
        ));
        spec.select = vec![ColSel::Name("id".into())];
        spec.order = vec![(0, true)];
        let mut out = Vec::new();
        let (db, node) = state.router.route_read(0);
        serve_query_on(
            &state,
            &mut out,
            &QueryRequest::Builder(spec),
            db,
            node,
            taurus_common::DEFAULT_TENANT,
        )
        .unwrap();
        let frames = decode_frames(&out);
        let rows: Vec<_> = frames
            .iter()
            .filter_map(|f| match f {
                Message::RowBatch(b) => Some(b.to_rows()),
                _ => None,
            })
            .flatten()
            .collect();
        // v > 40 → ids 5..9, descending.
        let want: Vec<_> = (5..10i64).rev().map(|i| vec![Value::Int(i)]).collect();
        assert_eq!(rows, want);
    }
}
