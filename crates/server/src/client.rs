//! A blocking wire client for `taurus-server`.
//!
//! One [`Client`] is one session: connect, handshake, then issue
//! queries, DML and stats scrapes over the same connection. Errors the
//! server sends as frames come back as the structured
//! [`taurus_common::Error`] they were on the server, so client code can
//! match on variants exactly like in-process code. Dropping the client
//! mid-stream closes the socket, which is the cancellation signal the
//! server acts on.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use taurus_common::{Error, Result, Row, TenantId, Value, DEFAULT_TENANT};
use taurus_protocol::{decode_error, BuilderSpec, DmlRequest, Message, QueryRequest};

pub struct Client {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
    /// Node count the server reported in its Welcome frame.
    nodes: u32,
}

/// One query's full decoded response.
#[derive(Debug)]
pub struct QueryReply {
    pub rows: Vec<Row>,
    /// RowBatch frames received — the server's streaming granularity.
    pub batches: u64,
    /// Wire id of the node that served the read (0 = master).
    pub node: u32,
}

impl Client {
    /// Connect and handshake as the anonymous tenant.
    pub fn connect(addr: &str) -> Result<Client> {
        Client::connect_as(addr, DEFAULT_TENANT)
    }

    /// Connect and handshake as a named tenant: the server bills this
    /// session's NDP work (and quota rejections) to `tenant` and breaks
    /// it out in STATS under `tenant{id}.` lines.
    pub fn connect_as(addr: &str, tenant: TenantId) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(io_err)?;
        let mut c = Client {
            r: BufReader::new(read_half),
            w: BufWriter::new(stream),
            nodes: 0,
        };
        c.send(&Message::Hello {
            client: format!("taurus-client/{}", env!("CARGO_PKG_VERSION")),
            tenant,
        })?;
        match c.recv()? {
            Message::Welcome { nodes, .. } => c.nodes = nodes,
            Message::Error { code, message } => return Err(decode_error(code, message)),
            other => return Err(unexpected(&other)),
        }
        Ok(c)
    }

    /// Connect with retries until `timeout` — for racing a server that
    /// is still loading data (the smoke binary's normal case).
    pub fn connect_retry(addr: &str, timeout: Duration) -> Result<Client> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }

    /// Node count (master + replicas) from the handshake.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Run a query registered server-side by name (e.g. `"Q6"`).
    pub fn query_named(&mut self, name: &str, pq: Option<usize>) -> Result<QueryReply> {
        self.query(QueryRequest::Named {
            name: name.to_string(),
            pq: pq.map(|d| d as u32),
        })
    }

    /// Run a serialized builder chain.
    pub fn query_builder(&mut self, spec: BuilderSpec) -> Result<QueryReply> {
        self.query(QueryRequest::Builder(spec))
    }

    /// Run a SQL text statement server-side. The server parses, binds
    /// against its live catalog, and streams the result exactly like a
    /// registered plan; `EXPLAIN` comes back as one single-column string
    /// row per plan line. Malformed SQL returns the server's positioned
    /// [`Error::Parse`] (wire error code 1).
    pub fn query_sql(&mut self, text: &str, ndp: bool) -> Result<QueryReply> {
        self.query(QueryRequest::Sql {
            text: text.to_string(),
            ndp,
        })
    }

    /// MVCC point lookup; returns the row (if any) and the serving node.
    pub fn lookup(&mut self, table: &str, pk: Vec<Value>) -> Result<(Option<Row>, u32)> {
        let mut reply = self.query(QueryRequest::Lookup {
            table: table.to_string(),
            pk,
        })?;
        Ok((reply.rows.pop(), reply.node))
    }

    /// Send any read request and collect the whole response.
    pub fn query(&mut self, req: QueryRequest) -> Result<QueryReply> {
        self.send(&Message::Query(req))?;
        let mut rows: Vec<Row> = Vec::new();
        let mut batches = 0u64;
        loop {
            match self.recv()? {
                Message::RowBatch(b) => {
                    batches += 1;
                    rows.extend(b.to_rows());
                }
                Message::EndOfStream {
                    rows: n,
                    batches: nb,
                    node,
                } => {
                    if n as usize != rows.len() || nb != batches {
                        return Err(Error::Corruption(format!(
                            "wire: end-of-stream claims {n} rows / {nb} batches, \
                             received {} / {batches}",
                            rows.len()
                        )));
                    }
                    return Ok(QueryReply {
                        rows,
                        batches,
                        node,
                    });
                }
                Message::Error { code, message } => return Err(decode_error(code, message)),
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Execute one write as its own transaction; returns the commit LSN
    /// (which also advances this session's read-your-LSN bound
    /// server-side).
    pub fn execute(&mut self, d: DmlRequest) -> Result<u64> {
        self.send(&Message::Dml(d))?;
        match self.recv()? {
            Message::DmlOk { commit_lsn } => Ok(commit_lsn),
            Message::Error { code, message } => Err(decode_error(code, message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Scrape the server's metrics as stable `name value` lines.
    pub fn stats(&mut self) -> Result<String> {
        self.send(&Message::Stats)?;
        match self.recv()? {
            Message::StatsText(text) => Ok(text),
            Message::Error { code, message } => Err(decode_error(code, message)),
            other => Err(unexpected(&other)),
        }
    }

    /// Send one frame (any message — for tests that probe server
    /// behaviour below the typed helpers).
    pub fn send(&mut self, m: &Message) -> Result<()> {
        m.write(&mut self.w).map_err(io_err)?;
        self.w.flush().map_err(io_err)
    }

    /// Receive one frame.
    pub fn recv(&mut self) -> Result<Message> {
        Message::read(&mut self.r).map_err(io_err)
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::InvalidState(format!("connection: {e}"))
}

fn unexpected(m: &Message) -> Error {
    Error::Corruption(format!(
        "wire: unexpected frame opcode {} in response",
        m.opcode() as u8
    ))
}
