//! The network serving layer: the process shape the paper assumes.
//!
//! Taurus compute nodes are client-facing front ends over shared Log
//! and Page Stores; PR 5's read replicas made extra *engines*, and this
//! crate makes them extra *serving capacity*. A [`Server`] owns the
//! master plus any attached replicas, accepts TCP sessions, and speaks
//! `taurus-protocol` frames:
//!
//! - **Sessions** are threads (the repo is deliberately async-free):
//!   one accept loop, one thread per connection, bounded by
//!   `server.max_sessions` (excess connections get an error frame) with
//!   a permit [`Gate`] bounding concurrently *executing* queries at
//!   `server.worker_threads`.
//! - **Routing** is lag-aware and sticky: reads rotate across the
//!   master and every replica that is currently serveable
//!   (`check_serveable`: attached and within `replica.max_lag_lsn`)
//!   *and* whose visible LSN has reached the connection's last commit
//!   LSN — so a client always reads its own writes. A replica that
//!   refuses between routing and execution is retried on the master
//!   transparently (`server_failovers` counts these).
//! - **Results** stream: each `RowStream::next_batch` is encoded
//!   straight into one RowBatch frame. A client that disconnects
//!   mid-stream makes the socket write fail, which drops the
//!   `RowStream` — the existing backpressure path then cancels the
//!   producing scan and frees its NDP frames.
//!
//! [`client::Client`] is the matching blocking client; the
//! `taurus-server` / `taurus-smoke` binaries wrap both around the TPC-H
//! suite.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use taurus_common::{Error, Metrics, Result, ServerConfig};
use taurus_ndp::TaurusDb;
use taurus_optimizer::plan::Plan;
use taurus_protocol::{encode_error, Message};
use taurus_replica::Replica;

pub mod client;
mod router;
mod serve;

pub use client::{Client, QueryReply};
pub use router::Router;

/// A named-plan entry: the same function shape the TPC-H registry uses
/// (`fn(&TaurusDb, pq_degree) -> Plan`).
pub type PlanFn = fn(&TaurusDb, Option<usize>) -> Result<Plan>;

/// Plans servable by name via `QueryRequest::Named`.
#[derive(Default, Clone)]
pub struct PlanRegistry {
    plans: HashMap<String, PlanFn>,
}

impl PlanRegistry {
    pub fn new() -> PlanRegistry {
        PlanRegistry::default()
    }

    pub fn register(&mut self, name: &str, f: PlanFn) {
        self.plans.insert(name.to_string(), f);
    }

    pub fn get(&self, name: &str) -> Option<PlanFn> {
        self.plans.get(name).copied()
    }

    pub fn names(&self) -> Vec<String> {
        let mut ns: Vec<String> = self.plans.keys().cloned().collect();
        ns.sort();
        ns
    }
}

/// The whole TPC-H suite (all 22 queries + the §VII-A micro queries) as
/// a registry — what the `taurus-server` binary serves.
pub fn tpch_registry() -> PlanRegistry {
    let mut reg = PlanRegistry::new();
    for q in taurus_tpch::tpch_queries() {
        reg.register(q.name, q.plan);
    }
    for q in taurus_tpch::micro_queries() {
        reg.register(q.name, q.plan);
    }
    reg
}

/// A counting-semaphore worker pool: at most `max` permits out at once.
/// Sessions block here before executing a query, so `max_sessions`
/// connections never mean `max_sessions` concurrent scans.
pub struct Gate {
    max: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    held: usize,
    waiting: usize,
}

impl Gate {
    pub fn new(max: usize) -> Gate {
        Gate {
            max: max.max(1),
            state: Mutex::new(GateState {
                held: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
        }
    }

    pub fn acquire(&self) -> GatePermit<'_> {
        // lint:allow(panic): gate mutex poisoned only if a permit holder panicked
        let mut st = self.state.lock().unwrap();
        while st.held >= self.max {
            // lint:allow(panic): same poisoned-mutex reasoning as the lock above
            st = self.cv.wait(st).unwrap();
        }
        st.held += 1;
        GatePermit { gate: self }
    }

    /// Queue-depth-aware acquire: block like [`Gate::acquire`], but only
    /// if fewer than `max_waiting` callers are already parked. Beyond
    /// that the server is genuinely behind, and queueing deeper only
    /// converts overload into latency — refuse with the *retryable*
    /// [`Error::Overloaded`] instead so well-behaved clients back off.
    pub fn acquire_bounded(&self, max_waiting: usize) -> Result<GatePermit<'_>> {
        // lint:allow(panic): gate mutex poisoned only if a permit holder panicked
        let mut st = self.state.lock().unwrap();
        if st.held >= self.max {
            if st.waiting >= max_waiting {
                return Err(Error::Overloaded(format!(
                    "query gate saturated: {} executing, {} queued (limit {max_waiting}); \
                     retry with backoff",
                    st.held, st.waiting
                )));
            }
            st.waiting += 1;
            while st.held >= self.max {
                // lint:allow(panic): same poisoned-mutex reasoning as the lock above
                st = self.cv.wait(st).unwrap();
            }
            st.waiting -= 1;
        }
        st.held += 1;
        Ok(GatePermit { gate: self })
    }

    /// Queued callers right now (for tests and introspection).
    pub fn waiting(&self) -> usize {
        // lint:allow(panic): gate mutex poisoned only if a permit holder panicked
        self.state.lock().unwrap().waiting
    }
}

/// RAII permit from [`Gate::acquire`].
pub struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        // lint:allow(panic): drop must rebalance the gate; poisoning is already fatal
        let mut st = self.gate.state.lock().unwrap();
        st.held -= 1;
        drop(st);
        self.gate.cv.notify_one();
    }
}

/// Shared server state: router, registry, knobs, permit gate.
pub struct ServerState {
    pub(crate) router: Router,
    pub(crate) registry: PlanRegistry,
    pub(crate) cfg: ServerConfig,
    pub(crate) gate: Gate,
    pub(crate) live_sessions: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
}

impl ServerState {
    pub(crate) fn new(
        master: Arc<TaurusDb>,
        replicas: Vec<Arc<Replica>>,
        registry: PlanRegistry,
    ) -> ServerState {
        let cfg = master.config().server.clone();
        ServerState {
            router: Router::new(master, replicas),
            registry,
            gate: Gate::new(cfg.worker_threads),
            cfg,
            live_sessions: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Counters live on the master's metrics (one scrape covers the
    /// serving layer; per-replica engine metrics are prefixed in STATS).
    pub(crate) fn metrics(&self) -> &Arc<Metrics> {
        self.router.master_ref().metrics()
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Bind `master.config().server.listen_addr` and start serving.
    /// Replicas passed here become routable read nodes (node id =
    /// position + 1; the master is node 0).
    pub fn start(
        master: &Arc<TaurusDb>,
        replicas: Vec<Arc<Replica>>,
        registry: PlanRegistry,
    ) -> Result<ServerHandle> {
        let state = Arc::new(ServerState::new(master.clone(), replicas, registry));
        let listener = TcpListener::bind(&state.cfg.listen_addr).map_err(|e| {
            Error::InvalidState(format!("cannot bind {}: {e}", state.cfg.listen_addr))
        })?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::InvalidState(format!("local_addr: {e}")))?;
        let accept = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("taurus-accept".into())
                .spawn(move || accept_loop(listener, state))
                .map_err(|e| Error::InvalidState(format!("spawn accept loop: {e}")))?
        };
        Ok(ServerHandle {
            local_addr,
            state,
            accept: Some(accept),
        })
    }
}

/// A running server; dropping it stops the accept loop (live sessions
/// drain as their clients disconnect or idle out).
pub struct ServerHandle {
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn master(&self) -> Arc<TaurusDb> {
        self.state.router.master_db()
    }

    /// Sessions currently connected.
    pub fn live_sessions(&self) -> usize {
        self.state.live_sessions.load(Ordering::SeqCst)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let n = state.live_sessions.fetch_add(1, Ordering::SeqCst) + 1;
        if n > state.cfg.max_sessions {
            state.live_sessions.fetch_sub(1, Ordering::SeqCst);
            refuse_session(&state, stream);
            continue;
        }
        state
            .metrics()
            .gauge_inc(|m| &m.server_sessions, |m| &m.server_sessions_peak);
        let st = state.clone();
        let spawned = std::thread::Builder::new()
            .name("taurus-session".into())
            .spawn(move || {
                serve::serve_connection(stream, &st);
                st.live_sessions.fetch_sub(1, Ordering::SeqCst);
                st.metrics().sub(|m| &m.server_sessions, 1);
            });
        if spawned.is_err() {
            state.live_sessions.fetch_sub(1, Ordering::SeqCst);
            state.metrics().sub(|m| &m.server_sessions, 1);
        }
    }
}

/// Answer an over-cap connection with a retryable Overloaded frame,
/// then close it.
fn refuse_session(state: &ServerState, stream: TcpStream) {
    state.metrics().add(|m| &m.server_sessions_refused, 1);
    let e = Error::Overloaded(format!(
        "server at max_sessions ({}); retry later",
        state.cfg.max_sessions
    ));
    let (code, message) = encode_error(&e);
    let mut w = std::io::BufWriter::new(stream);
    let _ = Message::Error { code, message }.write(&mut w);
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn gate_bounds_concurrency() {
        let gate = Arc::new(Gate::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (gate, peak, cur) = (gate.clone(), peak.clone(), cur.clone());
                std::thread::spawn(move || {
                    let _p = gate.acquire();
                    let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(10));
                    cur.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate leaked permits");
    }

    #[test]
    fn gate_refuses_beyond_queue_depth() {
        let gate = Arc::new(Gate::new(1));
        let p1 = gate.acquire();
        // One caller may park...
        let waiter = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                let _p = gate
                    .acquire_bounded(1)
                    .expect("first waiter fits the queue");
            })
        };
        while gate.waiting() < 1 {
            std::thread::yield_now();
        }
        // ...the next is refused with the retryable Overloaded error.
        let refused = gate.acquire_bounded(1);
        assert!(
            matches!(refused, Err(Error::Overloaded(_))),
            "expected Overloaded refusal"
        );
        drop(refused);
        drop(p1);
        waiter.join().unwrap();
    }

    #[test]
    fn tpch_registry_serves_all_queries() {
        let reg = tpch_registry();
        let names = reg.names();
        for q in 1..=22 {
            assert!(names.contains(&format!("Q{q}")), "missing Q{q}");
        }
        assert!(reg.get("Q6").is_some());
        assert!(reg.get("nope").is_none());
        // Micro-benchmark plans ride along.
        assert!(names.len() > 22, "micro queries registered too: {names:?}");
    }
}
