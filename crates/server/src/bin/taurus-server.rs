//! Standalone server: load TPC-H, attach replicas, serve until killed.
//!
//! Configuration is environment-driven (matching the `TAURUS_*` knob
//! convention):
//! - `TAURUS_LISTEN_ADDR` (default `127.0.0.1:4907`; port 0 = ephemeral)
//! - `TAURUS_SERVER_SF` — TPC-H scale factor to load (default 0.01)
//! - `TAURUS_SERVER_REPLICAS` — read replicas to attach (default 2)
//! - plus the serving knobs in `ServerConfig` (worker threads, max
//!   sessions, read timeout).

use std::sync::Arc;
use std::time::Duration;

use taurus_common::ClusterConfig;
use taurus_ndp::TaurusDb;
use taurus_replica::Replica;
use taurus_server::{tpch_registry, Server};

fn env_f64(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let sf = env_f64("TAURUS_SERVER_SF", 0.01);
    let n_replicas = env_usize("TAURUS_SERVER_REPLICAS", 2);

    let db = TaurusDb::new(ClusterConfig::default());
    eprintln!("taurus-server: loading TPC-H SF {sf} ...");
    taurus_tpch::load(&db, sf, 42).expect("load TPC-H");

    let replicas: Vec<Arc<Replica>> = (0..n_replicas).map(|_| Replica::attach(&db)).collect();
    for (i, r) in replicas.iter().enumerate() {
        r.wait_caught_up(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("replica {i} catch-up: {e}"));
    }

    let handle = Server::start(&db, replicas, tpch_registry()).expect("start server");
    // The smoke client greps this line for the (possibly ephemeral) port.
    println!(
        "taurus-server: listening on {} ({} nodes, SF {sf})",
        handle.local_addr(),
        1 + n_replicas
    );

    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
