//! End-to-end smoke check against a running `taurus-server`.
//!
//! Loads the identical deterministic dataset locally (same SF, same
//! seed 42), runs each named query both over the wire and in-process,
//! and exits non-zero on any mismatch. Run each query twice so the
//! round-robin router exercises more than one node when replicas are
//! attached. With `--sql`, each query additionally runs as SQL text
//! (tag-4 payload, NDP off and on) and must match the same in-process
//! registry-plan rows byte-for-byte. Usage:
//!
//! ```text
//! taurus-smoke [--addr HOST:PORT] [--sf F] [--queries Q1,Q6,...]
//!              [--connect-timeout-secs N] [--sql]
//! ```

use std::time::Duration;

use taurus_common::ClusterConfig;
use taurus_executor::Session;
use taurus_ndp::TaurusDb;
use taurus_server::{tpch_registry, Client};

fn main() {
    let mut addr = "127.0.0.1:4907".to_string();
    let mut sf = 0.01f64;
    let mut queries = "Q1,Q3,Q6,Q12,Q14".to_string();
    let mut timeout = 120u64;
    let mut sql = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => addr = val("--addr"),
            "--sf" => sf = val("--sf").parse().expect("--sf"),
            "--queries" => queries = val("--queries"),
            "--connect-timeout-secs" => timeout = val("--connect-timeout-secs").parse().expect("N"),
            "--sql" => sql = true,
            other => panic!("unknown argument {other}"),
        }
    }

    eprintln!("taurus-smoke: connecting to {addr} ...");
    let mut client =
        Client::connect_retry(&addr, Duration::from_secs(timeout)).expect("connect to server");
    eprintln!(
        "taurus-smoke: connected ({} nodes); building local SF {sf} reference ...",
        client.nodes()
    );

    let local = TaurusDb::new(ClusterConfig::default());
    taurus_tpch::load(&local, sf, 42).expect("load local reference");
    let session = Session::new(&local);
    let registry = tpch_registry();

    let mut failures = 0usize;
    for name in queries.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let plan_fn = registry
            .get(name)
            .unwrap_or_else(|| panic!("unknown query {name}"));
        let plan = plan_fn(&local, None).expect("plan");
        let want = session.execute_plan(&plan).expect("local run");
        for round in 0..2 {
            let got = client.query_named(name, None).expect("wire run");
            if got.rows == want {
                println!(
                    "taurus-smoke: {name} round {round}: {} rows OK (node {})",
                    want.len(),
                    got.node
                );
            } else {
                failures += 1;
                eprintln!(
                    "taurus-smoke: {name} round {round} MISMATCH: wire {} rows vs local {}",
                    got.rows.len(),
                    want.len()
                );
            }
        }
        if sql {
            // The same query as SQL text must stream back the identical
            // rows — the server parses and binds against its own live
            // catalog, so this exercises the whole tag-4 path.
            let Some(text) = taurus_sql::tpch_sql::sql_for(name) else {
                eprintln!("taurus-smoke: {name}: no SQL text, skipping --sql leg");
                continue;
            };
            for ndp in [false, true] {
                let got = client.query_sql(text, ndp).expect("wire SQL run");
                if got.rows == want {
                    println!(
                        "taurus-smoke: {name} sql ndp={ndp}: {} rows OK (node {})",
                        want.len(),
                        got.node
                    );
                } else {
                    failures += 1;
                    eprintln!(
                        "taurus-smoke: {name} sql ndp={ndp} MISMATCH: wire {} rows vs local {}",
                        got.rows.len(),
                        want.len()
                    );
                }
            }
        }
    }

    if sql {
        // Fail-closed check: malformed SQL must come back as the
        // positioned Parse diagnostic, leaving the session usable.
        match client.query_sql("selec * from lineitem", false) {
            Err(taurus_common::Error::Parse(m)) if m.starts_with("line ") => {
                println!("taurus-smoke: malformed SQL refused: {m}");
            }
            other => {
                failures += 1;
                eprintln!("taurus-smoke: malformed SQL not refused as Parse: {other:?}");
            }
        }
    }

    let stats = client.stats().expect("stats scrape");
    let served = stats
        .lines()
        .find_map(|l| l.strip_prefix("server_queries "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("server_queries line in stats");
    assert!(served > 0, "stats should count served queries");

    if failures > 0 {
        eprintln!("taurus-smoke: FAILED ({failures} mismatches)");
        std::process::exit(1);
    }
    println!("taurus-smoke: all queries match in-process results");
}
