//! Lag-aware read routing across the master and its replicas.
//!
//! Node numbering is the wire contract: the master is node 0
//! ([`taurus_protocol::MASTER_NODE`]), replica `i` is node `i + 1`.
//! A read is routable to a replica only when the replica would accept
//! it itself (`TaurusDb::check_serveable`, which refuses detached
//! replicas and replicas lagging past `replica.max_lag_lsn`) **and**
//! the replica's visible LSN has reached the caller's stickiness bound
//! (its last commit LSN), so a session never observes a database state
//! older than its own writes. Eligible nodes are rotated round-robin;
//! the master is always eligible, so routing can never strand a read.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use taurus_common::{Lsn, Metrics};
use taurus_ndp::TaurusDb;
use taurus_protocol::MASTER_NODE;
use taurus_replica::Replica;

pub struct Router {
    master: Arc<TaurusDb>,
    replicas: Vec<Arc<Replica>>,
    rr: AtomicUsize,
}

impl Router {
    pub fn new(master: Arc<TaurusDb>, replicas: Vec<Arc<Replica>>) -> Router {
        Router {
            master,
            replicas,
            rr: AtomicUsize::new(0),
        }
    }

    pub fn master_db(&self) -> Arc<TaurusDb> {
        self.master.clone()
    }

    pub(crate) fn master_ref(&self) -> &Arc<TaurusDb> {
        &self.master
    }

    pub fn replicas(&self) -> &[Arc<Replica>] {
        &self.replicas
    }

    /// Total routable nodes (master + attached replicas), the count
    /// reported in the Welcome frame.
    pub fn nodes(&self) -> usize {
        1 + self.replicas.len()
    }

    /// Pick a node for a read that must observe at least `min_lsn`.
    /// Returns the engine to run on and its wire node id.
    pub fn route_read(&self, min_lsn: Lsn) -> (Arc<TaurusDb>, u32) {
        let mut candidates: Vec<(u32, &Arc<TaurusDb>)> = Vec::with_capacity(self.nodes());
        candidates.push((MASTER_NODE, &self.master));
        for (i, r) in self.replicas.iter().enumerate() {
            if r.db().check_serveable().is_ok() && r.visible_lsn() >= min_lsn {
                candidates.push((i as u32 + 1, r.db()));
            }
        }
        let k = self.rr.fetch_add(1, Ordering::Relaxed) % candidates.len();
        let (node, db) = candidates[k];
        (db.clone(), node)
    }

    /// Count one routing decision on the serving metrics.
    pub(crate) fn count_route(metrics: &Metrics, node: u32) {
        if node == MASTER_NODE {
            metrics.add(|m| &m.server_routed_master, 1);
        } else {
            metrics.add(|m| &m.server_routed_replica, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::time::Duration;
    use taurus_common::ClusterConfig;

    fn master() -> Arc<TaurusDb> {
        TaurusDb::new(ClusterConfig::small_for_tests())
    }

    #[test]
    fn master_only_always_routes_node_zero() {
        let db = master();
        let router = Router::new(db, Vec::new());
        for _ in 0..5 {
            let (_, node) = router.route_read(0);
            assert_eq!(node, MASTER_NODE);
        }
    }

    #[test]
    fn caught_up_replicas_share_the_rotation() {
        let db = master();
        let r1 = Replica::attach(&db);
        let r2 = Replica::attach(&db);
        r1.wait_caught_up(Duration::from_secs(10)).unwrap();
        r2.wait_caught_up(Duration::from_secs(10)).unwrap();
        let router = Router::new(db, vec![r1, r2]);
        let nodes: HashSet<u32> = (0..9).map(|_| router.route_read(0).1).collect();
        assert_eq!(nodes, HashSet::from([0, 1, 2]));
    }

    #[test]
    fn stickiness_bound_excludes_lagging_replicas() {
        let db = master();
        let r = Replica::attach(&db);
        r.wait_caught_up(Duration::from_secs(10)).unwrap();
        let router = Router::new(db, vec![r]);
        // A bound beyond anything the replica has applied: master only.
        let future = router.master_ref().sal().current_lsn() + 1_000_000;
        for _ in 0..6 {
            assert_eq!(router.route_read(future).1, MASTER_NODE);
        }
        // Relaxing the bound brings the replica back.
        let nodes: HashSet<u32> = (0..6).map(|_| router.route_read(0).1).collect();
        assert_eq!(nodes, HashSet::from([0, 1]));
    }

    #[test]
    fn detached_replica_drops_out_of_rotation() {
        let db = master();
        let r = Replica::attach(&db);
        r.wait_caught_up(Duration::from_secs(10)).unwrap();
        let router = Router::new(db, vec![r.clone()]);
        r.detach();
        for _ in 0..6 {
            assert_eq!(router.route_read(0).1, MASTER_NODE);
        }
    }
}
