//! The compute-node buffer pool (§IV-C3).
//!
//! Regular pages live in a hash map + LRU and are shared by all scans.
//! *NDP pages* are different: they are custom-made for one table access, so
//! although they are allocated from the pool's capacity (the free list),
//! they are **never** inserted into the hash map or LRU — invisible to
//! every other query, exactly as the paper requires. Their number is
//! bounded per scan by `innodb_ndp_max_pages_look_ahead` (enforced by the
//! scan, which sizes its batches to that quota) and globally by the pool
//! capacity; an [`NdpFrameGuard`] returns its frame on drop ("after an NDP
//! scan finishes processing an NDP page in the batch, the page is
//! immediately released back to buffer pool free list").
//!
//! Pages are immutable [`Arc`] snapshots: mutation goes through
//! [`BufferPool::update`], which clones-on-write. Readers holding an `Arc`
//! are unaffected by eviction, which stands in for pin counts.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use taurus_common::{Error, Metrics, PageRef, Result, SpaceId};
use taurus_page::Page;

struct Entry {
    page: Arc<Page>,
    /// Stamp of this entry's newest position in the lazy-LRU queue.
    stamp: u64,
}

struct Inner {
    map: HashMap<PageRef, Entry>,
    /// Lazy LRU: (stamp, page). Entries whose stamp no longer matches the
    /// map are stale and skipped at eviction time.
    lru: VecDeque<(u64, PageRef)>,
    next_stamp: u64,
    /// Frames currently lent out to NDP scans.
    ndp_allocated: usize,
}

/// The buffer pool.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<Inner>,
    metrics: Arc<Metrics>,
    /// Signaled whenever an NDP frame is released, so a scan waiting in
    /// [`BufferPool::alloc_ndp_frame_timeout`] wakes immediately (std
    /// pair — the vendored `parking_lot` has no Condvar).
    frame_freed: (std::sync::Mutex<()>, std::sync::Condvar),
}

impl BufferPool {
    pub fn new(capacity: usize, metrics: Arc<Metrics>) -> Arc<BufferPool> {
        assert!(capacity > 0);
        Arc::new(BufferPool {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: VecDeque::new(),
                next_stamp: 0,
                ndp_allocated: 0,
            }),
            metrics,
            frame_freed: (std::sync::Mutex::new(()), std::sync::Condvar::new()),
        })
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of regular pages cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ndp_frames_in_use(&self) -> usize {
        self.inner.lock().ndp_allocated
    }

    /// Look up a page; refreshes LRU position on hit.
    pub fn get(&self, pref: PageRef) -> Option<Arc<Page>> {
        let mut g = self.inner.lock();
        let stamp = g.next_stamp;
        match g.map.get_mut(&pref) {
            Some(e) => {
                e.stamp = stamp;
                let page = e.page.clone();
                g.next_stamp += 1;
                g.lru.push_back((stamp, pref));
                drop(g);
                self.metrics.add(|m| &m.bp_hits, 1);
                Some(page)
            }
            None => {
                drop(g);
                self.metrics.add(|m| &m.bp_misses, 1);
                None
            }
        }
    }

    /// Peek without touching the LRU or metrics (used by the optimizer's
    /// cache-awareness estimate, §VII-C footnote 4).
    pub fn contains(&self, pref: PageRef) -> bool {
        self.inner.lock().map.contains_key(&pref)
    }

    /// Insert (or replace) a regular page, evicting LRU pages if needed.
    pub fn insert(&self, pref: PageRef, page: Arc<Page>) {
        let mut g = self.inner.lock();
        let stamp = g.next_stamp;
        g.next_stamp += 1;
        let budget = self.capacity.saturating_sub(g.ndp_allocated).max(1);
        g.map.insert(pref, Entry { page, stamp });
        g.lru.push_back((stamp, pref));
        let evicted = Self::evict_to(&mut g, budget);
        drop(g);
        if evicted > 0 {
            self.metrics.add(|m| &m.bp_evictions, evicted);
        }
    }

    /// Clone-on-write mutation. Returns false if the page is not cached.
    pub fn update(&self, pref: PageRef, f: impl FnOnce(&mut Page)) -> bool {
        let mut g = self.inner.lock();
        match g.map.get_mut(&pref) {
            Some(e) => {
                f(Arc::make_mut(&mut e.page));
                true
            }
            None => false,
        }
    }

    /// Drop a page from the cache (e.g. after a structural split during
    /// which stale copies must not be served).
    pub fn remove(&self, pref: PageRef) {
        self.inner.lock().map.remove(&pref);
    }

    /// Evict map entries (stale-stamp-aware) until `map.len() <= budget`.
    /// Returns the number of evictions.
    fn evict_to(g: &mut Inner, budget: usize) -> u64 {
        let mut evicted = 0;
        while g.map.len() > budget {
            match g.lru.pop_front() {
                Some((stamp, pref)) => {
                    let is_current = g.map.get(&pref).map(|e| e.stamp == stamp).unwrap_or(false);
                    if is_current {
                        g.map.remove(&pref);
                        evicted += 1;
                    }
                    // Stale entries are skipped silently.
                }
                None => break, // inconsistent only if map empty; defensive
            }
        }
        evicted
    }

    /// Allocate an NDP frame for `page`. The frame counts against pool
    /// capacity (evicting regular pages if the pool is full) but the page
    /// is *not* registered in the hash map/LRU — invisible to other scans.
    pub fn alloc_ndp_frame(self: &Arc<Self>, page: Arc<Page>) -> Result<NdpFrameGuard> {
        let mut g = self.inner.lock();
        if g.ndp_allocated >= self.capacity {
            return Err(Error::InvalidState(
                "buffer pool exhausted by NDP frames".into(),
            ));
        }
        g.ndp_allocated += 1;
        let budget = self.capacity - g.ndp_allocated;
        let evicted = Self::evict_to(&mut g, budget.max(1).min(self.capacity));
        drop(g);
        if evicted > 0 {
            self.metrics.add(|m| &m.bp_evictions, evicted);
        }
        self.metrics.add(|m| &m.bp_ndp_frames, 1);
        Ok(NdpFrameGuard {
            pool: Arc::clone(self),
            page,
        })
    }

    /// Best-effort variant of [`BufferPool::alloc_ndp_frame`]: `None`
    /// instead of an error when the NDP area is exhausted. Prefetching
    /// scans use this while *staging* look-ahead pages — under cross-scan
    /// contention they degrade to deferred (consume-time) allocation
    /// rather than failing a query that only needs one frame at a time.
    pub fn try_alloc_ndp_frame(self: &Arc<Self>, page: Arc<Page>) -> Option<NdpFrameGuard> {
        self.alloc_ndp_frame(page).ok()
    }

    /// Allocate an NDP frame, waiting up to `timeout` for one to be
    /// released if the NDP area is momentarily exhausted by concurrent
    /// scans. Wakes on every [`NdpFrameGuard`] drop (no polling); on
    /// timeout the pool-exhausted error surfaces. Callers must hold
    /// **zero** NDP frames while waiting (the prefetching scan sheds its
    /// staged accounting first) — that is what makes the wait
    /// deadlock-free: every held frame belongs to a scan that is making
    /// progress and will release it.
    pub fn alloc_ndp_frame_timeout(
        self: &Arc<Self>,
        page: Arc<Page>,
        timeout: std::time::Duration,
    ) -> Result<NdpFrameGuard> {
        let deadline = std::time::Instant::now() + timeout;
        let (lock, cvar) = &self.frame_freed;
        // Holding `frame_freed` across the failed attempt and the wait
        // (releasers take it before notifying) prevents lost wakeups.
        let mut signal = lock.lock().expect("frame_freed poisoned");
        loop {
            match self.alloc_ndp_frame(page.clone()) {
                Ok(f) => return Ok(f),
                Err(e) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(e);
                    }
                    signal = cvar
                        .wait_timeout(signal, deadline - now)
                        .expect("frame_freed poisoned")
                        .0;
                }
            }
        }
    }

    /// Pages cached for a given space — the counter behind the paper's Q4
    /// buffer-pool experiment (§VII-D: lineitem pages present after Q1–Q3).
    pub fn count_pages_in_space(&self, space: SpaceId) -> usize {
        self.inner
            .lock()
            .map
            .keys()
            .filter(|p| p.space == space)
            .count()
    }

    /// Drop everything (used between benchmark runs for cold-cache starts).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.map.clear();
        g.lru.clear();
    }
}

/// An NDP page occupying one pool frame, released on drop.
pub struct NdpFrameGuard {
    pool: Arc<BufferPool>,
    page: Arc<Page>,
}

impl NdpFrameGuard {
    pub fn page(&self) -> &Arc<Page> {
        &self.page
    }
}

impl Drop for NdpFrameGuard {
    fn drop(&mut self) {
        self.pool.inner.lock().ndp_allocated -= 1;
        // Take the signal lock before notifying so a waiter that just
        // failed its attempt cannot miss this release (lost wakeup).
        drop(
            self.pool
                .frame_freed
                .0
                .lock()
                .expect("frame_freed poisoned"),
        );
        self.pool.frame_freed.1.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(space: u32, no: u32) -> Arc<Page> {
        Arc::new(Page::new_index(1024, SpaceId(space), no, 1, 0))
    }

    fn pref(space: u32, no: u32) -> PageRef {
        PageRef::new(SpaceId(space), no)
    }

    fn pool(cap: usize) -> Arc<BufferPool> {
        BufferPool::new(cap, Metrics::shared())
    }

    #[test]
    fn hit_miss_and_metrics() {
        let m = Metrics::shared();
        let p = BufferPool::new(4, m.clone());
        assert!(p.get(pref(1, 0)).is_none());
        p.insert(pref(1, 0), page(1, 0));
        assert!(p.get(pref(1, 0)).is_some());
        let s = m.snapshot();
        assert_eq!((s.bp_hits, s.bp_misses), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(3);
        for i in 0..3 {
            p.insert(pref(1, i), page(1, i));
        }
        // Touch 0 so 1 becomes the LRU victim.
        p.get(pref(1, 0));
        p.insert(pref(1, 3), page(1, 3));
        assert!(p.contains(pref(1, 0)));
        assert!(!p.contains(pref(1, 1)), "page 1 should have been evicted");
        assert!(p.contains(pref(1, 2)));
        assert!(p.contains(pref(1, 3)));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn update_is_copy_on_write() {
        let p = pool(2);
        p.insert(pref(1, 0), page(1, 0));
        let before = p.get(pref(1, 0)).unwrap();
        assert!(p.update(pref(1, 0), |pg| pg.set_lsn(42)));
        let after = p.get(pref(1, 0)).unwrap();
        assert_eq!(before.lsn(), 0, "reader's snapshot unaffected");
        assert_eq!(after.lsn(), 42);
        assert!(!p.update(pref(9, 9), |_| {}));
    }

    #[test]
    fn ndp_frames_invisible_and_capacity_counted() {
        let p = pool(4);
        for i in 0..4 {
            p.insert(pref(1, i), page(1, i));
        }
        let g1 = p.alloc_ndp_frame(page(2, 100)).unwrap();
        let g2 = p.alloc_ndp_frame(page(2, 101)).unwrap();
        // NDP pages are not findable.
        assert!(!p.contains(pref(2, 100)));
        assert_eq!(p.ndp_frames_in_use(), 2);
        // Capacity pressure evicted regular pages down to 4-2=2.
        assert_eq!(p.len(), 2);
        drop(g1);
        drop(g2);
        assert_eq!(p.ndp_frames_in_use(), 0);
    }

    #[test]
    fn ndp_allocation_fails_only_when_pool_exhausted() {
        let p = pool(2);
        let _g1 = p.alloc_ndp_frame(page(2, 0)).unwrap();
        let _g2 = p.alloc_ndp_frame(page(2, 1)).unwrap();
        assert!(p.alloc_ndp_frame(page(2, 2)).is_err());
        drop(_g1);
        assert!(p.alloc_ndp_frame(page(2, 3)).is_ok());
    }

    #[test]
    fn timeout_alloc_waits_for_a_release() {
        let p = pool(2);
        let g1 = p.alloc_ndp_frame(page(2, 0)).unwrap();
        let _g2 = p.alloc_ndp_frame(page(2, 1)).unwrap();
        // Full pool + nobody releasing: the timeout path errors.
        assert!(p
            .alloc_ndp_frame_timeout(page(2, 2), std::time::Duration::from_millis(20))
            .is_err());
        // A concurrent release wakes the waiter well before the deadline.
        let p2 = p.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(g1);
        });
        let got = p.alloc_ndp_frame_timeout(page(2, 3), std::time::Duration::from_secs(5));
        t.join().unwrap();
        assert!(got.is_ok());
        drop(got);
        assert_eq!(p2.ndp_frames_in_use(), 1);
    }

    #[test]
    fn count_pages_per_space_for_q4_experiment() {
        let p = pool(10);
        for i in 0..4 {
            p.insert(pref(7, i), page(7, i));
        }
        p.insert(pref(8, 0), page(8, 0));
        assert_eq!(p.count_pages_in_space(SpaceId(7)), 4);
        assert_eq!(p.count_pages_in_space(SpaceId(8)), 1);
        p.clear();
        assert_eq!(p.count_pages_in_space(SpaceId(7)), 0);
    }

    #[test]
    fn stale_lru_entries_are_skipped() {
        let p = pool(2);
        p.insert(pref(1, 0), page(1, 0));
        // Touch the same page many times: creates stale queue entries.
        for _ in 0..50 {
            p.get(pref(1, 0));
        }
        p.insert(pref(1, 1), page(1, 1));
        // Re-touch 0 so 1 is now the least recently used.
        p.get(pref(1, 0));
        p.insert(pref(1, 2), page(1, 2));
        // The 50 stale stamps for page 0 must be skipped, evicting page 1.
        assert!(p.contains(pref(1, 0)));
        assert!(!p.contains(pref(1, 1)));
        assert_eq!(p.len(), 2);
    }
}
