//! Three-level parallelism (§VI): PQ workers on the SQL node, SAL fan-out
//! across Page Stores, and NDP worker pools inside each Page Store — all
//! active at once on one COUNT(*) scan. Through the `Session` API the
//! whole machine is two knobs: `.parallel(degree)` and the session NDP
//! switch.
//!
//! Run: `cargo run --release --example parallel_scan`

use taurus::prelude::*;

fn main() -> Result<()> {
    let mut cfg = ClusterConfig::default();
    cfg.n_page_stores = 4;
    cfg.pagestore_ndp_threads = 4; // level 3: parallelism within a Page Store
    cfg.buffer_pool_pages = 256;
    cfg.ndp.min_io_pages = 16;
    // A modest shared wire makes the I/O effect visible.
    cfg.network.bandwidth_bytes_per_sec = Some(400_000_000);
    let db = TaurusDb::new(cfg);
    println!("Loading TPC-H SF 0.02...");
    taurus::tpch::load(&db, 0.02, 1)?;

    println!(
        "{:<28} {:>10} {:>12} {:>14}",
        "configuration", "count", "wall (ms)", "bytes (KB)"
    );
    for (label, ndp, pq) in [
        ("serial, NDP off", false, None),
        ("PQ=8, NDP off", false, Some(8)),
        ("serial, NDP on", true, None),
        ("PQ=8, NDP on (3 levels)", true, Some(8)),
    ] {
        db.buffer_pool().clear();
        let session = Session::new(&db).with_ndp(ndp);
        let mut q = session
            .query("lineitem")?
            .filter(col("l_shipdate").lt(date("1998-07-01")))
            .agg(Agg::count_star());
        if let Some(d) = pq {
            q = q.parallel(d);
        }
        let run = q.run()?;
        println!(
            "{:<28} {:>10} {:>12.1} {:>14}",
            label,
            run.rows[0][0],
            run.wall.as_secs_f64() * 1e3,
            run.delta.net_bytes_from_storage / 1024
        );
    }
    println!("\nLevels engaged in the last run:");
    println!("  1. SQL node:   8 PQ worker threads over range partitions");
    println!("  2. SAL:        sub-batches dispatched to 4 Page Stores concurrently");
    println!("  3. Page Store: 4 NDP pool threads processing pages of each batch");
    Ok(())
}
