//! TPC-H demo: loads a small scale factor, runs a selection of queries
//! with NDP off and on, and prints the paper's three effects per query —
//! network bytes, SQL-node CPU, and run time.
//!
//! The headline Q6 is expressed through the public `Session`/`QueryBuilder`
//! API (with its EXPLAIN); the full 22-query sweep then runs through the
//! TPC-H plan-builder registry, which plays the role of MySQL's parser +
//! join-order search and lowers onto the same executor.
//!
//! Run: `cargo run --release --example tpch_demo`

use taurus::prelude::*;

/// TPC-H Q6 through the fluent API.
fn q6(session: &Session) -> Result<QueryBuilder<'_>> {
    Ok(session
        .query("lineitem")?
        .filter(col("l_shipdate").ge(date("1994-01-01")))
        .filter(col("l_shipdate").lt(date("1995-01-01")))
        .filter(col("l_discount").between(dec("0.05"), dec("0.07")))
        .filter(col("l_quantity").lt(24))
        .agg(Agg::sum(col("l_extendedprice").mul(col("l_discount")))))
}

fn main() -> Result<()> {
    let sf = 0.01;
    println!("Loading TPC-H SF {sf} twice (NDP off / NDP on)...");
    let mk = |ndp: bool| -> Result<std::sync::Arc<TaurusDb>> {
        let mut cfg = ClusterConfig::default();
        cfg.buffer_pool_pages = 512;
        cfg.ndp.enabled = ndp;
        cfg.ndp.min_io_pages = 32;
        let db = TaurusDb::new(cfg);
        taurus::tpch::load(&db, sf, 42)?;
        Ok(db)
    };
    let off = mk(false)?;
    let on = mk(true)?;

    // Q6 through the public API, with its NDP-annotated EXPLAIN.
    let session = Session::new(&on);
    println!("\n-- Q6 via Session/QueryBuilder --");
    print!("{}", q6(&session)?.explain()?);
    let run = q6(&session)?.run()?;
    println!(
        "revenue = {}   ({} KB from storage, {:.1} ms SQL CPU)",
        run.rows[0][0],
        run.delta.net_bytes_from_storage / 1024,
        run.delta.compute_cpu_ns as f64 / 1e6
    );

    println!(
        "\n{:<5} {:>12} {:>12} {:>8} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8}",
        "query",
        "net off KB",
        "net on KB",
        "red%",
        "cpu off",
        "cpu on",
        "red%",
        "wall off",
        "wall on",
        "red%"
    );
    for q in taurus::tpch::tpch_queries() {
        if !matches!(q.name, "Q1" | "Q3" | "Q6" | "Q12" | "Q14" | "Q15" | "Q19") {
            continue;
        }
        let run = |db: &TaurusDb| -> Result<(u64, f64, f64)> {
            let before = db.metrics().snapshot();
            let t0 = std::time::Instant::now();
            {
                let _cpu = taurus::common::metrics::CpuGuard::new(&db.metrics().compute_cpu_ns);
                (q.run)(db, None)?;
            }
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            let d = db.metrics().snapshot().since(&before);
            Ok((
                d.net_bytes_from_storage,
                d.compute_cpu_ns as f64 / 1e6,
                wall,
            ))
        };
        let (net_a, cpu_a, wall_a) = run(&off)?;
        let (net_b, cpu_b, wall_b) = run(&on)?;
        let red = |a: f64, b: f64| if a > 0.0 { (1.0 - b / a) * 100.0 } else { 0.0 };
        println!(
            "{:<5} {:>12} {:>12} {:>7.1}% | {:>9.1} {:>9.1} {:>7.1}% | {:>9.1} {:>9.1} {:>7.1}%",
            q.name,
            net_a / 1024,
            net_b / 1024,
            red(net_a as f64, net_b as f64),
            cpu_a,
            cpu_b,
            red(cpu_a, cpu_b),
            wall_a,
            wall_b,
            red(wall_a, wall_b),
        );
    }
    println!("\n(paper, 100 GB: Q6 ~99% network / 91% CPU; Q15 98%/91%; Q14 95%/89%)");
    Ok(())
}
