//! Serving the engine over TCP: server, wire client, replica routing.
//!
//! Starts a `Server` fronting a master plus one log-tailing read
//! replica, then drives it with the wire `Client`: named TPC-H plans,
//! a builder-serialized query, a point lookup, a write — and shows
//! read-your-writes stickiness (after the INSERT, reads pin to the
//! master until the replica's visible LSN catches up to the client's
//! commit LSN) plus the STATS scrape an operator would poll.
//!
//! Run: `cargo run --release --example network_serving`

use std::time::Duration;

use taurus::prelude::*;
use taurus::protocol::{BuilderSpec, DmlRequest, WireAggFunc};

fn main() -> Result<()> {
    let mut cfg = ClusterConfig::default();
    cfg.buffer_pool_pages = 256;
    cfg.ndp.min_io_pages = 8;
    // Ephemeral port: the OS picks, `handle.local_addr()` reports.
    cfg.server.listen_addr = "127.0.0.1:0".into();
    let db = TaurusDb::new(cfg);
    println!("Loading TPC-H SF 0.01...");
    taurus::tpch::load(&db, 0.01, 42)?;

    // A small side table for the write demo.
    let note = db.create_table(
        TableSchema::new(
            "note",
            vec![
                Column::new("id", DataType::BigInt),
                Column::new("body", DataType::Varchar(64)),
            ],
            vec![0],
        ),
        &[],
    )?;
    db.bulk_load(&note, vec![vec![Value::Int(0), Value::str("seed")]])?;

    // One read replica, serving at its own consistent LSN.
    let replica = Replica::attach(&db);
    replica.wait_caught_up(Duration::from_secs(10))?;

    let handle = Server::start(&db, vec![replica.clone()], tpch_registry())?;
    let addr = handle.local_addr().to_string();
    println!("serving on {addr}\n");

    let mut client = Client::connect(&addr)?;
    println!("handshake: {} nodes (master + replicas)", client.nodes());

    // Named plans from the registry; repeats rotate across nodes.
    for _ in 0..2 {
        let reply = client.query_named("Q6", None)?;
        println!(
            "Q6  -> {} row(s) from node {}",
            reply.rows.len(),
            reply.node
        );
    }

    // A builder-serialized query: COUNT(*) of cheap line items.
    let mut spec = BuilderSpec::table("lineitem");
    spec.filters.push(taurus::protocol::WireExpr::Cmp(
        2, // Lt
        Box::new(taurus::protocol::WireExpr::Col("l_quantity".into())),
        Box::new(taurus::protocol::WireExpr::Lit(Value::Decimal(Dec::new(
            500, 2,
        )))),
    ));
    spec.aggs.push((WireAggFunc::CountStar, None));
    let reply = client.query_builder(spec)?;
    println!(
        "builder COUNT(l_quantity < 5.00) = {} (node {})",
        reply.rows[0][0], reply.node
    );

    // A write, then read-your-writes: until the replica's visible LSN
    // reaches the commit LSN, this client's reads route to the master.
    let commit_lsn = client.execute(DmlRequest::Insert {
        table: "note".into(),
        row: vec![Value::Int(1), Value::str("written over the wire")],
    })?;
    println!("\nINSERT committed at LSN {commit_lsn}");
    let (row, node) = client.lookup("note", vec![Value::Int(1)])?;
    println!(
        "read-your-writes: {:?} served by node {node} (replica visible LSN {})",
        row.expect("just inserted"),
        replica.visible_lsn()
    );

    // The operator's view: a STATS scrape of stable `name value` lines.
    let stats = client.stats()?;
    println!("\nselected server counters:");
    for line in stats.lines().filter(|l| {
        [
            "server_queries ",
            "server_dml ",
            "server_routed_master ",
            "server_routed_replica ",
        ]
        .iter()
        .any(|p| l.starts_with(p))
    }) {
        println!("  {line}");
    }
    Ok(())
}
