//! Best-effort NDP under multi-tenant pressure (§IV-D2).
//!
//! Page Stores are shared services: when their NDP pools are saturated (or
//! resource control decides to shed load), they return *raw* pages and the
//! compute node completes the work — results never change, only where the
//! CPU burns. This example injects increasing skip rates and shows the
//! work migrating from the storage side to the SQL node. The query itself
//! is ordinary `Session` API — the caller neither knows nor cares which
//! side did the filtering.
//!
//! Run: `cargo run --release --example multi_tenant`

use taurus::pagestore::SkipPolicy;
use taurus::prelude::*;

fn main() -> Result<()> {
    let mut cfg = ClusterConfig::default();
    cfg.pagestore_ndp_threads = 2;
    cfg.pagestore_ndp_queue = 8;
    cfg.buffer_pool_pages = 256;
    cfg.ndp.min_io_pages = 16;
    let db = TaurusDb::new(cfg);
    println!("Loading TPC-H SF 0.02...");
    taurus::tpch::load(&db, 0.02, 3)?;

    let session = Session::new(&db);
    let count_cheap_items = || -> Result<QueryRun> {
        session
            .query("lineitem")?
            .filter(col("l_quantity").lt(Dec::new(2500, 2)))
            .agg(Agg::count_star())
            .run()
    };

    println!(
        "\n{:<12} {:>10} {:>12} {:>12} {:>14} {:>16}",
        "tenant load", "count", "NDP pages", "raw pages", "SQL CPU (ms)", "storage CPU (ms)"
    );
    for (label, policy) in [
        ("idle", SkipPolicy::None),
        ("busy", SkipPolicy::EveryNth(3)),
        ("very busy", SkipPolicy::EveryNth(2)),
        ("saturated", SkipPolicy::All),
    ] {
        for ps in db.sal().page_stores() {
            ps.set_skip_policy(policy.clone());
        }
        db.buffer_pool().clear();
        let run = count_cheap_items()?;
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>14.1} {:>16.1}",
            label,
            run.rows[0][0],
            run.delta.pages_shipped_ndp + run.delta.pages_shipped_empty,
            run.delta.pages_shipped_raw,
            run.delta.compute_cpu_ns as f64 / 1e6,
            run.delta.ps_cpu_ns as f64 / 1e6,
        );
    }
    println!("\nThe count never changes; only where the work happens does.");
    for ps in db.sal().page_stores() {
        ps.set_skip_policy(SkipPolicy::None);
    }
    Ok(())
}
