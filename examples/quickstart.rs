//! Quickstart: the paper's §III worked example, through the public
//! `Session`/`QueryBuilder` API.
//!
//! Creates the `Worker` table, loads rows, and runs the Listing-1 query
//! (`SELECT AVG(salary) FROM Worker WHERE age < 40 AND joindate >= '2010-01-01'
//! AND joindate < '2010-01-01' + INTERVAL 1 YEAR`) twice: once with the
//! session's NDP switch off (classical scan) and once with it on, printing
//! the Listing-2-style EXPLAIN and the network/CPU effect. The query text
//! is identical both times — whether filtering and aggregation happen in
//! the Page Stores is the optimizer's decision, not the caller's.
//!
//! Run: `cargo run --release --example quickstart`

use taurus::prelude::*;

fn main() -> Result<()> {
    // A small simulated cluster: 4 Page Stores, 3 Log Stores.
    let mut cfg = ClusterConfig::default();
    cfg.buffer_pool_pages = 128;
    cfg.ndp.min_io_pages = 4;
    let db = TaurusDb::new(cfg);

    // CREATE TABLE Worker (id BIGINT PRIMARY KEY, age INT,
    //                      joindate DATE, salary DECIMAL(15,2), name VARCHAR(32))
    let schema = TableSchema::new(
        "worker",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("age", DataType::Int),
            Column::new("joindate", DataType::Date),
            Column::new(
                "salary",
                DataType::Decimal {
                    precision: 15,
                    scale: 2,
                },
            ),
            Column::new("name", DataType::Varchar(32)),
        ],
        vec![0],
    );
    let table = db.create_table(schema, &[])?;

    // Load 50,000 workers through the write path (log records to Log
    // Stores, redo applied by Page Stores).
    let rows: Vec<Row> = (0..50_000i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(20 + (i * 7) % 45),
                Value::Date(Date32::from_ymd(2005, 1, 1).add_days(((i * 13) % 3650) as i32)),
                Value::Decimal(Dec::new((3000 + (i * 31) % 7000) as i128 * 100, 2)),
                Value::str(format!("worker-{i}")),
            ]
        })
        .collect();
    db.bulk_load(&table, rows)?;
    db.buffer_pool().clear(); // cold start

    // The Listing-1 query, built fluently against column *names*.
    let start = Date32::parse("2010-01-01").unwrap();
    let listing1 = |session: &Session| -> Result<QueryRun> {
        session
            .query("worker")?
            .filter(col("age").lt(40))
            .filter(col("joindate").ge(start))
            .filter(col("joindate").lt(start.add_years(1)))
            .agg(Agg::avg("salary"))
            .run()
    };

    // NDP off: the session-level optimizer switch forces the classical
    // scan path (results never change, only where the work happens).
    {
        let session = Session::new(&db).with_ndp(false);
        let run = listing1(&session)?;
        println!("-- NDP off --");
        println!("AVG(salary) = {}", run.rows[0][0]);
        println!(
            "bytes from storage: {} KB, SQL-node CPU: {:.1} ms, wall: {:.1} ms",
            run.delta.net_bytes_from_storage / 1024,
            run.delta.compute_cpu_ns as f64 / 1e6,
            run.wall.as_secs_f64() * 1e3
        );
    }

    // NDP on (the default): the same query text; the builder routes the
    // plan through the §IV-B post-processing pass automatically.
    db.buffer_pool().clear();
    let session = Session::new(&db);
    println!("\n-- EXPLAIN (with NDP annotations, cf. the paper's Listing 2) --");
    let explained = session
        .query("worker")?
        .filter(col("age").lt(40))
        .filter(col("joindate").ge(start))
        .filter(col("joindate").lt(start.add_years(1)))
        .agg(Agg::avg("salary"))
        .explain()?;
    print!("{explained}");

    let run = listing1(&session)?;
    println!("\n-- NDP on --");
    println!("AVG(salary) = {}", run.rows[0][0]);
    println!(
        "bytes from storage: {} KB, SQL-node CPU: {:.1} ms, wall: {:.1} ms",
        run.delta.net_bytes_from_storage / 1024,
        run.delta.compute_cpu_ns as f64 / 1e6,
        run.wall.as_secs_f64() * 1e3
    );
    println!(
        "pages: {} NDP-processed, {} empty-after-filter markers, {} raw",
        run.delta.pages_shipped_ndp, run.delta.pages_shipped_empty, run.delta.pages_shipped_raw
    );

    // Streaming: pull a handful of rows; the scan stops when the stream
    // is dropped — no 50,000-row materialization.
    println!("\n-- first 3 workers under 25, streamed --");
    for row in session
        .query("worker")?
        .select(["id", "age", "name"])
        .filter(col("age").lt(25))
        .stream()?
        .take(3)
    {
        println!("{:?}", row?);
    }
    Ok(())
}
