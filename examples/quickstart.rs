//! Quickstart: the paper's §III worked example.
//!
//! Creates the `Worker` table, loads rows, runs the Listing-1 query
//! (`SELECT AVG(salary) FROM Worker WHERE age < 40 AND joindate >= '2010-01-01'
//! AND joindate < '2010-01-01' + INTERVAL 1 YEAR`) with NDP, and prints the
//! Listing-2-style EXPLAIN plus the network/CPU effect.
//!
//! Run: `cargo run --release --example quickstart`

use taurus::prelude::*;

fn main() -> Result<()> {
    // A small simulated cluster: 4 Page Stores, 3 Log Stores.
    let mut cfg = ClusterConfig::default();
    cfg.buffer_pool_pages = 128;
    cfg.ndp.min_io_pages = 4;
    let db = TaurusDb::new(cfg);

    // CREATE TABLE Worker (id BIGINT PRIMARY KEY, age INT,
    //                      joindate DATE, salary DECIMAL(15,2), name VARCHAR(32))
    let schema = TableSchema::new(
        "worker",
        vec![
            Column::new("id", DataType::BigInt),
            Column::new("age", DataType::Int),
            Column::new("joindate", DataType::Date),
            Column::new("salary", DataType::Decimal { precision: 15, scale: 2 }),
            Column::new("name", DataType::Varchar(32)),
        ],
        vec![0],
    );
    let table = db.create_table(schema, &[])?;

    // Load 50,000 workers through the write path (log records to Log
    // Stores, redo applied by Page Stores).
    let rows: Vec<Row> = (0..50_000i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(20 + (i * 7) % 45),
                Value::Date(Date32::from_ymd(2005, 1, 1).add_days(((i * 13) % 3650) as i32)),
                Value::Decimal(Dec::new((3000 + (i * 31) % 7000) as i128 * 100, 2)),
                Value::str(format!("worker-{i}")),
            ]
        })
        .collect();
    db.bulk_load(&table, rows)?;
    db.buffer_pool().clear(); // cold start

    // The Listing-1 query as a plan: AVG pushes down as SUM+COUNT.
    let start = Date32::parse("2010-01-01").unwrap();
    let build_plan = || {
        Plan::AggScan(AggScanNode {
            scan: ScanNode::new("worker", vec![1, 2, 3]).with_predicate(vec![
                Expr::lt(Expr::col(1), Expr::int(40)),
                Expr::ge(Expr::col(2), Expr::lit(Value::Date(start))),
                Expr::lt(Expr::col(2), Expr::lit(Value::Date(start.add_years(1)))),
            ]),
            group_cols: vec![],
            aggs: vec![AggItem { func: AggFuncEx::Avg, input: Some(Expr::col(3)) }],
        })
    };

    // NDP off: a plan that never went through the post-processing pass
    // runs the classical scan path.
    {
        let plan = build_plan();
        let run = run_query(&db, &plan)?;
        println!("-- NDP off --");
        println!("AVG(salary) = {}", run.rows[0][0]);
        println!(
            "bytes from storage: {} KB, SQL-node CPU: {:.1} ms, wall: {:.1} ms",
            run.delta.net_bytes_from_storage / 1024,
            run.delta.compute_cpu_ns as f64 / 1e6,
            run.wall.as_secs_f64() * 1e3
        );
    }

    // NDP on: run the optimizer's post-processing pass, print EXPLAIN.
    db.buffer_pool().clear();
    let mut plan = build_plan();
    let reports = ndp_post_process(&mut plan, &db)?;
    println!("\n-- EXPLAIN (with NDP annotations, cf. the paper's Listing 2) --");
    print!("{}", explain(&plan, &db));
    for r in &reports {
        println!(
            "   [{}] est_io={:.0} pages, filter_factor={:.3}, projection={}, aggregate={}",
            r.table, r.est_io_pages, r.filter_factor, r.projection, r.aggregation
        );
    }

    let run = run_query(&db, &plan)?;
    println!("\n-- NDP on --");
    println!("AVG(salary) = {}", run.rows[0][0]);
    println!(
        "bytes from storage: {} KB, SQL-node CPU: {:.1} ms, wall: {:.1} ms",
        run.delta.net_bytes_from_storage / 1024,
        run.delta.compute_cpu_ns as f64 / 1e6,
        run.wall.as_secs_f64() * 1e3
    );
    println!(
        "pages: {} NDP-processed, {} empty-after-filter markers, {} raw",
        run.delta.pages_shipped_ndp,
        run.delta.pages_shipped_empty,
        run.delta.pages_shipped_raw
    );
    Ok(())
}
