//! Offline stand-in for the `libc` crate: only the pieces this workspace
//! uses (`clock_gettime` with `CLOCK_THREAD_CPUTIME_ID` for per-thread
//! CPU accounting). Declares the raw C ABI directly — std already links
//! the platform C library, so no build script is needed.
//!
//! Layout matches 64-bit Linux (the only supported platform for the
//! benches; see the workspace README).

#![allow(non_camel_case_types)]

pub type time_t = i64;
pub type c_long = i64;
pub type c_int = i32;
pub type clockid_t = c_int;

#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_readable() {
        let mut ts = timespec::default();
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0);
        assert!(ts.tv_sec >= 0 && ts.tv_nsec >= 0);
    }
}
