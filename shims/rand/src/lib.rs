//! Offline stand-in for the `rand` crate (the subset this workspace uses).
//!
//! Deterministic xorshift64* generator behind the `rand 0.8` trait names:
//! `StdRng::seed_from_u64`, `Rng::gen_range(lo..hi)`, `Rng::gen_bool(p)`.
//! Statistical quality is irrelevant here — the TPC-H generator only needs
//! a stable, seedable, reasonably-mixed stream.

use std::ops::{Range, RangeInclusive};

/// Integer types `gen_range` can sample. Modulo reduction: the tiny bias
/// is irrelevant for data generation.
pub trait SampleUniform: Copy {
    /// Sample from the half-open range `[lo, hi)`.
    fn sample_range(next: u64, lo: Self, hi: Self) -> Self;
    /// Sample from the closed range `[lo, hi]`.
    fn sample_range_inclusive(next: u64, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, next: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, next: u64) -> T {
        T::sample_range(next, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, next: u64) -> T {
        T::sample_range_inclusive(next, *self.start(), *self.end())
    }
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(next: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires lo < hi");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                lo.wrapping_add((next as u128 % span) as $t)
            }

            fn sample_range_inclusive(next: u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range requires lo <= hi");
                let span = ((hi as i128).wrapping_sub(lo as i128) as u128).wrapping_add(1);
                if span == 0 {
                    return next as $t; // full domain
                }
                lo.wrapping_add((next as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(next: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires lo < hi");
                let span = (hi as u128) - (lo as u128);
                lo + (next as u128 % span) as $t
            }

            fn sample_range_inclusive(next: u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range requires lo <= hi");
                let span = ((hi as u128) - (lo as u128)).wrapping_add(1);
                if span == 0 {
                    return next as $t; // full domain
                }
                lo + (next as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_signed!(i8, i16, i32, i64, i128, isize);
impl_sample_unsigned!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(next: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + (next as f64 / u64::MAX as f64) * (hi - lo)
    }

    fn sample_range_inclusive(next: u64, lo: Self, hi: Self) -> Self {
        Self::sample_range(next, lo, hi)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

pub mod rngs {
    /// Deterministic xorshift64* state.
    #[derive(Clone, Debug)]
    pub struct StdRng(u64);

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 of the seed so that small seeds diverge quickly.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng((z ^ (z >> 31)) | 1)
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-50i64..50);
            assert_eq!(x, b.gen_range(-50i64..50));
            assert!((-50..50).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| c.gen_bool(0.5)).count();
        assert!((3000..7000).contains(&heads), "{heads}");
    }

    #[test]
    fn usize_and_i128_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
            let w = r.gen_range(-10i128..11);
            assert!((-10..11).contains(&w));
        }
    }
}
