//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses, implemented over std:
//!
//! * [`channel`] — a multi-producer **multi-consumer** bounded channel
//!   (std's `mpsc` is single-consumer, so this is a small
//!   `Mutex<VecDeque>` + two condvars implementation). A capacity of 0
//!   (crossbeam's rendezvous channel) is approximated with capacity 1,
//!   which is indistinguishable for the gate/handshake patterns used
//!   here.
//! * [`thread`] — `scope`/`spawn` with crossbeam's closure signature
//!   (the closure receives the scope), delegating to `std::thread::scope`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: usize,
    }

    pub struct Sender<T>(Arc<Shared<T>>);
    pub struct Receiver<T>(Arc<Shared<T>>);

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create a bounded channel. Capacity 0 (rendezvous) is approximated
    /// with capacity 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                if g.queue.len() < self.0.cap {
                    g.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                g = self.0.not_full.wait(g).unwrap();
            }
        }

        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut g = self.0.inner.lock().unwrap();
            if g.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if g.queue.len() >= self.0.cap {
                return Err(TrySendError::Full(value));
            }
            g.queue.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.0.not_empty.wait(g).unwrap();
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.0.not_empty.wait_timeout(g, deadline - now).unwrap();
                g = guard;
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            let mut g = self.0.inner.lock().unwrap();
            let v = g.queue.pop_front();
            if v.is_some() {
                self.0.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.0.inner.lock().unwrap();
            g.senders -= 1;
            if g.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.0.inner.lock().unwrap();
            g.receivers -= 1;
            if g.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }
}

pub mod thread {
    pub use std::thread::Result;

    /// Crossbeam-style scope wrapper over `std::thread::scope`. The spawn
    /// closure receives the scope (so nested spawns are possible), matching
    /// crossbeam's signature `s.spawn(|s| ...)`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope; every spawned thread is joined before this
    /// returns. Always `Ok` (a panicked child propagates as a panic, like
    /// `std::thread::scope`), preserving crossbeam's `Result` signature.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, TrySendError};

    #[test]
    fn mpmc_bounded_roundtrip() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        let rx2 = rx.clone();
        assert_eq!(rx2.recv().unwrap(), 2);
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scoped_threads_join() {
        let mut data = vec![0u64; 4];
        super::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter_mut()
                .map(|slot| s.spawn(move |_| *slot = 7))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(data, vec![7, 7, 7, 7]);
    }
}
