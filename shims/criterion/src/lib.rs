//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of the API surface (`Criterion`,
//! `bench_function`, `Bencher::iter`, the `criterion_group!` /
//! `criterion_main!` macros, `black_box`) to build and run the workspace
//! benches without a registry. Measurement is a simple
//! warmup-then-median-of-samples loop — adequate for the relative
//! comparisons the figure benches print, with none of criterion's
//! statistics.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + calibration: find an iteration count that takes ≥ ~5 ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        for _ in 0..10 {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "{name:<44} median {median:>12.2?} ({} samples)",
            b.samples.len()
        );
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
