//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(...)]`
//! header), range / tuple / char-class-string strategies, `any::<T>()`,
//! `prop_oneof!`, `prop_map`, `proptest::collection::vec`, and the
//! `prop_assert*` macros. Cases are generated from a fixed seed, so runs
//! are deterministic; there is **no shrinking** — a failing case panics
//! with the generated inputs in the assertion message.

pub mod rng {
    pub type TestRng = rand::rngs::StdRng;
    pub use rand::{Rng, SampleUniform, SeedableRng};
}

pub mod config {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod strategy {
    use crate::rng::{Rng, SampleUniform, TestRng};
    use std::ops::Range;

    /// A value generator. Unlike real proptest there is no value tree /
    /// shrinking: `generate` produces one concrete value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strategy: self, f }
        }
    }

    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.generate(rng))
        }
    }

    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// String strategies from a `[class]{lo,hi}` pattern (the only regex
    /// shape our tests use). Anything else generates the literal itself.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = if lo == hi {
                        lo
                    } else {
                        rng.gen_range(lo..hi + 1)
                    };
                    (0..len)
                        .map(|_| chars[rng.gen_range(0..chars.len())])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parse `[a-z0-9 ]{lo,hi}` into (alphabet, lo, hi).
    fn parse_class_pattern(p: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = p.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if alphabet.is_empty() {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

    /// `prop_oneof!` support: uniformly pick one of N boxed generators.
    pub struct Union<T> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.arms[rng.gen_range(0..self.arms.len())])(rng)
        }
    }
}

pub mod arbitrary {
    use crate::rng::{Rng, TestRng};
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// `any::<T>()` support: uniform over the whole domain.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::rng::{Rng, TestRng};
    use crate::strategy::Strategy;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $({
                let s = $arm;
                Box::new(move |rng: &mut $crate::rng::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as Box<dyn Fn(&mut $crate::rng::TestRng) -> _>
            }),+
        ])
    }};
}

/// The `proptest!` test-block macro: runs each body `cases` times with
/// freshly generated inputs from a fixed seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                use $crate::rng::SeedableRng as _;
                let cfg: $crate::config::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                // Stable per-test seed: derived from the test name.
                let mut seed = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).as_bytes() {
                    seed = (seed ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut rng = $crate::rng::TestRng::seed_from_u64(seed);
                for _case in 0..cfg.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}
