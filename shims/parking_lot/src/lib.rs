//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the tiny slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no `Result`). Implemented over `std::sync` primitives; a poisoned
//! lock panics, which matches parking_lot's behaviour of not having
//! poisoning at all for our purposes (a panic while holding a lock is
//! already fatal to the test process).

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::Mutex` lookalike: `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// `parking_lot::RwLock` lookalike: `read()`/`write()` return guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
